#!/usr/bin/env bash
# Repo CI gate: build, lint, test. Run from the workspace root.
#
#   scripts/ci.sh          # full gate
#   FAST=1 scripts/ci.sh   # skip the release build (quick local check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
if [[ "${FAST:-0}" != "1" ]]; then
  cargo build --release
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

# Chaos matrix under two distinct seeds: the transfer-survival matrix
# must recover (or fail typed) and replay byte-identically under each
# seed, and must finish well inside the wall-clock guard — a hang
# anywhere in the retry/timeout stack fails the gate instead of wedging
# CI.
echo "==> chaos matrix (two seeds, wall-clock guarded)"
for seed in 12648430 3405691582; do
  echo "    seed ${seed}"
  CHAOS_SEED="${seed}" timeout 600 \
    cargo test -q -p ig-server --test chaos_matrix -- --nocapture
done

echo "CI gate passed."
