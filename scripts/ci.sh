#!/usr/bin/env bash
# Repo CI gate: build, lint, test. Run from the workspace root.
#
#   scripts/ci.sh          # full gate
#   FAST=1 scripts/ci.sh   # skip the release build (quick local check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
if [[ "${FAST:-0}" != "1" ]]; then
  cargo build --release
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "CI gate passed."
