#!/usr/bin/env bash
# Repo CI gate: build, lint, test. Run from the workspace root.
#
#   scripts/ci.sh          # full gate
#   FAST=1 scripts/ci.sh   # skip the release build (quick local check)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
if [[ "${FAST:-0}" != "1" ]]; then
  cargo build --release
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

# Chaos matrix under two distinct seeds: the transfer-survival matrix
# (48 single-file cells + 16 mid-directory-stream cells, both cores)
# must recover (or fail typed) and replay byte-identically under each
# seed, and must finish well inside the wall-clock guard — a hang
# anywhere in the retry/timeout stack fails the gate instead of wedging
# CI.
echo "==> chaos matrix (two seeds, wall-clock guarded)"
for seed in 12648430 3405691582; do
  echo "    seed ${seed}"
  CHAOS_SEED="${seed}" timeout 600 \
    cargo test -q -p ig-server --test chaos_matrix -- --nocapture
done

# Replay-determinism gate: a failing chaos cell traced with IG_TRACE
# under a fixed seed must dump byte-identical JSONL across two separate
# process runs (the trace_replay test also asserts this in-process; this
# checks the exported artifact end to end).
echo "==> trace replay determinism (IG_TRACE, two runs, byte-compared)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
for run in a b; do
  IG_TRACE="${trace_dir}/${run}.jsonl" timeout 300 \
    cargo test -q -p ig-server --test trace_replay
done
cmp "${trace_dir}/a.jsonl" "${trace_dir}/b.jsonl"
grep -q '"event":"chaos.fault"' "${trace_dir}/a.jsonl"
grep -q '"event":"retry.attempt"' "${trace_dir}/a.jsonl"
echo "    traces are byte-identical"

# E14 session-scalability smoke. Two layers:
# * the reactor_scale test holds an 800-session idle herd plus active
#   PUTs in-process and *asserts* the p99-RTT budget and the
#   per-idle-session resident-memory ceiling;
# * the bench experiment drives the full fast-mode herd (~2,000 idle
#   reactor sessions held by a helper process + 50 authenticated PUTs
#   per core) through the report binary, wall-clock guarded by timeout,
#   and the gate checks the reactor actually held its herd.
echo "==> E14 session scalability smoke (reactor herd, wall-clock guarded)"
timeout 600 cargo test -q -p ig-server --test reactor_scale
e14_out="$(timeout 900 cargo run -q --release -p ig-bench --bin report -- --exp e14 --fast)"
echo "${e14_out}"
held="$(echo "${e14_out}" | awk '$1 == "reactor" {print $2}')"
if [[ -z "${held}" || "${held}" -lt 2000 ]]; then
  echo "E14: reactor held '${held:-0}' idle sessions, expected 2000" >&2
  exit 1
fi
echo "    reactor held ${held} idle sessions"

# Pipelining + streamed-directory battery at reduced proptest case
# counts (IG_PROPTEST_CASES): the full-depth runs already happened under
# `cargo test -q` above; this pass pins the env-var knob itself and
# keeps a fast re-run path for bisection.
echo "==> pipelining/dir-stream proptests (reduced cases, wall-clock guarded)"
IG_PROPTEST_CASES=8 timeout 300 cargo test -q -p ig-server --test dir_stream_property
IG_PROPTEST_CASES=8 timeout 300 cargo test -q -p ig-server --test core_differential

# Small-files smoke: E4 drives the 200-file 4 KiB tree through every
# strategy — including PIPE-windowed fetches and the streamed ERET DIR
# transfer — wall-clock guarded, and the gate re-checks the headline
# ratio from the rendered table: streamed dir >= 10x the one-session
# per-file baseline in files/s. (The mid-directory chaos cells above
# already cover the same paths under both CHAOS_SEED values.)
echo "==> E4 small-files smoke (200-file tree, streamed dir >= 10x per-file)"
e4_out="$(timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e4)"
echo "${e4_out}"
per_file_rate="$(echo "${e4_out}" | awk '/^one session, per-file/ {print $(NF-1)}')"
dir_rate="$(echo "${e4_out}" | awk '/^streamed dir/ {print $(NF-1)}')"
if [[ -z "${per_file_rate}" || -z "${dir_rate}" ]]; then
  echo "E4: could not parse files/s rates from the table" >&2
  exit 1
fi
if ! awk -v d="${dir_rate}" -v p="${per_file_rate}" 'BEGIN {exit !(d >= 10 * p)}'; then
  echo "E4: streamed dir ${dir_rate} files/s < 10x per-file ${per_file_rate} files/s" >&2
  exit 1
fi
echo "    streamed dir ${dir_rate} files/s vs per-file ${per_file_rate} files/s (>=10x)"

# Transport-crossover smoke: the reduced E2x grid must show the
# crossover in BOTH directions — the single BBR reliable-UDP flow beats
# striped Reno TCP on the high-loss/high-RTT corner, striped TCP beats
# the CPU-capped UDP flow on the clean LAN corner — and in each corner
# `gol::tuning::pick_transport` must have picked the measured winner
# (the "tuner picks"/"sim agrees" columns).
echo "==> E2x transport-crossover smoke (reduced grid, both directions)"
e2x_out="$(timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e2x --fast)"
echo "${e2x_out}"
check_corner() { # <rtt-cell> <loss-cell> <expected-winner>
  echo "${e2x_out}" | awk -v rtt="$1" -v loss="$2" -v want="$3" '
    function bps(v, u) { return v * (u == "Gbit/s" ? 1e9 : u == "Mbit/s" ? 1e6 : u == "kbit/s" ? 1e3 : 1) }
    $1 == rtt && $3 == loss {
      reno = bps($4, $5); bbr = bps($8, $9)
      if (want == "udp" && !(bbr >= reno)) exit 1
      if (want == "tcp" && !(reno >= bbr)) exit 1
      if ($10 != want || $11 != "yes") exit 1
      found = 1
    }
    END { exit !found }'
}
if ! check_corner 100.0 1e-3 udp; then
  echo "E2x: BBR-UDP must beat striped Reno on the 100 ms / 1e-3 corner (and the tuner must agree)" >&2
  exit 1
fi
if ! check_corner 0.2 1e-6 tcp; then
  echo "E2x: striped TCP must beat the capped UDP flow on the LAN corner (and the tuner must agree)" >&2
  exit 1
fi
echo "    crossover goes both ways; the tuner picked the measured winner on both corners"

# E15 fleet-scale smoke: the reduced (fast) fleet — 1,000 endpoints,
# scaled 10M transfers/day — must (a) replay byte-identically under the
# default seed AND under a second E15_SEED (the whole rendered table is
# compared, digest line included), (b) hold both p99 budgets on each
# seed, and (c) change its digest when the seed changes (the trace is
# really seed-derived, not constant).
echo "==> E15 fleet-scale smoke (reduced fleet, two seeds, replay byte-compared)"
e15_a="$(timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e15 --fast)"
e15_b="$(timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e15 --fast)"
echo "${e15_a}"
if [[ "${e15_a}" != "${e15_b}" ]]; then
  echo "E15: same-seed replay diverged" >&2
  diff <(echo "${e15_a}") <(echo "${e15_b}") >&2 || true
  exit 1
fi
e15_c="$(E15_SEED=271828 timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e15 --fast)"
e15_d="$(E15_SEED=271828 timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e15 --fast)"
if [[ "${e15_c}" != "${e15_d}" ]]; then
  echo "E15: second-seed replay diverged" >&2
  exit 1
fi
for out in "${e15_a}" "${e15_c}"; do
  if ! grep -q "within budget: yes" <<<"${out}"; then
    echo "E15: p99 submit/activation budgets blown" >&2
    exit 1
  fi
done
digest_a="$(grep -o 'e15:[0-9a-f]\{16\}' <<<"${e15_a}")"
digest_c="$(grep -o 'e15:[0-9a-f]\{16\}' <<<"${e15_c}")"
if [[ -z "${digest_a}" || "${digest_a}" == "${digest_c}" ]]; then
  echo "E15: digest missing or seed-insensitive (${digest_a:-none})" >&2
  exit 1
fi
echo "    both seeds replay byte-identically (digests ${digest_a} / ${digest_c}), budgets hold"

# The PR 9 batteries at reduced proptest case counts: the sharded-ledger
# differential, the fair-share scheduler properties, and the
# credential-cache battery (whose stampede cell asserts the E11
# `myproxy.issued` counter moves exactly once for a 12-wide storm, and
# whose chaos cell replays its backoff schedule under two seeds
# in-test). Full-depth runs already happened under `cargo test -q`.
echo "==> E15 satellite batteries (reduced proptest cases)"
IG_PROPTEST_CASES=8 timeout 300 cargo test -q -p ig-server --test usage_differential
IG_PROPTEST_CASES=8 timeout 300 cargo test -q -p ig-gol --test sched_property
IG_PROPTEST_CASES=8 timeout 300 cargo test -q -p ig-myproxy --test cred_cache

# Admin-plane smoke: a real server process with its unix admin socket,
# driven end to end by the ig-admin operator client — handshake, framed
# metrics/sessions/reload round-trips, then a drain that must terminate
# the serve process cleanly. This is the out-of-process complement to
# the admin_socket integration battery (which runs under `cargo test`
# above).
echo "==> admin socket smoke (ig-admin client vs live server over UDS)"
cargo build -q --release --example ig_admin
admin_sock="$(mktemp -u /tmp/ig-admin-ci-XXXXXX.sock)"
./target/release/examples/ig_admin serve "${admin_sock}" &
serve_pid=$!
for _ in $(seq 1 100); do
  [[ -S "${admin_sock}" ]] && break
  sleep 0.05
done
[[ -S "${admin_sock}" ]] || { echo "admin socket never appeared" >&2; exit 1; }
metrics_out="$(./target/release/examples/ig_admin metrics "${admin_sock}")"
grep -q '"server.sessions_active"' <<<"${metrics_out}" || {
  echo "admin metrics reply missing the registry snapshot: ${metrics_out}" >&2
  exit 1
}
sessions_out="$(./target/release/examples/ig_admin sessions "${admin_sock}")"
grep -q '"active":0' <<<"${sessions_out}" || {
  echo "admin sessions reply wrong on an idle server: ${sessions_out}" >&2
  exit 1
}
reload_out="$(./target/release/examples/ig_admin reload block_size=65536 "${admin_sock}")"
grep -q '"block_size":65536' <<<"${reload_out}" || {
  echo "admin reload did not echo the new tunable: ${reload_out}" >&2
  exit 1
}
if ./target/release/examples/ig_admin reload core=1 "${admin_sock}" >/dev/null; then
  echo "admin reload accepted a non-reloadable field" >&2
  exit 1
fi
./target/release/examples/ig_admin drain --deadline-ms 2000 "${admin_sock}" >/dev/null
for _ in $(seq 1 200); do
  kill -0 "${serve_pid}" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "${serve_pid}" 2>/dev/null; then
  echo "serve process still alive after drain" >&2
  kill "${serve_pid}"
  exit 1
fi
wait "${serve_pid}" || { echo "serve process exited non-zero after drain" >&2; exit 1; }
echo "    metrics/sessions/reload round-tripped; drain retired the server"

# E16 drain-under-load smoke: the reduced run drives the admin-socket
# drain RTT sweep (p99 budget-gated in-test too) plus the forced
# checkpoint-and-resume round; the gate re-checks the rendered table for
# a clean busy drain and a verified zero-loss resume.
echo "==> E16 drain-under-load smoke (reduced, wall-clock guarded)"
e16_out="$(timeout 600 cargo run -q --release -p ig-bench --bin report -- --exp e16 --fast)"
echo "${e16_out}"
grep -q 'clean=true' <<<"${e16_out}" || { echo "E16: busy drain was not clean" >&2; exit 1; }
if grep -q 'CONTENT MISMATCH' <<<"${e16_out}"; then
  echo "E16: acknowledged bytes were lost" >&2
  exit 1
fi
grep -Eq 'forced ckpt.*interrupted=[1-9]' <<<"${e16_out}" || {
  echo "E16: forced round did not interrupt the in-flight transfer" >&2
  exit 1
}

echo "CI gate passed."
