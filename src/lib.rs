//! Facade crate: re-exports the whole Instant GridFTP workspace API.
pub use ig_baselines as baselines;
pub use ig_client as client;
pub use ig_crypto as crypto;
pub use ig_gcmu as gcmu;
pub use ig_gol as gol;
pub use ig_gsi as gsi;
pub use ig_myproxy as myproxy;
pub use ig_netsim as netsim;
pub use ig_pki as pki;
pub use ig_protocol as protocol;
pub use ig_server as server;
pub use ig_xio as xio;
