//! Striped third-party transfers (Fig 2's striped server, `SPAS`/`SPOR`).

use ig_client::{transfer, ClientSession, TransferOpts};
use ig_gcmu::InstallOptions;
use ig_pki::time::Clock;
use ig_server::dsi::read_all;
use ig_server::UserContext;

const NOW: u64 = 2_000_000_000;

#[test]
fn striped_third_party_transfer() {
    let a = InstallOptions::new("stripe-a.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(61)
        .install()
        .unwrap();
    let b = InstallOptions::new("stripe-b.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(62)
        .striped(4, None)
        .install()
        .unwrap();
    let data: Vec<u8> = (0..300_000u32).map(|i| (i * 7 % 251) as u8).collect();
    let root = UserContext::superuser();
    a.dsi.write(&root, "/home/alice/striped.bin", 0, &data).unwrap();

    let la = a.logon("alice", "pw", 3600, 610).unwrap();
    let lb = b.logon("alice", "pw", 3600, 611).unwrap();
    let mut sa = ClientSession::connect(a.gridftp_addr(), a.client_config(&la, 612)).unwrap();
    sa.login().unwrap();
    let mut sb = ClientSession::connect(b.gridftp_addr(), b.client_config(&lb, 613)).unwrap();
    sb.login().unwrap();
    sb.install_dcsc(sa.credential()).unwrap();
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/striped.bin",
        &mut sb,
        "/home/alice/striped.bin",
        &TransferOpts::default().striped_mode().block(16 * 1024),
        None,
    )
    .unwrap();
    assert!(outcome.is_success(), "striped transfer failed: {outcome:?}");
    let alice = UserContext::user("alice");
    let got = read_all(b.dsi.as_ref(), &alice, "/home/alice/striped.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
    a.shutdown();
    b.shutdown();
}

#[test]
fn spas_refused_on_unstriped_server() {
    let ep = InstallOptions::new("plain.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(71)
        .install()
        .unwrap();
    let logon = ep.logon("alice", "pw", 3600, 710).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 711)).unwrap();
    s.login().unwrap();
    assert!(s.spas().is_err(), "SPAS must be refused on a 1-stripe server");
    ep.shutdown();
}

#[test]
fn spas_returns_one_listener_per_stripe() {
    let ep = InstallOptions::new("many.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(81)
        .striped(3, None)
        .install()
        .unwrap();
    let logon = ep.logon("alice", "pw", 3600, 810).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 811)).unwrap();
    s.login().unwrap();
    let addrs = s.spas().unwrap();
    assert_eq!(addrs.len(), 3);
    // All distinct ports.
    let mut ports: Vec<u16> = addrs.iter().map(|a| a.port).collect();
    ports.sort_unstable();
    ports.dedup();
    assert_eq!(ports.len(), 3);
    ep.shutdown();
}
