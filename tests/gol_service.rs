//! Globus Online integration: Fig 6 (password activation + checkpoint
//! restart) and Fig 7 (OAuth activation).

use ig_gcmu::InstallOptions;
use ig_gol::{GlobusOnline, TransferRequest};
use ig_pki::time::Clock;
use ig_server::dsi::read_all;
use ig_server::{FaultInjector, UserContext};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const NOW: u64 = 1_900_000_000;

fn payload(n: usize) -> Vec<u8> {
    (0..n as u32).map(|i| (i * 17 % 253) as u8).collect()
}

#[test]
fn password_activation_and_managed_transfer() {
    let a = InstallOptions::new("go-a.example.org")
        .account("alice", "pw-a")
        .clock(Clock::Fixed(NOW))
        .seed(11)
        .install()
        .unwrap();
    let b = InstallOptions::new("go-b.example.org")
        .account("alice", "pw-b")
        .clock(Clock::Fixed(NOW))
        .seed(12)
        .install()
        .unwrap();
    let data = payload(80_000);
    let root = UserContext::superuser();
    a.dsi.write(&root, "/home/alice/data.bin", 0, &data).unwrap();

    let go = GlobusOnline::new(Clock::Fixed(NOW), 7_000);
    go.register_gcmu(&a);
    go.register_gcmu(&b);
    // Fig 6 steps: user supplies username/password; GO gets short-term
    // certs. The password transits GO (the concern OAuth removes).
    let audit_a = go.activate_with_password("alice@go", "go-a.example.org", "alice", "pw-a", 3600).unwrap();
    assert!(audit_a.third_party_saw_password());
    assert!(!audit_a.stored_by_service);
    go.activate_with_password("alice@go", "go-b.example.org", "alice", "pw-b", 3600).unwrap();
    // Managed third-party transfer across the two CAs — GO installs the
    // DCSC context automatically (§VIII).
    let result = go
        .submit(
            "alice@go",
            &TransferRequest {
                src_endpoint: "go-a.example.org".into(),
                src_path: "/home/alice/data.bin".into(),
                dst_endpoint: "go-b.example.org".into(),
                dst_path: "/home/alice/data.bin".into(),
                max_retries: 0,
                retry: None,
                opts: None,
            },
        )
        .unwrap();
    assert!(result.completed);
    assert_eq!(result.attempts, 1);
    let alice = UserContext::user("alice");
    let got = read_all(b.dsi.as_ref(), &alice, "/home/alice/data.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
    a.shutdown();
    b.shutdown();
}

#[test]
fn fault_mid_transfer_restarts_from_checkpoint() {
    // Fig 6: "If any failure occurs during the transfer, Globus Online
    // will use the short-term certificate to reauthenticate with the
    // endpoints on the user's behalf and restart the transfer from the
    // last checkpoint."
    let fault = FaultInjector::after_bytes(100_000); // die halfway
    let a = InstallOptions::new("flaky-a.example.org")
        .account("alice", "pw-a")
        .clock(Clock::Fixed(NOW))
        .seed(21)
        .fault(Arc::clone(&fault))
        .install()
        .unwrap();
    let b = InstallOptions::new("flaky-b.example.org")
        .account("alice", "pw-b")
        .clock(Clock::Fixed(NOW))
        .seed(22)
        .install()
        .unwrap();
    let data = payload(200_000);
    let root = UserContext::superuser();
    a.dsi.write(&root, "/home/alice/big.bin", 0, &data).unwrap();

    let go = GlobusOnline::new(Clock::Fixed(NOW), 8_000);
    go.register_gcmu(&a);
    go.register_gcmu(&b);
    go.activate_with_password("u", "flaky-a.example.org", "alice", "pw-a", 3600).unwrap();
    go.activate_with_password("u", "flaky-b.example.org", "alice", "pw-b", 3600).unwrap();
    let result = go
        .submit(
            "u",
            &TransferRequest {
                src_endpoint: "flaky-a.example.org".into(),
                src_path: "/home/alice/big.bin".into(),
                dst_endpoint: "flaky-b.example.org".into(),
                dst_path: "/home/alice/big.bin".into(),
                max_retries: 3,
                retry: None,
                opts: Some(ig_client::TransferOpts::default().parallel(2).block(8 * 1024)),
            },
        )
        .unwrap();
    assert!(result.completed);
    assert_eq!(result.attempts, 2, "one fault, one successful retry");
    assert!(fault.fired());
    assert!(result.checkpoint.is_complete(data.len() as u64));
    let alice = UserContext::user("alice");
    let got = read_all(b.dsi.as_ref(), &alice, "/home/alice/big.bin", 1 << 16).unwrap();
    assert_eq!(got, data, "reassembled file must be byte-identical");
    // The event log recorded both the failure and the recovery.
    let events = go.events.lock().join("\n");
    assert!(events.contains("attempt 1 failed"), "events: {events}");
    assert!(events.contains("complete after 2 attempt"), "events: {events}");
    a.shutdown();
    b.shutdown();
}

#[test]
fn transfer_without_retry_fails_and_reports() {
    let fault = FaultInjector::after_bytes(10_000);
    let a = InstallOptions::new("once-a.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(31)
        .fault(fault)
        .install()
        .unwrap();
    let b = InstallOptions::new("once-b.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(32)
        .install()
        .unwrap();
    let root = UserContext::superuser();
    a.dsi.write(&root, "/home/alice/f.bin", 0, &payload(100_000)).unwrap();
    let go = GlobusOnline::new(Clock::Fixed(NOW), 9_000);
    go.register_gcmu(&a);
    go.register_gcmu(&b);
    go.activate_with_password("u", "once-a.example.org", "alice", "pw", 3600).unwrap();
    go.activate_with_password("u", "once-b.example.org", "alice", "pw", 3600).unwrap();
    let err = go
        .submit(
            "u",
            &TransferRequest {
                src_endpoint: "once-a.example.org".into(),
                src_path: "/home/alice/f.bin".into(),
                dst_endpoint: "once-b.example.org".into(),
                dst_path: "/home/alice/f.bin".into(),
                max_retries: 0,
                retry: None,
                opts: Some(ig_client::TransferOpts::default().block(4 * 1024)),
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("after 1 attempts"), "got: {err}");
    a.shutdown();
    b.shutdown();
}

#[test]
fn expired_credential_reactivates_and_resumes_from_checkpoint() {
    // Fig 6 past the certificate lifetime: the short-term credential GO
    // stored has expired by the time the transfer (re)starts, so GO must
    // reauthenticate — mint a fresh credential via the registered
    // reactivation hook — and then restart from the last checkpoint.
    //
    // Clock arrangement: the endpoints sit at `NOW`, GO's clock runs two
    // hours ahead. A 1-hour credential is expired from GO's point of
    // view while a 3-hour credential still has an hour left.
    let fault = FaultInjector::after_bytes(100_000);
    let a = InstallOptions::new("stale-a.example.org")
        .account("alice", "pw-a")
        .clock(Clock::Fixed(NOW))
        .seed(61)
        .fault(Arc::clone(&fault))
        .install()
        .unwrap();
    let b = InstallOptions::new("stale-b.example.org")
        .account("alice", "pw-b")
        .clock(Clock::Fixed(NOW))
        .seed(62)
        .install()
        .unwrap();
    let data = payload(200_000);
    let root = UserContext::superuser();
    a.dsi.write(&root, "/home/alice/big.bin", 0, &data).unwrap();

    let go = GlobusOnline::new(Clock::Fixed(NOW + 7200), 12_000);
    go.register_gcmu(&a);
    go.register_gcmu(&b);
    // Long-lived credentials first — these are what the reactivation
    // hooks will hand back, standing in for a fresh myproxy-logon.
    go.activate_with_password("u", "stale-a.example.org", "alice", "pw-a", 10_800).unwrap();
    go.activate_with_password("u", "stale-b.example.org", "alice", "pw-b", 10_800).unwrap();
    let fresh_a = go.activation("u", "stale-a.example.org").unwrap();
    let fresh_b = go.activation("u", "stale-b.example.org").unwrap();
    assert!(fresh_a.remaining(NOW + 7200) > 0);
    // Now overwrite the stored activations with 1-hour credentials that
    // are already expired on GO's clock.
    go.activate_with_password("u", "stale-a.example.org", "alice", "pw-a", 3600).unwrap();
    go.activate_with_password("u", "stale-b.example.org", "alice", "pw-b", 3600).unwrap();
    assert_eq!(go.activation("u", "stale-a.example.org").unwrap().remaining(NOW + 7200), 0);

    let react_a = Arc::new(AtomicU32::new(0));
    let react_b = Arc::new(AtomicU32::new(0));
    {
        let n = Arc::clone(&react_a);
        go.set_reactivator(
            "u",
            "stale-a.example.org",
            Arc::new(move || {
                n.fetch_add(1, Ordering::SeqCst);
                Ok(fresh_a.clone())
            }),
        );
        let n = Arc::clone(&react_b);
        go.set_reactivator(
            "u",
            "stale-b.example.org",
            Arc::new(move || {
                n.fetch_add(1, Ordering::SeqCst);
                Ok(fresh_b.clone())
            }),
        );
    }

    let result = go
        .submit(
            "u",
            &TransferRequest {
                src_endpoint: "stale-a.example.org".into(),
                src_path: "/home/alice/big.bin".into(),
                dst_endpoint: "stale-b.example.org".into(),
                dst_path: "/home/alice/big.bin".into(),
                max_retries: 0,
                retry: Some(ig_gol::RetryPolicy::immediate(4)),
                opts: Some(ig_client::TransferOpts::default().parallel(2).block(8 * 1024)),
            },
        )
        .unwrap();
    assert!(result.completed);
    assert_eq!(result.attempts, 2, "one fault, one successful retry");
    assert!(fault.fired());
    // Each endpoint reactivated exactly once (attempt 1); the fresh
    // credentials were stored, so the retry reused them.
    assert_eq!(react_a.load(Ordering::SeqCst), 1);
    assert_eq!(react_b.load(Ordering::SeqCst), 1);
    let alice = UserContext::user("alice");
    let got = read_all(b.dsi.as_ref(), &alice, "/home/alice/big.bin", 1 << 16).unwrap();
    assert_eq!(got, data, "reassembled file must be byte-identical");
    let events = go.events.lock().join("\n");
    assert!(events.contains("reactivated stale-a.example.org"), "events: {events}");
    assert!(events.contains("reactivated stale-b.example.org"), "events: {events}");
    assert!(events.contains("attempt 1 failed"), "events: {events}");
    a.shutdown();
    b.shutdown();
}

#[test]
fn expired_credential_without_reactivator_is_a_typed_error() {
    let a = InstallOptions::new("dead-a.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(71)
        .install()
        .unwrap();
    let go = GlobusOnline::new(Clock::Fixed(NOW + 7200), 13_000);
    go.register_gcmu(&a);
    go.activate_with_password("u", "dead-a.example.org", "alice", "pw", 3600).unwrap();
    let err = go
        .submit(
            "u",
            &TransferRequest {
                src_endpoint: "dead-a.example.org".into(),
                src_path: "/x".into(),
                dst_endpoint: "dead-a.example.org".into(),
                dst_path: "/y".into(),
                max_retries: 0,
                retry: None,
                opts: None,
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, ig_gol::GolError::CredentialExpired { .. }),
        "got: {err}"
    );
    assert!(err.to_string().contains("expired and cannot reactivate"), "got: {err}");
    a.shutdown();
}

#[test]
fn oauth_activation_keeps_password_at_the_endpoint() {
    // Fig 7: the user types the password on the endpoint's page; GO only
    // ever sees the authorization code.
    let a = InstallOptions::new("oauth-ep.example.org")
        .account("alice", "web-pw")
        .clock(Clock::Fixed(NOW))
        .seed(41)
        .oauth()
        .install()
        .unwrap();
    let go = GlobusOnline::new(Clock::Fixed(NOW), 10_000);
    go.register_gcmu(&a);
    // The "browser redirect": user authenticates at the endpoint.
    let code = a
        .oauth
        .as_ref()
        .expect("oauth enabled")
        .authorize("alice", "web-pw", "globus-online")
        .unwrap();
    let audit = go.activate_with_oauth("alice@go", "oauth-ep.example.org", &code, 3600).unwrap();
    assert!(!audit.third_party_saw_password(), "OAuth must keep the password at the endpoint");
    // The activation is usable for real sessions.
    let act = go.activation("alice@go", "oauth-ep.example.org").unwrap();
    assert!(act.remaining(NOW) > 0);
    assert_eq!(act.credential.identity().common_name(), Some("alice"));
    // A second use of the same code fails (single-use).
    assert!(go.activate_with_oauth("alice@go", "oauth-ep.example.org", &code, 3600).is_err());
    a.shutdown();
}

#[test]
fn activation_failures_are_reported() {
    let a = InstallOptions::new("strict.example.org")
        .account("alice", "right")
        .clock(Clock::Fixed(NOW))
        .seed(51)
        .install()
        .unwrap();
    let go = GlobusOnline::new(Clock::Fixed(NOW), 11_000);
    go.register_gcmu(&a);
    assert!(go
        .activate_with_password("u", "strict.example.org", "alice", "wrong", 3600)
        .is_err());
    assert!(go.activate_with_password("u", "nowhere.example.org", "a", "b", 3600).is_err());
    assert!(go.activation("u", "strict.example.org").is_err());
    // Submitting without activation is refused.
    let err = go
        .submit(
            "u",
            &TransferRequest {
                src_endpoint: "strict.example.org".into(),
                src_path: "/x".into(),
                dst_endpoint: "strict.example.org".into(),
                dst_path: "/y".into(),
                max_retries: 0,
                retry: None,
                opts: None,
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("not activated"));
    a.shutdown();
}
