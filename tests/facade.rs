//! Smoke test for the `instant-gridftp` facade crate: the re-exported
//! module tree is the documented public API surface.

use instant_gridftp as ig;

#[test]
fn facade_reexports_cover_the_stack() {
    // Crypto primitives.
    let digest = ig::crypto::Sha256::digest(b"facade");
    assert_eq!(digest.len(), 32);
    assert_eq!(ig::crypto::encode::hex_encode(&[0xab]), "ab");
    // PKI types.
    let dn = ig::pki::DistinguishedName::parse("/O=GCMU/CN=facade").unwrap();
    assert_eq!(dn.common_name(), Some("facade"));
    // Protocol grammar.
    let cmd = ig::protocol::command::Command::parse("DCSC D").unwrap();
    assert_eq!(cmd.to_string(), "DCSC D");
    // netsim.
    let link = ig::netsim::Bottleneck::new(1e9, 0.01, 0.0);
    assert!(link.bdp_bytes() > 0.0);
    // Ledger (gcmu).
    let p = ig::gcmu::procedure(ig::gcmu::SetupMethod::Gcmu);
    assert_eq!(p.admin_steps.len(), 4);
    // Tuning (gol).
    assert_eq!(ig::gol::tune(1 << 30).parallelism, 8);
    // Baseline presets.
    assert!(ig::baselines::scp::scp_netsim_params().window_cap_bytes.is_some());
    // Server-side building blocks.
    let ranges = {
        let mut r = ig::protocol::ByteRanges::new();
        r.add(0, 10);
        r
    };
    assert!(ranges.is_complete(10));
    let user = ig::server::UserContext::user("facade");
    assert_eq!(user.home, "/home/facade");
}
