//! End-to-end over the POSIX DSI: a GCMU endpoint whose storage is a
//! real on-disk directory tree ("POSIX-compliant file systems", §II-A).

use ig_client::{transfer, ClientSession, TransferOpts};
use ig_gcmu::InstallOptions;
use ig_pki::time::Clock;
use ig_server::{Dsi, PosixDsi, UserContext};
use std::sync::Arc;

const NOW: u64 = 2_200_000_000;

fn temp_base(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ig-posix-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_stack_over_real_filesystem() {
    let base = temp_base("full");
    let dsi = Arc::new(PosixDsi::new(&base).unwrap());
    // Provision alice's home on disk.
    dsi.mkdir(&UserContext::superuser(), "/home/alice").unwrap();
    let mut opts = InstallOptions::new("posix.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(0xDD);
    opts.dsi = Some(Arc::clone(&dsi) as Arc<dyn Dsi>);
    let ep = opts.install().unwrap();
    let logon = ep.logon("alice", "pw", 3600, 0xDD1).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xDD2)).unwrap();
    s.login().unwrap();

    let payload: Vec<u8> = (0..200_000u32).map(|i| (i * 11 % 251) as u8).collect();
    transfer::put_bytes(&mut s, "/home/alice/real.bin", &payload, &TransferOpts::default().parallel(4))
        .unwrap();
    // The bytes are really on disk.
    let on_disk = std::fs::read(base.join("home/alice/real.bin")).unwrap();
    assert_eq!(on_disk, payload);
    // And come back through the protocol byte-identical.
    let back = transfer::get_bytes(&mut s, "/home/alice/real.bin", &TransferOpts::default().parallel(2))
        .unwrap();
    assert_eq!(back, payload);
    // Server-side checksum agrees with the on-disk content.
    let remote = s.cksm("/home/alice/real.bin", 0, None).unwrap();
    assert_eq!(
        remote,
        ig_crypto::encode::hex_encode(&ig_crypto::Sha256::digest(&payload))
    );
    // Directory ops hit the real filesystem.
    s.command(&ig_protocol::command::Command::Mkd("/home/alice/sub".into())).unwrap();
    assert!(base.join("home/alice/sub").is_dir());
    s.quit().unwrap();
    ep.shutdown();
    let _ = std::fs::remove_dir_all(base);
}

#[test]
fn resume_works_on_disk() {
    let base = temp_base("resume");
    let dsi = Arc::new(PosixDsi::new(&base).unwrap());
    dsi.mkdir(&UserContext::superuser(), "/home/alice").unwrap();
    let mut opts = InstallOptions::new("posix2.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(0xDE);
    opts.dsi = Some(Arc::clone(&dsi) as Arc<dyn Dsi>);
    let ep = opts.install().unwrap();
    let logon = ep.logon("alice", "pw", 3600, 0xDE1).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xDE2)).unwrap();
    s.login().unwrap();

    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
    // Simulate a failed first attempt that delivered the middle chunk.
    let user = UserContext::user("alice");
    dsi.write(&user, "/home/alice/partial.bin", 30_000, &payload[30_000..60_000]).unwrap();
    let mut have = ig_protocol::ByteRanges::new();
    have.add(30_000, 60_000);
    let sent = transfer::put_bytes_resume(
        &mut s,
        "/home/alice/partial.bin",
        &payload,
        Some(&have),
        &TransferOpts::default().parallel(2),
    )
    .unwrap();
    assert_eq!(sent, 70_000, "only the two holes cross the wire");
    let on_disk = std::fs::read(base.join("home/alice/partial.bin")).unwrap();
    assert_eq!(on_disk, payload);
    s.quit().unwrap();
    ep.shutdown();
    let _ = std::fs::remove_dir_all(base);
}
