//! Adversarial and failure-path integration tests: the security workflows
//! must fail *closed*, with the right error, and leave sessions usable.

use ig_client::{transfer, ClientConfig, ClientSession, TransferOpts};
use ig_gcmu::InstallOptions;
use ig_pki::proxy::ProxyOptions;
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use ig_protocol::command::Command;
use ig_server::UserContext;

const NOW: u64 = 2_300_000_000;

fn endpoint(name: &str, seed: u64) -> ig_gcmu::GcmuEndpoint {
    InstallOptions::new(name)
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(seed)
        .install()
        .unwrap()
}

#[test]
fn expired_credential_rejected_at_login() {
    // Short-lived credentials die: issue a 60-second credential from an
    // endpoint whose clock sits 100k seconds in the past, then present it
    // to a server living at NOW (which trusts the issuing CA, so expiry
    // is the only thing that can fail).
    let past = InstallOptions::new("past.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW - 100_000))
        .seed(0xF2)
        .install()
        .unwrap();
    let stale_logon = past.logon("alice", "pw", 60, 0xF2_1).unwrap();
    let target = InstallOptions::new("target.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(0xF3)
        .trust_also(past.ca.root_cert())
        .install()
        .unwrap();
    // The client must trust the target's host CA to get past server
    // validation; only the client credential's expiry should fail.
    let mut trust = TrustStore::new();
    trust.add_root(past.ca.root_cert());
    trust.add_root(target.ca.root_cert());
    let cfg = ClientConfig::new(stale_logon.credential.clone(), trust)
        .with_clock(Clock::Fixed(NOW))
        .with_seed(0xF3_1);
    let mut s = ClientSession::connect(target.gridftp_addr(), cfg).unwrap();
    let err = s.login().unwrap_err();
    assert!(
        err.to_string().contains("535") || err.to_string().contains("expired"),
        "got: {err}"
    );
    past.shutdown();
    target.shutdown();
}

#[test]
fn tampered_dcsc_blob_rejected_session_survives() {
    let ep = endpoint("tamper.example.org", 0xF4);
    let logon = ep.logon("alice", "pw", 3600, 0xF4_1).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xF4_2)).unwrap();
    s.login().unwrap();
    // Corrupt a DCSC blob mid-string.
    let cmd = ig_protocol::dcsc::encode_dcsc_p(&logon.credential);
    let Command::Dcsc { blob: Some(blob), .. } = cmd else { panic!("expected DCSC P") };
    let tampered: String = blob
        .chars()
        .map(|c| if c == 'A' { 'B' } else { c })
        .collect();
    let err = s
        .command(&Command::Dcsc { context_type: 'P', blob: Some(tampered) })
        .unwrap_err();
    assert!(err.to_string().contains("500"), "got: {err}");
    // Session is still healthy afterwards.
    assert!(s.command(&Command::Noop).unwrap().is_success());
    let data = transfer::put_bytes(&mut s, "/home/alice/ok.bin", b"fine", &TransferOpts::default())
        .unwrap();
    assert_eq!(data, 4);
    s.quit().unwrap();
    ep.shutdown();
}

#[test]
fn delegation_depth_zero_blocks_server_side_dcau() {
    // A client that delegates a proxy with path_len 0 at login: the
    // server holds a credential it cannot re-delegate; DCAU A still works
    // (it only *presents*), proving depth limits bind delegation, not use.
    let ep = endpoint("depth.example.org", 0xF5);
    let logon = ep.logon("alice", "pw", 3600, 0xF5_1).unwrap();
    let cfg = ep.client_config(&logon, 0xF5_2).no_delegation();
    let mut s = ClientSession::connect(ep.gridftp_addr(), cfg).unwrap();
    s.login().unwrap();
    // Manual delegation with a constrained proxy: replicate SITE DELEG
    // with path_len = 0.
    let reply = s.command(&Command::Site("DELEG REQ".into())).unwrap();
    let b64 = reply.text().strip_prefix("DELEG=").unwrap().to_string();
    let req = ig_crypto::encode::base64_decode(&b64).unwrap();
    let mut rng = ig_crypto::rng::seeded(0xF5_3);
    let grant = ig_gsi::delegation::grant(
        &mut rng,
        &logon.credential,
        &req,
        NOW,
        ProxyOptions { lifetime: 3600, path_len: Some(0) },
    )
    .unwrap();
    s.command(&Command::Site(format!(
        "DELEG PUT {}",
        ig_crypto::encode::base64_encode(&grant)
    )))
    .unwrap();
    // Transfers still work with the constrained delegated credential.
    transfer::put_bytes(&mut s, "/home/alice/d0.bin", b"depth-zero", &TransferOpts::default())
        .unwrap();
    s.quit().unwrap();
    ep.shutdown();
}

#[test]
fn bogus_delegation_grant_rejected() {
    let ep = endpoint("grant.example.org", 0xF6);
    let logon = ep.logon("alice", "pw", 3600, 0xF6_1).unwrap();
    let cfg = ep.client_config(&logon, 0xF6_2).no_delegation();
    let mut s = ClientSession::connect(ep.gridftp_addr(), cfg).unwrap();
    s.login().unwrap();
    s.command(&Command::Site("DELEG REQ".into())).unwrap();
    // Garbage grant.
    let err = s.command(&Command::Site("DELEG PUT aGVsbG8=".into())).unwrap_err();
    assert!(err.to_string().contains("535"), "got: {err}");
    // PUT without a pending request.
    let err = s.command(&Command::Site("DELEG PUT aGVsbG8=".into())).unwrap_err();
    assert!(err.to_string().contains("503"), "got: {err}");
    s.quit().unwrap();
    ep.shutdown();
}

#[test]
fn retr_of_missing_and_forbidden_paths() {
    let ep = endpoint("paths.example.org", 0xF7);
    let root = UserContext::superuser();
    ep.dsi.write(&root, "/home/bob/secret.bin", 0, b"top secret").unwrap();
    let logon = ep.logon("alice", "pw", 3600, 0xF7_1).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xF7_2)).unwrap();
    s.login().unwrap();
    // Missing file: clean 550, session lives.
    let err =
        transfer::get_bytes(&mut s, "/home/alice/nothing.bin", &TransferOpts::default()).unwrap_err();
    assert!(err.to_string().contains("550"), "got: {err}");
    // Another user's file: denied (the setuid confinement), session lives.
    let err =
        transfer::get_bytes(&mut s, "/home/bob/secret.bin", &TransferOpts::default()).unwrap_err();
    assert!(err.to_string().contains("550"), "got: {err}");
    // Path traversal is normalized away, not honoured.
    let err = transfer::get_bytes(&mut s, "/home/alice/../bob/secret.bin", &TransferOpts::default())
        .unwrap_err();
    assert!(err.to_string().contains("550"), "got: {err}");
    // And a normal transfer still succeeds afterwards.
    transfer::put_bytes(&mut s, "/home/alice/mine.bin", b"ok", &TransferOpts::default()).unwrap();
    s.quit().unwrap();
    ep.shutdown();
}

#[test]
fn self_signed_credential_not_in_store_rejected() {
    // A self-minted identity (self-signed cert) must not authenticate.
    let ep = endpoint("selfmint.example.org", 0xF8);
    let mut rng = ig_crypto::rng::seeded(0xF8_1);
    let fake_ca = ig_pki::CertificateAuthority::create(
        &mut rng,
        ig_pki::DistinguishedName::parse("/O=GCMU/OU=selfmint.example.org/CN=alice").unwrap(),
        512,
        NOW - 10,
        7200,
    )
    .unwrap();
    let fake_cred = Credential::new(
        vec![fake_ca.root_cert().clone()],
        fake_ca.keypair().private.clone(),
    )
    .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ep.ca.root_cert());
    let cfg = ClientConfig::new(fake_cred, trust)
        .with_clock(Clock::Fixed(NOW))
        .with_seed(0xF8_2);
    let mut s = ClientSession::connect(ep.gridftp_addr(), cfg).unwrap();
    let err = s.login().unwrap_err();
    assert!(err.to_string().contains("535"), "got: {err}");
    ep.shutdown();
}

#[test]
fn prot_floor_enforced_on_data_channel() {
    // Receiver configured for PROT P must reject a sender that downgrades.
    // Exercised at the GSI layer through the client API: set PROT P on
    // the session, transfer succeeds; the records are Private on the wire
    // (covered by gsi tests); here we check PROT survives across
    // transfers and the session handles level switches.
    let ep = endpoint("prot.example.org", 0xF9);
    let root = UserContext::superuser();
    ep.dsi.write(&root, "/home/alice/p.bin", 0, &vec![5u8; 20_000]).unwrap();
    let logon = ep.logon("alice", "pw", 3600, 0xF9_1).unwrap();
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xF9_2)).unwrap();
    s.login().unwrap();
    s.set_prot(ig_gsi::ProtectionLevel::Private).unwrap();
    let a = transfer::get_bytes(&mut s, "/home/alice/p.bin", &TransferOpts::default()).unwrap();
    s.set_prot(ig_gsi::ProtectionLevel::Clear).unwrap();
    let b = transfer::get_bytes(&mut s, "/home/alice/p.bin", &TransferOpts::default()).unwrap();
    assert_eq!(a, b);
    s.quit().unwrap();
    ep.shutdown();
}
