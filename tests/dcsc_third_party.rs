//! The paper's centerpiece (Figures 4 and 5, §V): secure third-party
//! transfers across CA domains that do not trust each other — broken
//! without DCSC, fixed with it, even when one endpoint is legacy.

use ig_client::{transfer, ClientSession, TransferOpts};
use ig_gcmu::{GcmuEndpoint, InstallOptions};
use ig_pki::cert::Certificate;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName};
use ig_server::dsi::read_all;
use ig_server::UserContext;

const NOW: u64 = 1_800_000_000;

/// Two GCMU endpoints, each with its own online CA (disjoint trust), and
/// the user `alice` present at both sites.
struct TwoSites {
    a: GcmuEndpoint,
    b: GcmuEndpoint,
}

fn two_sites(seed: u64, b_legacy: bool) -> TwoSites {
    let a = InstallOptions::new("site-a.example.org")
        .account("alice", "pw-at-a")
        .clock(Clock::Fixed(NOW))
        .seed(seed)
        .install()
        .unwrap();
    let mut b_opts = InstallOptions::new("site-b.example.org")
        .account("alice", "pw-at-b")
        .clock(Clock::Fixed(NOW))
        .seed(seed + 1);
    if b_legacy {
        b_opts = b_opts.legacy();
    }
    let b = b_opts.install().unwrap();
    TwoSites { a, b }
}

fn sessions(sites: &TwoSites, seed: u64) -> (ClientSession, ClientSession) {
    // Fig 3 workflow at each site: password → short-lived credential.
    let logon_a = sites.a.logon("alice", "pw-at-a", 3600, seed).unwrap();
    let logon_b = sites.b.logon("alice", "pw-at-b", 3600, seed + 1).unwrap();
    // Distinct CAs minted distinct identities — the Fig 4 setup.
    assert_ne!(
        logon_a.credential.identity(),
        logon_b.credential.identity()
    );
    let mut sa =
        ClientSession::connect(sites.a.gridftp_addr(), sites.a.client_config(&logon_a, seed + 2))
            .unwrap();
    sa.login().unwrap();
    let mut sb =
        ClientSession::connect(sites.b.gridftp_addr(), sites.b.client_config(&logon_b, seed + 3))
            .unwrap();
    sb.login().unwrap();
    (sa, sb)
}

fn stage_source(sites: &TwoSites, data: &[u8]) {
    let root = UserContext::superuser();
    sites.a.dsi.write(&root, "/home/alice/src.bin", 0, data).unwrap();
}

fn payload() -> Vec<u8> {
    (0..60_000u32).map(|i| (i * 31 % 251) as u8).collect()
}

#[test]
fn cross_ca_transfer_fails_without_dcsc() {
    // Fig 4: endpoint B receives a certificate issued by CA-A, which it
    // does not trust; DCAU fails and so does the transfer.
    let sites = two_sites(100, false);
    let data = payload();
    stage_source(&sites, &data);
    let (mut sa, mut sb) = sessions(&sites, 1000);
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/src.bin",
        &mut sb,
        "/home/alice/dst.bin",
        &TransferOpts::default(),
        None,
    )
    .unwrap();
    assert!(!outcome.is_success(), "cross-CA DCAU must fail: {outcome:?}");
    let err = format!("{} {}", outcome.src_reply, outcome.dst_reply);
    assert!(err.contains("425") || err.contains("426"), "got: {err}");
}

#[test]
fn dcsc_on_receiver_fixes_cross_ca_transfer() {
    // Fig 5: "it can use DCSC to pass credential A to site B, for
    // subsequent presentation to site A."
    let sites = two_sites(200, false);
    let data = payload();
    stage_source(&sites, &data);
    let (mut sa, mut sb) = sessions(&sites, 2000);
    // The client hands site B the credential it uses at site A.
    sb.install_dcsc(sa.credential()).unwrap();
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/src.bin",
        &mut sb,
        "/home/alice/dst.bin",
        &TransferOpts::default().parallel(4),
        None,
    )
    .unwrap();
    assert!(outcome.is_success(), "DCSC transfer failed: {outcome:?}");
    assert!(outcome.checkpoint.is_complete(data.len() as u64));
    let alice = UserContext::user("alice");
    let got = read_all(sites.b.dsi.as_ref(), &alice, "/home/alice/dst.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
    sa.quit().unwrap();
    sb.quit().unwrap();
}

#[test]
fn dcsc_works_with_legacy_receiver_via_sender_side_install() {
    // §IV-B: "this works even if one endpoint is a legacy GridFTP server
    // that knows nothing about DCSC." Here B is legacy, so the client
    // installs B's credential on A instead.
    let sites = two_sites(300, true);
    let data = payload();
    stage_source(&sites, &data);
    let (mut sa, mut sb) = sessions(&sites, 3000);
    // Legacy endpoint refuses the command outright.
    let dcsc_err = sb.install_dcsc(sa.credential()).unwrap_err();
    assert!(dcsc_err.to_string().contains("500"), "got: {dcsc_err}");
    // So pass credential *B* to site *A* instead.
    sa.install_dcsc(sb.credential()).unwrap();
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/src.bin",
        &mut sb,
        "/home/alice/dst.bin",
        &TransferOpts::default(),
        None,
    )
    .unwrap();
    assert!(outcome.is_success(), "legacy-compatible DCSC failed: {outcome:?}");
    let alice = UserContext::user("alice");
    let got = read_all(sites.b.dsi.as_ref(), &alice, "/home/alice/dst.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
}

#[test]
fn dcsc_self_signed_random_context_both_sides() {
    // §V: "If both servers support DCSC, clients that desire higher
    // security may specify a random, self-signed certificate as the DCAU
    // context."
    let sites = two_sites(400, false);
    let data = payload();
    stage_source(&sites, &data);
    let (mut sa, mut sb) = sessions(&sites, 4000);
    // Mint a throwaway self-signed credential.
    let mut rng = ig_crypto::rng::seeded(4242);
    let throwaway = CertificateAuthority::create(
        &mut rng,
        DistinguishedName::parse("/CN=random-dcau-context").unwrap(),
        512,
        NOW - 10,
        7200,
    )
    .unwrap();
    let random_cred = Credential::new(
        vec![throwaway.root_cert().clone()],
        throwaway.keypair().private.clone(),
    )
    .unwrap();
    sa.install_dcsc(&random_cred).unwrap();
    sb.install_dcsc(&random_cred).unwrap();
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/src.bin",
        &mut sb,
        "/home/alice/dst.bin",
        &TransferOpts::default().parallel(2),
        None,
    )
    .unwrap();
    assert!(outcome.is_success(), "random-context DCSC failed: {outcome:?}");
}

#[test]
fn dcsc_d_reverts_to_login_context() {
    // §V-B: "The command DCSC D will revert the context to whatever it
    // was immediately after login."
    let sites = two_sites(500, false);
    let data = payload();
    stage_source(&sites, &data);
    let (mut sa, mut sb) = sessions(&sites, 5000);
    sb.install_dcsc(sa.credential()).unwrap();
    sb.revert_dcsc().unwrap();
    // Back to the broken cross-CA state.
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/src.bin",
        &mut sb,
        "/home/alice/dst2.bin",
        &TransferOpts::default(),
        None,
    )
    .unwrap();
    assert!(!outcome.is_success(), "DCSC D should restore the failure");
}

#[test]
fn same_ca_third_party_needs_no_dcsc() {
    // Control case: one site transferring to itself (same CA both ends)
    // works with plain DCAU — DCSC is only needed across domains.
    let site = InstallOptions::new("solo.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(600)
        .install()
        .unwrap();
    let root = UserContext::superuser();
    let data = payload();
    site.dsi.write(&root, "/home/alice/src.bin", 0, &data).unwrap();
    let logon = site.logon("alice", "pw", 3600, 6000).unwrap();
    let mut s1 = ClientSession::connect(site.gridftp_addr(), site.client_config(&logon, 6001))
        .unwrap();
    s1.login().unwrap();
    let mut s2 = ClientSession::connect(site.gridftp_addr(), site.client_config(&logon, 6002))
        .unwrap();
    s2.login().unwrap();
    let outcome = transfer::third_party(
        &mut s1,
        "/home/alice/src.bin",
        &mut s2,
        "/home/alice/copy.bin",
        &TransferOpts::default(),
        None,
    )
    .unwrap();
    assert!(outcome.is_success(), "same-CA third-party failed: {outcome:?}");
    let alice = UserContext::user("alice");
    let got = read_all(site.dsi.as_ref(), &alice, "/home/alice/copy.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
}

#[test]
fn dcsc_blob_sizes_scale_with_chain() {
    // E12 sanity at the integration level.
    let sites = two_sites(700, false);
    let logon = sites.a.logon("alice", "pw-at-a", 3600, 7000).unwrap();
    let size_full = ig_protocol::dcsc::blob_size(&logon.credential);
    let leaf_only = Credential::new(
        vec![logon.credential.leaf().clone()],
        logon.credential.key().clone(),
    )
    .unwrap();
    let size_leaf = ig_protocol::dcsc::blob_size(&leaf_only);
    assert!(size_full > size_leaf);
    // Blob stays printable-ASCII regardless.
    let cmd = ig_protocol::dcsc::encode_dcsc_p(&logon.credential).to_string();
    assert!(cmd.bytes().all(|b| (32..=126).contains(&b)));
    let _unused: Vec<Certificate> = vec![];
}
