//! Cross-CA third-party transfer with DCSC — Figures 4 and 5 live.
//!
//! ```text
//! cargo run --release --example cross_ca_dcsc
//! ```
//!
//! Two GCMU sites, each with its own online CA, neither trusting the
//! other. A plain third-party transfer fails DCAU exactly as Fig 4
//! predicts; sending `DCSC P <credential-A>` to site B repairs it (Fig 5).

use instant_gridftp::client::{transfer, ClientSession, TransferOpts};
use instant_gridftp::gcmu::InstallOptions;
use instant_gridftp::server::UserContext;

fn main() {
    println!("== DCSC: third-party transfers across CA domains (Figs 4-5) ==\n");
    let site_a = InstallOptions::new("site-a.example.org")
        .account("alice", "pw-a")
        .seed(100)
        .install()
        .expect("install A");
    let site_b = InstallOptions::new("site-b.example.org")
        .account("alice", "pw-b")
        .seed(101)
        .install()
        .expect("install B");
    println!("site A CA: {}", site_a.ca.root_cert().subject());
    println!("site B CA: {}  (disjoint trust)\n", site_b.ca.root_cert().subject());

    // Stage a source file at A.
    let data: Vec<u8> = (0..500_000u32).map(|i| (i * 13 % 251) as u8).collect();
    site_a
        .dsi
        .write(&UserContext::superuser(), "/home/alice/results.dat", 0, &data)
        .expect("stage");

    // Per-site short-lived credentials (the GCMU model).
    let logon_a = site_a.logon("alice", "pw-a", 3600, 200).expect("logon A");
    let logon_b = site_b.logon("alice", "pw-b", 3600, 201).expect("logon B");
    println!("credential at A: {}", logon_a.credential.identity());
    println!("credential at B: {}\n", logon_b.credential.identity());

    let mut sa = ClientSession::connect(site_a.gridftp_addr(), site_a.client_config(&logon_a, 202))
        .expect("connect A");
    sa.login().expect("login A");
    let mut sb = ClientSession::connect(site_b.gridftp_addr(), site_b.client_config(&logon_b, 203))
        .expect("connect B");
    sb.login().expect("login B");

    // --- Fig 4: without DCSC the data channel cannot authenticate --------
    println!("attempt 1: third-party A -> B with plain DCAU");
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/results.dat",
        &mut sb,
        "/home/alice/results.dat",
        &TransferOpts::default(),
        None,
    )
    .expect("transport");
    println!("  receiver said: {}", outcome.dst_reply);
    assert!(!outcome.is_success(), "Fig 4 failure expected");
    println!("  => FAILS: site B does not trust CA-A (Fig 4)\n");

    // --- Fig 5: DCSC P passes credential A to site B ----------------------
    println!("attempt 2: DCSC P <credential A> sent to site B, then retry");
    sb.install_dcsc(sa.credential()).expect("DCSC install");
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/results.dat",
        &mut sb,
        "/home/alice/results.dat",
        &TransferOpts::default().parallel(4),
        None,
    )
    .expect("transport");
    println!("  receiver said: {}", outcome.dst_reply);
    println!("  sender said:   {}", outcome.src_reply);
    assert!(outcome.is_success(), "Fig 5 repair expected");

    // Verify the bytes at B.
    let got = instant_gridftp::server::dsi::read_all(
        site_b.dsi.as_ref(),
        &UserContext::user("alice"),
        "/home/alice/results.dat",
        1 << 20,
    )
    .expect("read back");
    assert_eq!(got, data);
    println!(
        "  => SUCCEEDS: {} bytes moved directly A->B, mutually authenticated (Fig 5)",
        got.len()
    );
    println!("\nno shared CA, no gridmap edits, data never touched the client.");
    sa.quit().expect("quit A");
    sb.quit().expect("quit B");
    site_a.shutdown();
    site_b.shutdown();
}
