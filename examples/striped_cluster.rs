//! Striped-server demo — Fig 2's cluster deployment.
//!
//! ```text
//! cargo run --release --example striped_cluster
//! ```
//!
//! The receiving endpoint runs four data-mover stripes, each behind its
//! own (simulated, rate-limited) NIC. `SPAS` hands the sender all four
//! listeners; MODE E blocks fan out across them and the aggregate
//! throughput scales with stripe count.

use instant_gridftp::client::{transfer, ClientSession, TransferOpts};
use instant_gridftp::gcmu::InstallOptions;
use instant_gridftp::server::UserContext;

const NIC_RATE: f64 = 2.0 * 1024.0 * 1024.0; // 2 MiB/s per stripe

fn run_once(stripes: usize, seed: u64) -> f64 {
    let src = InstallOptions::new("head-node.example.org")
        .account("alice", "pw")
        .seed(seed)
        .install()
        .expect("install src");
    let dst = InstallOptions::new("storage-cluster.example.org")
        .account("alice", "pw")
        .seed(seed + 1)
        .striped(stripes, Some(NIC_RATE))
        .install()
        .expect("install dst");
    let size = 2 << 20;
    let data: Vec<u8> = (0..size as u32).map(|i| (i % 251) as u8).collect();
    src.dsi
        .write(&UserContext::superuser(), "/home/alice/big.dat", 0, &data)
        .expect("stage");
    let la = src.logon("alice", "pw", 3600, seed + 10).expect("logon src");
    let lb = dst.logon("alice", "pw", 3600, seed + 11).expect("logon dst");
    let mut sa = ClientSession::connect(src.gridftp_addr(), src.client_config(&la, seed + 12))
        .expect("connect src");
    sa.login().expect("login src");
    let mut sb = ClientSession::connect(dst.gridftp_addr(), dst.client_config(&lb, seed + 13))
        .expect("connect dst");
    sb.login().expect("login dst");
    sb.install_dcsc(sa.credential()).expect("dcsc");
    let opts = if stripes > 1 {
        TransferOpts::default().striped_mode().block(64 * 1024)
    } else {
        TransferOpts::default().block(64 * 1024)
    };
    let start = std::time::Instant::now();
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/big.dat",
        &mut sb,
        "/home/alice/big.dat",
        &opts,
        None,
    )
    .expect("transfer");
    let secs = start.elapsed().as_secs_f64();
    assert!(outcome.is_success(), "{outcome:?}");
    let got = instant_gridftp::server::dsi::read_all(
        dst.dsi.as_ref(),
        &UserContext::user("alice"),
        "/home/alice/big.dat",
        1 << 20,
    )
    .expect("read back");
    assert_eq!(got, data);
    src.shutdown();
    dst.shutdown();
    size as f64 / secs
}

fn main() {
    println!("== Striped GridFTP server (Fig 2) ==");
    println!("2 MiB transfer; each stripe NIC-limited to 16.8 Mbit/s\n");
    println!("{:>8}  {:>14}  {:>8}", "stripes", "throughput", "scaling");
    let mut base = 0.0;
    for (i, stripes) in [1usize, 2, 4].into_iter().enumerate() {
        let rate = run_once(stripes, 400 + i as u64 * 50);
        if stripes == 1 {
            base = rate;
        }
        println!(
            "{:>8}  {:>10.2} Mbit/s  {:>6.1}x",
            stripes,
            rate * 8.0 / 1e6,
            rate / base
        );
    }
    println!("\neach stripe is a data-mover thread behind its own throttled link —");
    println!("the in-process analogue of one DTP per cluster node (Fig 2).");
}
