//! ig-admin — a minimal operator client for the admin unix socket
//! (DESIGN.md §15), plus a self-contained `serve` mode so CI can smoke
//! the whole plane without standing up a real deployment.
//!
//! ```text
//! cargo run --example ig_admin -- serve /tmp/ig-admin.sock &
//! cargo run --example ig_admin -- metrics /tmp/ig-admin.sock
//! cargo run --example ig_admin -- sessions /tmp/ig-admin.sock
//! cargo run --example ig_admin -- reload block_size=8192 /tmp/ig-admin.sock
//! cargo run --example ig_admin -- trace /tmp/ig-admin.sock
//! cargo run --example ig_admin -- drain --deadline-ms 2000 /tmp/ig-admin.sock
//! ```
//!
//! Every command prints the server's JSON reply on stdout and exits 0
//! iff the reply carries `"ok":true`; `serve` exits 0 once the endpoint
//! has been drained. The admin plane is unix-socket-only, so this tool
//! is too.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("ig-admin: the admin plane needs SO_PEERCRED and is linux-only");
}

#[cfg(target_os = "linux")]
fn main() {
    std::process::exit(linux::run());
}

#[cfg(target_os = "linux")]
mod linux {
    use instant_gridftp::pki::{Gridmap, TrustStore};
    use instant_gridftp::server::admin::wire::{self, Json};
    use instant_gridftp::server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig};
    use instant_gridftp::xio::FrameBuf;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::path::Path;
    use std::sync::Arc;
    use std::time::Duration;

    fn usage() -> i32 {
        eprintln!(
            "usage: ig_admin serve <socket>\n       \
             ig_admin (metrics|sessions|trace) <socket>\n       \
             ig_admin drain [--deadline-ms N] <socket>\n       \
             ig_admin reload KEY=VALUE... <socket>"
        );
        2
    }

    pub fn run() -> i32 {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.len() < 2 {
            return usage();
        }
        let (Some(cmd), Some(sock)) = (args.first(), args.last()) else {
            return usage();
        };
        let sock = Path::new(sock);
        let middle = &args[1..args.len().saturating_sub(1)];
        match cmd.as_str() {
            "serve" => serve(sock),
            "metrics" => request(sock, "{\"cmd\":\"metrics\"}".into()),
            "sessions" => request(sock, "{\"cmd\":\"sessions\"}".into()),
            "trace" => request(sock, "{\"cmd\":\"trace\",\"since\":0}".into()),
            "drain" => {
                let mut deadline_ms = 2000u64;
                let mut it = middle.iter();
                while let Some(a) = it.next() {
                    if a == "--deadline-ms" {
                        match it.next().and_then(|v| v.parse().ok()) {
                            Some(n) => deadline_ms = n,
                            None => return usage(),
                        }
                    } else {
                        return usage();
                    }
                }
                request(sock, format!("{{\"cmd\":\"drain\",\"deadline_ms\":{deadline_ms}}}"))
            }
            "reload" => {
                if middle.is_empty() {
                    return usage();
                }
                let mut set = Vec::new();
                for pair in middle {
                    let Some((key, value)) = pair.split_once('=') else {
                        return usage();
                    };
                    // Tunables are numeric, boolean, or null — anything
                    // else is a typo the server would reject anyway.
                    let ok = value == "null"
                        || value == "true"
                        || value == "false"
                        || value.parse::<u64>().is_ok()
                        || value.parse::<f64>().is_ok();
                    if !ok {
                        eprintln!("ig-admin: bad value in {pair:?}");
                        return 2;
                    }
                    set.push(format!("\"{key}\":{value}"));
                }
                request(sock, format!("{{\"cmd\":\"reload\",\"set\":{{{}}}}}", set.join(",")))
            }
            _ => usage(),
        }
    }

    /// A throwaway endpoint whose only open surface is the admin socket:
    /// seeded one-host PKI, empty gridmap, in-memory storage. It serves
    /// until an operator (the smoke test) drains it.
    fn serve(sock: &Path) -> i32 {
        let mut rng = instant_gridftp::crypto::rng::seeded(0xAD417);
        let (ca, host_cred) = instant_gridftp::gsi::context::test_support::ca_and_credential(
            &mut rng,
            "/O=Smoke CA",
            "/CN=smoke.example.org",
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert().clone());
        let cfg = ServerConfig::new(
            "smoke.example.org",
            host_cred,
            trust,
            Arc::new(GridmapAuthz::new(Gridmap::new())),
            Arc::new(MemDsi::new()) as Arc<dyn Dsi>,
        )
        .with_obs(ig_obs::Obs::new("ig-admin-smoke"))
        .with_admin_socket(sock);
        let server = match GridFtpServer::start(cfg, 7) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ig-admin: serve failed: {e:?}");
                return 1;
            }
        };
        println!("serving control={} admin={}", server.addr(), sock.display());
        while !server.stopped() {
            std::thread::sleep(Duration::from_millis(25));
        }
        println!("drained; exiting");
        0
    }

    /// One request/reply over the admin wire: hello handshake, one
    /// length-prefixed JSON frame each way.
    fn request(sock: &Path, body: String) -> i32 {
        match talk(sock, &body) {
            Ok((text, ok)) => {
                println!("{text}");
                i32::from(!ok)
            }
            Err(e) => {
                eprintln!("ig-admin: {e}");
                1
            }
        }
    }

    fn talk(sock: &Path, body: &str) -> Result<(String, bool), String> {
        let mut stream =
            UnixStream::connect(sock).map_err(|e| format!("connect {}: {e}", sock.display()))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        stream.write_all(b"IGADMIN 1\n").map_err(|e| e.to_string())?;
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte).map_err(|e| format!("handshake: {e}"))? {
                0 => return Err("server closed during handshake".into()),
                _ if byte[0] == b'\n' => break,
                _ => line.push(byte[0]),
            }
        }
        let hello = String::from_utf8_lossy(&line).to_string();
        if hello != "IGADMIN 1 OK" {
            return Err(format!("handshake refused: {hello}"));
        }
        stream.write_all(&FrameBuf::encode(body.as_bytes())).map_err(|e| e.to_string())?;
        let mut inbuf = FrameBuf::new();
        let mut chunk = [0u8; 4096];
        let frame = loop {
            if let Some(f) = inbuf.next_frame().map_err(|e| e.to_string())? {
                break f;
            }
            match stream.read(&mut chunk).map_err(|e| format!("read: {e}"))? {
                0 => return Err("server closed before replying".into()),
                n => inbuf.push(&chunk[..n]),
            }
        };
        let text = String::from_utf8(frame).map_err(|e| e.to_string())?;
        let ok = wire::parse(&text)
            .map_err(|e| format!("bad reply: {e}"))?
            .get("ok")
            .and_then(Json::as_bool)
            == Some(true);
        Ok((text, ok))
    }
}
