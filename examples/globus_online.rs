//! Globus Online workflow — Figures 6 and 7.
//!
//! ```text
//! cargo run --release --example globus_online
//! ```
//!
//! Registers two GCMU endpoints with the hosted service, activates them
//! (one via password, one via OAuth so the password never transits the
//! service), then runs a managed third-party transfer through a
//! mid-transfer crash: the service re-authenticates with the stored
//! short-term credential and resumes from the last 111 checkpoint.

use instant_gridftp::gcmu::InstallOptions;
use instant_gridftp::gol::{GlobusOnline, TransferRequest};
use instant_gridftp::pki::time::Clock;
use instant_gridftp::server::{FaultInjector, UserContext};
use std::sync::Arc;

fn main() {
    println!("== Globus Online + GCMU (Figs 6-7) ==\n");
    let fault = FaultInjector::after_bytes(400_000); // crash mid-transfer
    let src = InstallOptions::new("lab-cluster.example.org")
        .account("alice", "cluster pw")
        .seed(300)
        .fault(Arc::clone(&fault))
        .install()
        .expect("install src");
    let dst = InstallOptions::new("campus-store.example.org")
        .account("alice", "campus pw")
        .seed(301)
        .oauth()
        .install()
        .expect("install dst");
    let data: Vec<u8> = (0..800_000u32).map(|i| (i * 7 % 251) as u8).collect();
    src.dsi
        .write(&UserContext::superuser(), "/home/alice/simulation-output.h5", 0, &data)
        .expect("stage");

    let go = GlobusOnline::new(Clock::System, 3000);
    go.register_gcmu(&src);
    go.register_gcmu(&dst);
    println!("[go] endpoints registered: lab-cluster, campus-store\n");

    // Activation 1: password via GO (Fig 6). GO sees the password but
    // does not store it — it keeps only the short-term certificate.
    let audit = go
        .activate_with_password("alice@go", "lab-cluster.example.org", "alice", "cluster pw", 3600)
        .expect("activate src");
    println!("[go] lab-cluster activated via password; password seen by: {:?}", audit.seen_by);

    // Activation 2: OAuth (Fig 7). The password goes only to the
    // endpoint's own login page; GO exchanges the code.
    let code = dst
        .oauth
        .as_ref()
        .expect("oauth enabled")
        .authorize("alice", "campus pw", "globus-online")
        .expect("endpoint login page");
    let audit = go
        .activate_with_oauth("alice@go", "campus-store.example.org", &code, 3600)
        .expect("activate dst");
    println!(
        "[go] campus-store activated via OAuth; password seen by: {:?} (not globus-online)\n",
        audit.seen_by
    );

    // The managed transfer, with one injected crash.
    println!("[go] transfer lab-cluster:/simulation-output.h5 -> campus-store (crash armed)");
    let result = go
        .submit(
            "alice@go",
            &TransferRequest {
                src_endpoint: "lab-cluster.example.org".into(),
                src_path: "/home/alice/simulation-output.h5".into(),
                dst_endpoint: "campus-store.example.org".into(),
                dst_path: "/home/alice/simulation-output.h5".into(),
                max_retries: 3,
                retry: None,
                opts: None, // auto-tuned
            },
        )
        .expect("managed transfer");
    println!("[go] completed={} after {} attempt(s)", result.completed, result.attempts);
    for e in go.events.lock().iter() {
        println!("     event: {e}");
    }
    let got = instant_gridftp::server::dsi::read_all(
        dst.dsi.as_ref(),
        &UserContext::user("alice"),
        "/home/alice/simulation-output.h5",
        1 << 20,
    )
    .expect("read back");
    assert_eq!(got, data);
    println!(
        "\nfile intact at destination ({} bytes) despite the mid-transfer crash —\n\
         restart came from the 111-marker checkpoint using the stored short-term credential.",
        got.len()
    );
    src.shutdown();
    dst.shutdown();
}
