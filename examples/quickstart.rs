//! Quickstart — the paper's pitch, end to end (Fig 3).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the exact GCMU workflow: the admin runs the four-command install
//! (§IV-D), the user logs on with their *site password* (§IV-E), the
//! MyProxy Online CA mints a short-lived certificate with the username in
//! the DN (Fig 3 steps 1–3), and a secure GridFTP transfer runs (steps
//! 4–5) — no external CA, no gridmap, no manual security configuration.

use instant_gridftp::client::{transfer, ClientSession, TransferOpts};
use instant_gridftp::gcmu::InstallOptions;

fn main() {
    println!("== Instant GridFTP quickstart ==\n");

    // --- Admin: the four-command install (§IV-D) -------------------------
    println!("[admin] wget … && tar xzf … && cd gcmu* && sudo ./install");
    let endpoint = InstallOptions::new("cluster.example.org")
        .account("alice", "alice-site-password")
        .seed(7)
        .install()
        .expect("GCMU install");
    println!(
        "[admin] endpoint up: gridftp={}  myproxy={}",
        endpoint.gridftp_addr(),
        endpoint.myproxy_addr()
    );
    println!("[admin] online CA: {}\n", endpoint.ca.root_cert().subject());

    // --- User: myproxy-logon with the site password (Fig 3 steps 1-3) ----
    println!("[alice] myproxy-logon -b -T -s cluster.example.org");
    let logon = endpoint
        .logon("alice", "alice-site-password", 12 * 3600, 42)
        .expect("logon");
    println!("[alice] short-lived credential issued:");
    println!("        subject  = {}", logon.credential.identity());
    println!("        lifetime = {} h", logon.credential.remaining_lifetime(endpoint.clock.now()) / 3600);
    println!("        trust roots downloaded: {}\n", logon.trust_roots.len());

    // --- User: transfer (Fig 3 steps 4-5) --------------------------------
    println!("[alice] globus-url-copy file:/data gsiftp://cluster.example.org/...");
    let cfg = endpoint.client_config(&logon, 43);
    let mut session = ClientSession::connect(endpoint.gridftp_addr(), cfg).expect("connect");
    session.login().expect("GSI login + delegation");
    println!("[alice] authenticated; authz callout mapped the DN to local user 'alice'");

    let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    let sent = transfer::put_bytes(
        &mut session,
        "/home/alice/dataset.bin",
        &payload,
        &TransferOpts::default().parallel(4),
    )
    .expect("upload");
    println!("[alice] uploaded {sent} bytes over 4 parallel streams");

    let back = transfer::get_bytes(
        &mut session,
        "/home/alice/dataset.bin",
        &TransferOpts::default().parallel(4),
    )
    .expect("download");
    assert_eq!(back, payload);
    println!("[alice] downloaded and verified {} bytes — byte-identical", back.len());

    let listing = transfer::list(&mut session, "/home/alice").expect("list");
    println!("[alice] MLSD /home/alice:");
    for line in listing {
        println!("        {line}");
    }
    session.quit().expect("quit");
    println!(
        "\nusage reporting: {} transfers, {} bytes (the Fig 1 feed)",
        endpoint.usage.total_transfers(),
        endpoint.usage.total_bytes()
    );
    endpoint.shutdown();
    println!("\nInstant GridFTP: zero PKI paperwork, zero gridmap edits. Done.");
}
