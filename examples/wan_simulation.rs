//! WAN simulation — why GridFTP beats SCP by orders of magnitude (§I).
//!
//! ```text
//! cargo run --release --example wan_simulation
//! ```
//!
//! Sweeps the fluid TCP model over RTT, loss and stream counts on a
//! 10 Gbit/s path, printing the E2 comparison for a 256 MiB transfer.

use instant_gridftp::baselines::ftp::ftp_netsim_params;
use instant_gridftp::baselines::scp::scp_netsim_params;
use instant_gridftp::netsim::{parallel_throughput_bps, Bottleneck, TcpParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fmt(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:7.2} Gbit/s", bps / 1e9)
    } else {
        format!("{:7.2} Mbit/s", bps / 1e6)
    }
}

fn main() {
    println!("== simulated WAN: 10 Gbit/s bottleneck, 256 MiB transfer ==\n");
    let bytes: u64 = 256 << 20;
    println!(
        "{:>7} {:>6}  {:>14} {:>14} {:>14} {:>14}  {:>8}",
        "RTT", "loss", "scp", "ftp", "gridftp x4", "gridftp x16", "x16/scp"
    );
    for rtt in [0.001f64, 0.01, 0.05, 0.1] {
        for loss in [0.0f64, 1e-4] {
            let link = Bottleneck::new(1e10, rtt, loss);
            let mut rng = StdRng::seed_from_u64((rtt * 1e6) as u64 ^ (loss * 1e9) as u64);
            let scp = parallel_throughput_bps(&link, bytes, 1, scp_netsim_params(), &mut rng);
            let ftp = parallel_throughput_bps(&link, bytes, 1, ftp_netsim_params(), &mut rng);
            let g4 = parallel_throughput_bps(&link, bytes, 4, TcpParams::tuned(), &mut rng);
            let g16 = parallel_throughput_bps(&link, bytes, 16, TcpParams::tuned(), &mut rng);
            println!(
                "{:>5.0}ms {:>6.0e}  {} {} {} {}  {:>7.0}x",
                rtt * 1e3,
                loss,
                fmt(scp),
                fmt(ftp),
                fmt(g4),
                fmt(g16),
                g16 / scp
            );
        }
    }
    println!("\nscp's ceilings: a 64 KiB channel window (throughput <= window/RTT)");
    println!("and a single CPU-bound cipher stream. GridFTP's answer (§I): tuned");
    println!("buffers, parallel streams, striping — the x16/scp column is the");
    println!("paper's \"multiple orders of magnitude\" on long fat networks.");
}
