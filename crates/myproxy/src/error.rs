//! MyProxy error taxonomy.

use std::fmt;

/// Errors from the online CA, PAM stack, and logon protocol.
#[derive(Debug)]
pub enum MyProxyError {
    /// Username/password rejected by every PAM backend.
    AuthenticationFailed(String),
    /// CSR invalid or issuance refused.
    IssuanceRefused(String),
    /// Malformed protocol message.
    Decode(String),
    /// Security-channel failure.
    Gsi(ig_gsi::GsiError),
    /// PKI failure.
    Pki(ig_pki::PkiError),
    /// Transport failure.
    Io(std::io::Error),
    /// The server reported an error.
    Server(String),
}

impl fmt::Display for MyProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MyProxyError::AuthenticationFailed(m) => write!(f, "authentication failed: {m}"),
            MyProxyError::IssuanceRefused(m) => write!(f, "issuance refused: {m}"),
            MyProxyError::Decode(m) => write!(f, "decode error: {m}"),
            MyProxyError::Gsi(e) => write!(f, "security: {e}"),
            MyProxyError::Pki(e) => write!(f, "pki: {e}"),
            MyProxyError::Io(e) => write!(f, "io: {e}"),
            MyProxyError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for MyProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MyProxyError::Gsi(e) => Some(e),
            MyProxyError::Pki(e) => Some(e),
            MyProxyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_gsi::GsiError> for MyProxyError {
    fn from(e: ig_gsi::GsiError) -> Self {
        MyProxyError::Gsi(e)
    }
}

impl From<ig_pki::PkiError> for MyProxyError {
    fn from(e: ig_pki::PkiError) -> Self {
        MyProxyError::Pki(e)
    }
}

impl From<std::io::Error> for MyProxyError {
    fn from(e: std::io::Error) -> Self {
        MyProxyError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, MyProxyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MyProxyError::AuthenticationFailed("bad password".into())
            .to_string()
            .contains("bad password"));
        assert!(MyProxyError::Server("boom".into()).to_string().contains("boom"));
    }
}
