//! The MyProxy server: accepts logon requests, runs PAM, issues certs.

use crate::ca::OnlineCa;
use crate::pam::PamStack;
use crate::protocol::{decode, encode, LogonRequest, LogonResponse};
use ig_gsi::context::GsiConfig;
use ig_gsi::ProtectionLevel;
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use ig_protocol::HostPort;
use ig_xio::{secure_accept, Link, TcpLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running MyProxy Online CA service.
pub struct MyProxyServer {
    addr: HostPort,
    ca: Arc<OnlineCa>,
    stop: Arc<AtomicBool>,
    /// Count of successful issuances (E11 metric).
    pub issued: Arc<AtomicU64>,
    /// Count of refused logons.
    pub refused: Arc<AtomicU64>,
}

impl MyProxyServer {
    /// Start serving on a loopback port.
    ///
    /// The server presents `host_cred` (a certificate signed by the
    /// online CA itself — GCMU wires this up at install time).
    pub fn start(
        ca: Arc<OnlineCa>,
        pam: Arc<PamStack>,
        host_cred: Credential,
        clock: Clock,
        seed: u64,
    ) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = HostPort::from_socket_addr(listener.local_addr()?)
            .expect("loopback is IPv4");
        let server = Arc::new(MyProxyServer {
            addr,
            ca: Arc::clone(&ca),
            stop: Arc::new(AtomicBool::new(false)),
            issued: Arc::new(AtomicU64::new(0)),
            refused: Arc::new(AtomicU64::new(0)),
        });
        let server2 = Arc::clone(&server);
        let session_seed = Arc::new(AtomicU64::new(seed));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if server2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let ca = Arc::clone(&server2.ca);
                let pam = Arc::clone(&pam);
                let cred = host_cred.clone();
                let issued = Arc::clone(&server2.issued);
                let refused = Arc::clone(&server2.refused);
                let seed = session_seed.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let cfg = GsiConfig {
                        credential: Some(cred),
                        trust: TrustStore::new(),
                        require_peer_auth: false, // the password authenticates
                        clock,
                        insecure_skip_peer_validation: false,
                    };
                    let link = TcpLink::new(stream);
                    let Ok(mut secured) =
                        secure_accept(link, cfg, ProtectionLevel::Private, &mut rng)
                    else {
                        return;
                    };
                    let Ok(raw) = secured.recv() else { return };
                    let response = match decode::<LogonRequest>(&raw) {
                        Ok(req) => {
                            // Fig 3 step 2: PAM authentication.
                            match pam.authenticate(&req.username, &req.password) {
                                Ok(()) => match ca.issue(&req.username, &req.csr, req.lifetime) {
                                    Ok(certificate) => {
                                        issued.fetch_add(1, Ordering::Relaxed);
                                        LogonResponse::Ok {
                                            certificate,
                                            trust_roots: vec![ca.root_cert()],
                                            signing_policy: ca
                                                .signing_policy()
                                                .to_file(&ca.root_cert().subject().to_string()),
                                        }
                                    }
                                    Err(e) => {
                                        refused.fetch_add(1, Ordering::Relaxed);
                                        LogonResponse::Err { message: e.to_string() }
                                    }
                                },
                                Err(e) => {
                                    refused.fetch_add(1, Ordering::Relaxed);
                                    LogonResponse::Err { message: e.to_string() }
                                }
                            }
                        }
                        Err(e) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                            LogonResponse::Err { message: e.to_string() }
                        }
                    };
                    let _ = secured.send(&encode(&response));
                    let _ = secured.close();
                });
            }
        });
        Ok(server)
    }

    /// Address clients logon to.
    pub fn addr(&self) -> HostPort {
        self.addr
    }

    /// The CA behind this server.
    pub fn ca(&self) -> &Arc<OnlineCa> {
        &self.ca
    }

    /// Stop accepting logons.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(self.addr.to_socket_addr());
    }
}

impl Drop for MyProxyServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
