//! # ig-myproxy — the MyProxy Online Certificate Authority
//!
//! §IV-A of the paper: "MyProxy Online CA ... can be run at a site and
//! tied to the local identity domain via a PAM. It issues short-lived
//! X.509 credentials to authenticated users." This crate reproduces the
//! whole flow of Fig 3:
//!
//! 1. the user contacts the online CA with their *site* username and
//!    password ([`client::myproxy_logon`] — the `myproxy-logon -b -T`
//!    command of §IV-E);
//! 2. the CA authenticates them against the local identity system
//!    (LDAP / RADIUS / NIS / files / OTP) through a PAM-style pluggable
//!    stack ([`pam`]);
//! 3. on success it signs the **client-generated** key ("The software
//!    generates the subscriber's private key locally") into a
//!    short-lived certificate whose DN embeds the local username
//!    ([`ca::OnlineCa`]);
//! 4. the client also receives the CA's trust roots, eliminating the
//!    manual trusted-certificates setup (conventional step (g)).

pub mod ca;
pub mod cache;
pub mod client;
pub mod error;
pub mod pam;
pub mod protocol;
pub mod server;

pub use ca::OnlineCa;
pub use cache::{Cached, CredCache, CredCacheError, CredKey};
pub use client::{myproxy_logon, LogonOutput};
pub use error::MyProxyError;
pub use pam::{AuthBackend, PamStack};
pub use server::MyProxyServer;
