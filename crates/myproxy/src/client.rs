//! `myproxy-logon` — the client side of §IV-E.
//!
//! ```text
//! myproxy-logon -b -T -s <server-name>
//! ```
//!
//! Generates the key pair locally, authenticates with the site
//! username/password over a sealed channel, and returns the short-lived
//! credential plus the server's trust roots (`-T`: "trust roots" and
//! `-b`: bootstrap — accept the server certificate on first use).

use crate::error::{MyProxyError, Result};
use crate::protocol::{decode, encode, LogonRequest, LogonResponse};
use ig_gsi::context::GsiConfig;
use ig_gsi::ProtectionLevel;
use ig_pki::policy::SigningPolicy;
use ig_pki::time::Clock;
use ig_pki::{Certificate, CertificateSigningRequest, Credential, DistinguishedName, TrustStore};
use ig_protocol::HostPort;
use ig_xio::{secure_connect, Link, TcpLink};
use rand::Rng;

/// What a successful logon yields.
#[derive(Debug)]
pub struct LogonOutput {
    /// The user's new short-lived credential (chain: cert + CA root).
    pub credential: Credential,
    /// Trust roots to install (the site CA).
    pub trust_roots: Vec<Certificate>,
    /// Signing policy for those roots.
    pub signing_policy: SigningPolicy,
}

/// Perform a logon against `addr`.
///
/// `trust`: existing trust roots for validating the server; pass an empty
/// store with `bootstrap = true` for the first contact (`-b`).
#[allow(clippy::too_many_arguments)]
pub fn myproxy_logon<R: Rng + ?Sized>(
    addr: HostPort,
    username: &str,
    password: &str,
    lifetime: u64,
    trust: TrustStore,
    bootstrap: bool,
    clock: Clock,
    key_bits: usize,
    rng: &mut R,
) -> Result<LogonOutput> {
    let t0 = std::time::Instant::now();
    let out = logon_inner(addr, username, password, lifetime, trust, bootstrap, clock, key_bits, rng);
    let metrics = ig_obs::Obs::global().metrics();
    metrics.observe("myproxy.logon_ns", t0.elapsed().as_nanos() as u64);
    metrics.add(if out.is_ok() { "myproxy.logons_ok" } else { "myproxy.logons_err" }, 1);
    out
}

#[allow(clippy::too_many_arguments)]
fn logon_inner<R: Rng + ?Sized>(
    addr: HostPort,
    username: &str,
    password: &str,
    lifetime: u64,
    trust: TrustStore,
    bootstrap: bool,
    clock: Clock,
    key_bits: usize,
    rng: &mut R,
) -> Result<LogonOutput> {
    // Step 1 of §IV-A: generate the private key locally.
    let keys = ig_crypto::RsaKeyPair::generate(rng, key_bits)
        .map_err(|e| MyProxyError::IssuanceRefused(e.to_string()))?;
    let csr = CertificateSigningRequest::create(
        DistinguishedName::from_pairs([("CN", username)]),
        &keys.private,
    )?;
    // Sealed, server-authenticated channel.
    let mut cfg = GsiConfig::anonymous(trust).with_clock(clock);
    if bootstrap {
        cfg = cfg.bootstrap();
    }
    let tcp = TcpLink::connect(addr.to_socket_addr())?;
    let mut channel = secure_connect(tcp, cfg, ProtectionLevel::Private, rng)
        .map_err(MyProxyError::Io)?;
    let request = LogonRequest {
        username: username.to_string(),
        password: password.to_string(),
        lifetime,
        csr,
    };
    channel.send(&encode(&request))?;
    let raw = channel.recv()?;
    let _ = channel.close();
    match decode::<LogonResponse>(&raw)? {
        LogonResponse::Ok { certificate, trust_roots, signing_policy } => {
            let mut chain = vec![certificate];
            chain.extend(trust_roots.iter().cloned());
            let credential = Credential::new(chain, keys.private)?;
            Ok(LogonOutput {
                credential,
                trust_roots,
                signing_policy: SigningPolicy::parse_file(&signing_policy),
            })
        }
        LogonResponse::Err { message } => Err(MyProxyError::Server(message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::OnlineCa;
    use crate::pam::{FileBackend, PamStack};
    use crate::server::MyProxyServer;
    use ig_crypto::rng::seeded;
    use std::sync::Arc;

    const NOW: u64 = 50_000;

    fn start_server(seed: u64) -> Arc<MyProxyServer> {
        let mut rng = seeded(seed);
        let clock = Clock::Fixed(NOW);
        let ca = Arc::new(OnlineCa::create(&mut rng, "gcmu.example.org", 512, clock).unwrap());
        let (host_cert, host_key) = ca.issue_host_cert(&mut rng, 512).unwrap();
        let host_cred =
            Credential::new(vec![host_cert, ca.root_cert()], host_key).unwrap();
        let mut files = FileBackend::new();
        files.add_user("alice", "correct horse");
        let pam = Arc::new(PamStack::new(vec![Box::new(files)]));
        MyProxyServer::start(ca, pam, host_cred, clock, seed * 10).unwrap()
    }

    #[test]
    fn logon_issues_short_lived_credential() {
        let server = start_server(1);
        let mut rng = seeded(100);
        let out = myproxy_logon(
            server.addr(),
            "alice",
            "correct horse",
            3600,
            TrustStore::new(),
            true, // bootstrap: no roots yet
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap();
        // The DN embeds the username (§IV-C).
        assert_eq!(
            out.credential.identity().to_string(),
            "/O=GCMU/OU=gcmu.example.org/CN=alice"
        );
        assert_eq!(out.credential.leaf().online_ca_endpoint(), Some("gcmu.example.org"));
        // Lifetime honoured.
        assert_eq!(out.credential.remaining_lifetime(NOW), 3600);
        // Downloaded trust roots validate the credential.
        let mut trust = TrustStore::new();
        for root in &out.trust_roots {
            trust.add_root_with_policy(root.clone(), out.signing_policy.clone());
        }
        ig_pki::validate_chain(out.credential.chain(), &trust, NOW + 10).unwrap();
        assert_eq!(server.issued.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn wrong_password_refused() {
        let server = start_server(2);
        let mut rng = seeded(200);
        let err = myproxy_logon(
            server.addr(),
            "alice",
            "wrong password",
            3600,
            TrustStore::new(),
            true,
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap_err();
        assert!(err.to_string().contains("pam_files"), "got: {err}");
        assert_eq!(server.refused.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(server.issued.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn unknown_user_refused() {
        let server = start_server(3);
        let mut rng = seeded(300);
        let err = myproxy_logon(
            server.addr(),
            "mallory",
            "anything",
            3600,
            TrustStore::new(),
            true,
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, MyProxyError::Server(_)));
    }

    #[test]
    fn non_bootstrap_requires_trust_roots() {
        let server = start_server(4);
        let mut rng = seeded(400);
        // Without bootstrap and without roots the server cert is rejected.
        let err = myproxy_logon(
            server.addr(),
            "alice",
            "correct horse",
            3600,
            TrustStore::new(),
            false,
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, MyProxyError::Io(_)), "got: {err}");
        // With the CA root installed it works without bootstrap.
        let mut trust = TrustStore::new();
        trust.add_root(server.ca().root_cert());
        myproxy_logon(
            server.addr(),
            "alice",
            "correct horse",
            3600,
            trust,
            false,
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap();
    }

    #[test]
    fn lifetime_clamped_by_ca_policy() {
        let server = start_server(5);
        let mut rng = seeded(500);
        let out = myproxy_logon(
            server.addr(),
            "alice",
            "correct horse",
            u64::MAX / 4, // absurd request
            TrustStore::new(),
            true,
            Clock::Fixed(NOW),
            512,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            out.credential.remaining_lifetime(NOW),
            crate::ca::DEFAULT_MAX_LIFETIME
        );
    }
}
