//! PAM — pluggable authentication.
//!
//! §IV: "MyProxy Online CA in turn passes the username and password to
//! the local authentication system such as LDAP, RADIUS, or NIS via a
//! Pluggable Authentication Module (PAM) API to authenticate the user."
//! [`PamStack`] tries its backends in order with *sufficient* semantics
//! (first success wins), matching the common `auth sufficient ...`
//! configuration.

pub mod backends;

use crate::error::{MyProxyError, Result};

pub use backends::{FileBackend, LdapSimBackend, NisSimBackend, OtpBackend, RadiusSimBackend};

/// One authentication backend (one PAM module).
pub trait AuthBackend: Send + Sync {
    /// Module name (for diagnostics and E11's per-backend breakdown).
    fn name(&self) -> &'static str;

    /// Check a username/password pair.
    fn authenticate(&self, username: &str, password: &str) -> Result<()>;
}

/// An ordered stack of backends.
pub struct PamStack {
    backends: Vec<Box<dyn AuthBackend>>,
}

impl PamStack {
    /// Build from an ordered backend list.
    pub fn new(backends: Vec<Box<dyn AuthBackend>>) -> Self {
        PamStack { backends }
    }

    /// Authenticate with "sufficient" semantics.
    pub fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        if self.backends.is_empty() {
            return Err(MyProxyError::AuthenticationFailed(
                "no PAM backends configured".into(),
            ));
        }
        let mut last = None;
        for backend in &self.backends {
            match backend.authenticate(username, password) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one backend ran"))
    }

    /// Backend names in order.
    pub fn backend_names(&self) -> Vec<&'static str> {
        self.backends.iter().map(|b| b.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_rejects() {
        let stack = PamStack::new(vec![]);
        assert!(stack.authenticate("u", "p").is_err());
    }

    #[test]
    fn sufficient_semantics() {
        let mut file1 = FileBackend::new();
        file1.add_user("alice", "pw-a");
        let mut file2 = FileBackend::new();
        file2.add_user("bob", "pw-b");
        let stack = PamStack::new(vec![Box::new(file1), Box::new(file2)]);
        // First backend wins.
        stack.authenticate("alice", "pw-a").unwrap();
        // Fallthrough to second.
        stack.authenticate("bob", "pw-b").unwrap();
        // Neither.
        assert!(stack.authenticate("carol", "x").is_err());
        // Right user, wrong password.
        assert!(stack.authenticate("alice", "pw-b").is_err());
        assert_eq!(stack.backend_names(), vec!["pam_files", "pam_files"]);
    }
}
