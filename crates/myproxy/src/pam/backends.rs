//! PAM backends: files, simulated LDAP / NIS / RADIUS, and OTP.
//!
//! The directory services are simulated (we have no site LDAP), but each
//! preserves the *shape* that matters: a per-lookup latency knob for
//! experiment E11, distinct failure messages, and — for LDAP — the
//! bind-DN construction that real `pam_ldap` performs.

use super::AuthBackend;
use crate::error::{MyProxyError, Result};
use ig_crypto::ct::ct_eq;
use ig_crypto::hmac::HmacSha256;
use ig_crypto::Sha256;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

fn hash_password(salt: &[u8], password: &str) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(salt);
    h.update(password.as_bytes());
    h.finalize()
}

/// `pam_files`: an htpasswd-style salted-hash table.
#[derive(Default)]
pub struct FileBackend {
    users: HashMap<String, ([u8; 8], [u8; 32])>,
}

impl FileBackend {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a user.
    pub fn add_user(&mut self, username: &str, password: &str) {
        // Deterministic per-user salt keeps tests reproducible.
        let digest = Sha256::digest(username.as_bytes());
        let mut salt = [0u8; 8];
        salt.copy_from_slice(&digest[..8]);
        self.users
            .insert(username.to_string(), (salt, hash_password(&salt, password)));
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

impl AuthBackend for FileBackend {
    fn name(&self) -> &'static str {
        "pam_files"
    }

    fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        match self.users.get(username) {
            Some((salt, stored)) if ct_eq(&hash_password(salt, password), stored) => Ok(()),
            Some(_) => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_files: bad password for {username}"
            ))),
            None => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_files: unknown user {username}"
            ))),
        }
    }
}

/// `pam_ldap` simulation: bind as `uid=<user>,<base_dn>`.
pub struct LdapSimBackend {
    base_dn: String,
    directory: HashMap<String, ([u8; 8], [u8; 32])>,
    /// Simulated directory round-trip latency.
    pub latency: Duration,
}

impl LdapSimBackend {
    /// An empty directory under `base_dn`.
    pub fn new(base_dn: &str) -> Self {
        LdapSimBackend {
            base_dn: base_dn.to_string(),
            directory: HashMap::new(),
            latency: Duration::from_micros(200),
        }
    }

    /// Provision a directory entry.
    pub fn add_entry(&mut self, uid: &str, password: &str) {
        let digest = Sha256::digest(uid.as_bytes());
        let mut salt = [0u8; 8];
        salt.copy_from_slice(&digest[8..16]);
        self.directory
            .insert(uid.to_string(), (salt, hash_password(&salt, password)));
    }

    /// The bind DN `pam_ldap` would construct.
    pub fn bind_dn(&self, uid: &str) -> String {
        format!("uid={uid},{}", self.base_dn)
    }
}

impl AuthBackend for LdapSimBackend {
    fn name(&self) -> &'static str {
        "pam_ldap"
    }

    fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        std::thread::sleep(self.latency);
        let bind_dn = self.bind_dn(username);
        match self.directory.get(username) {
            Some((salt, stored)) if ct_eq(&hash_password(salt, password), stored) => Ok(()),
            Some(_) => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_ldap: invalid credentials binding {bind_dn}"
            ))),
            None => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_ldap: no such entry {bind_dn}"
            ))),
        }
    }
}

/// NIS simulation: a passwd-map lookup.
pub struct NisSimBackend {
    passwd_map: HashMap<String, ([u8; 8], [u8; 32])>,
    /// Simulated ypserv round-trip latency.
    pub latency: Duration,
}

impl NisSimBackend {
    /// Empty map.
    pub fn new() -> Self {
        NisSimBackend { passwd_map: HashMap::new(), latency: Duration::from_micros(100) }
    }

    /// Add a passwd-map entry.
    pub fn add_entry(&mut self, user: &str, password: &str) {
        let digest = Sha256::digest(user.as_bytes());
        let mut salt = [0u8; 8];
        salt.copy_from_slice(&digest[16..24]);
        self.passwd_map
            .insert(user.to_string(), (salt, hash_password(&salt, password)));
    }
}

impl Default for NisSimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AuthBackend for NisSimBackend {
    fn name(&self) -> &'static str {
        "pam_nis"
    }

    fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        std::thread::sleep(self.latency);
        match self.passwd_map.get(username) {
            Some((salt, stored)) if ct_eq(&hash_password(salt, password), stored) => Ok(()),
            _ => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_nis: passwd map rejects {username}"
            ))),
        }
    }
}

/// RADIUS simulation: Access-Request/Access-Accept with a shared secret
/// mixed into the verifier, RFC 2865-style.
pub struct RadiusSimBackend {
    shared_secret: Vec<u8>,
    users: HashMap<String, Vec<u8>>,
    /// Simulated RADIUS server round-trip latency.
    pub latency: Duration,
}

impl RadiusSimBackend {
    /// A "server" with the given shared secret.
    pub fn new(shared_secret: &[u8]) -> Self {
        RadiusSimBackend {
            shared_secret: shared_secret.to_vec(),
            users: HashMap::new(),
            latency: Duration::from_micros(300),
        }
    }

    fn verifier(&self, username: &str, password: &str) -> Vec<u8> {
        let mut mac = HmacSha256::new(&self.shared_secret);
        mac.update(username.as_bytes());
        mac.update(b"\0");
        mac.update(password.as_bytes());
        mac.finalize().to_vec()
    }

    /// Provision a user.
    pub fn add_user(&mut self, username: &str, password: &str) {
        let v = self.verifier(username, password);
        self.users.insert(username.to_string(), v);
    }
}

impl AuthBackend for RadiusSimBackend {
    fn name(&self) -> &'static str {
        "pam_radius"
    }

    fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        std::thread::sleep(self.latency);
        match self.users.get(username) {
            Some(stored) if ct_eq(&self.verifier(username, password), stored) => Ok(()),
            _ => Err(MyProxyError::AuthenticationFailed(format!(
                "pam_radius: Access-Reject for {username}"
            ))),
        }
    }
}

/// OTP backend: HMAC-based one-time passwords (HOTP-style, 6 digits),
/// with replay protection — the "username/password, OTP, etc." of §IV-A.
pub struct OtpBackend {
    secrets: HashMap<String, Vec<u8>>,
    /// Highest accepted counter per user (replay guard).
    last_counter: Mutex<HashMap<String, u64>>,
    /// Look-ahead window.
    pub window: u64,
}

impl OtpBackend {
    /// Empty enrollment table.
    pub fn new() -> Self {
        OtpBackend { secrets: HashMap::new(), last_counter: Mutex::new(HashMap::new()), window: 4 }
    }

    /// Enroll a user with a shared secret.
    pub fn enroll(&mut self, username: &str, secret: &[u8]) {
        self.secrets.insert(username.to_string(), secret.to_vec());
    }

    /// Compute the 6-digit code for (secret, counter) — the "token".
    pub fn code(secret: &[u8], counter: u64) -> String {
        let mac = HmacSha256::mac(secret, &counter.to_be_bytes());
        let n = u32::from_be_bytes([mac[0], mac[1], mac[2], mac[3]]) % 1_000_000;
        format!("{n:06}")
    }
}

impl Default for OtpBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AuthBackend for OtpBackend {
    fn name(&self) -> &'static str {
        "pam_otp"
    }

    fn authenticate(&self, username: &str, password: &str) -> Result<()> {
        let Some(secret) = self.secrets.get(username) else {
            return Err(MyProxyError::AuthenticationFailed(format!(
                "pam_otp: user {username} not enrolled"
            )));
        };
        let mut counters = self.last_counter.lock();
        let last = counters.get(username).copied().unwrap_or(0);
        for counter in last + 1..=last + self.window {
            if Self::code(secret, counter) == password {
                counters.insert(username.to_string(), counter);
                return Ok(());
            }
        }
        Err(MyProxyError::AuthenticationFailed(format!(
            "pam_otp: invalid or replayed token for {username}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_backend() {
        let mut b = FileBackend::new();
        assert!(b.is_empty());
        b.add_user("alice", "secret");
        assert_eq!(b.len(), 1);
        b.authenticate("alice", "secret").unwrap();
        assert!(b.authenticate("alice", "wrong").is_err());
        assert!(b.authenticate("bob", "secret").is_err());
        // Replace password.
        b.add_user("alice", "newpw");
        assert!(b.authenticate("alice", "secret").is_err());
        b.authenticate("alice", "newpw").unwrap();
    }

    #[test]
    fn ldap_backend() {
        let mut b = LdapSimBackend::new("ou=people,dc=example,dc=org");
        b.latency = Duration::ZERO;
        b.add_entry("alice", "ldap-pw");
        assert_eq!(b.bind_dn("alice"), "uid=alice,ou=people,dc=example,dc=org");
        b.authenticate("alice", "ldap-pw").unwrap();
        let err = b.authenticate("alice", "x").unwrap_err();
        assert!(err.to_string().contains("uid=alice"));
        assert!(b.authenticate("nobody", "x").is_err());
    }

    #[test]
    fn nis_backend() {
        let mut b = NisSimBackend::new();
        b.latency = Duration::ZERO;
        b.add_entry("bob", "nis-pw");
        b.authenticate("bob", "nis-pw").unwrap();
        assert!(b.authenticate("bob", "wrong").is_err());
    }

    #[test]
    fn radius_backend() {
        let mut b = RadiusSimBackend::new(b"shared-secret");
        b.latency = Duration::ZERO;
        b.add_user("carol", "radius-pw");
        b.authenticate("carol", "radius-pw").unwrap();
        assert!(b.authenticate("carol", "nope").is_err());
        // A different shared secret invalidates stored verifiers.
        let mut b2 = RadiusSimBackend::new(b"other-secret");
        b2.latency = Duration::ZERO;
        b2.users = b.users.clone();
        assert!(b2.authenticate("carol", "radius-pw").is_err());
    }

    #[test]
    fn otp_accepts_fresh_rejects_replay() {
        let mut b = OtpBackend::new();
        b.enroll("dave", b"otp-secret");
        let code1 = OtpBackend::code(b"otp-secret", 1);
        b.authenticate("dave", &code1).unwrap();
        // Replay rejected.
        assert!(b.authenticate("dave", &code1).is_err());
        // Next counter works; skipping within window works.
        let code3 = OtpBackend::code(b"otp-secret", 3);
        b.authenticate("dave", &code3).unwrap();
        // Counter 2 is now behind: rejected.
        let code2 = OtpBackend::code(b"otp-secret", 2);
        assert!(b.authenticate("dave", &code2).is_err());
        // Outside the window rejected.
        let code99 = OtpBackend::code(b"otp-secret", 99);
        assert!(b.authenticate("dave", &code99).is_err());
        // Unenrolled user.
        assert!(b.authenticate("erin", &code1).is_err());
    }

    #[test]
    fn otp_codes_are_six_digits() {
        for c in 0..50u64 {
            let code = OtpBackend::code(b"s", c);
            assert_eq!(code.len(), 6);
            assert!(code.chars().all(|ch| ch.is_ascii_digit()));
        }
    }
}
