//! The online CA itself: short-lived certificates, username-in-DN.

use crate::error::{MyProxyError, Result};
use ig_pki::cert::Certificate;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, CertificateSigningRequest, DistinguishedName, SigningPolicy};
use parking_lot::Mutex;
use rand::Rng;

/// Default maximum credential lifetime: 12 hours, the GCMU default.
pub const DEFAULT_MAX_LIFETIME: u64 = 12 * 3600;

/// A MyProxy Online CA bound to one endpoint.
pub struct OnlineCa {
    ca: Mutex<CertificateAuthority>,
    endpoint: String,
    base_dn: DistinguishedName,
    /// Issued-lifetime cap in seconds.
    pub max_lifetime: u64,
    clock: Clock,
}

impl OnlineCa {
    /// Create the CA for `endpoint` with a fresh key pair.
    ///
    /// The CA DN is `/O=GCMU/OU=<endpoint>/CN=MyProxy CA`; issued subject
    /// DNs are `/O=GCMU/OU=<endpoint>/CN=<username>` — §IV: "It embeds
    /// the local username in the distinguished name (DN) of the
    /// certificate, since this certificate will be used to authenticate
    /// with this site only."
    pub fn create<R: Rng + ?Sized>(
        rng: &mut R,
        endpoint: &str,
        key_bits: usize,
        clock: Clock,
    ) -> Result<Self> {
        let base_dn = DistinguishedName::from_pairs([("O", "GCMU"), ("OU", endpoint)]);
        let ca_dn = base_dn.with("CN", "MyProxy CA");
        let ca = CertificateAuthority::create(
            rng,
            ca_dn,
            key_bits,
            clock.now(),
            10 * ig_pki::time::YEAR,
        )?;
        Ok(OnlineCa {
            ca: Mutex::new(ca),
            endpoint: endpoint.to_string(),
            base_dn,
            max_lifetime: DEFAULT_MAX_LIFETIME,
            clock,
        })
    }

    /// The endpoint this CA serves.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The CA's self-signed root (what GCMU installs as a trust anchor).
    pub fn root_cert(&self) -> Certificate {
        self.ca.lock().root_cert().clone()
    }

    /// The signing policy GCMU writes next to the root: this CA may only
    /// sign subjects under its own namespace.
    pub fn signing_policy(&self) -> SigningPolicy {
        SigningPolicy::new([format!("{}/*", self.base_dn)])
    }

    /// Issue a short-lived certificate for an *already authenticated*
    /// username. The CSR's requested subject is ignored; the DN is minted
    /// from the username (the whole point of §IV-C).
    pub fn issue(
        &self,
        username: &str,
        csr: &CertificateSigningRequest,
        requested_lifetime: u64,
    ) -> Result<Certificate> {
        let t0 = std::time::Instant::now();
        let out = self.issue_inner(username, csr, requested_lifetime);
        let metrics = ig_obs::Obs::global().metrics();
        metrics.observe("myproxy.issue_ns", t0.elapsed().as_nanos() as u64);
        metrics.add(
            if out.is_ok() { "myproxy.issued" } else { "myproxy.issue_refused" },
            1,
        );
        out
    }

    fn issue_inner(
        &self,
        username: &str,
        csr: &CertificateSigningRequest,
        requested_lifetime: u64,
    ) -> Result<Certificate> {
        if username.is_empty() || username.contains(char::is_whitespace) {
            return Err(MyProxyError::IssuanceRefused(format!(
                "unusable username {username:?}"
            )));
        }
        let key = csr
            .verify()
            .map_err(|e| MyProxyError::IssuanceRefused(format!("bad CSR: {e}")))?;
        let lifetime = requested_lifetime.min(self.max_lifetime).max(60);
        self.ca
            .lock()
            .issue_short_lived(
                &self.base_dn,
                username,
                &self.endpoint,
                &key,
                self.clock.now(),
                lifetime,
            )
            .map_err(MyProxyError::Pki)
    }

    /// Issue a host certificate for the co-packaged GridFTP server (the
    /// GCMU installer calls this so no external CA is ever involved).
    pub fn issue_host_cert<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        key_bits: usize,
    ) -> Result<(Certificate, ig_crypto::RsaPrivateKey)> {
        let keys = ig_crypto::RsaKeyPair::generate(rng, key_bits)
            .map_err(|e| MyProxyError::IssuanceRefused(e.to_string()))?;
        let subject = self.base_dn.with("CN", &format!("host/{}", self.endpoint));
        let cert = self
            .ca
            .lock()
            .issue(
                subject,
                &keys.public,
                ig_pki::cert::Validity::starting_at(self.clock.now(), ig_pki::time::YEAR),
                vec![],
            )
            .map_err(MyProxyError::Pki)?;
        Ok((cert, keys.private))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;
    use ig_pki::{validate_chain, TrustStore};

    fn online_ca(seed: u64) -> OnlineCa {
        OnlineCa::create(&mut seeded(seed), "cluster.example.org", 512, Clock::Fixed(10_000))
            .unwrap()
    }

    fn csr(seed: u64) -> (CertificateSigningRequest, RsaKeyPair) {
        let kp = RsaKeyPair::generate(&mut seeded(seed), 512).unwrap();
        let csr = CertificateSigningRequest::create(
            DistinguishedName::from_pairs([("CN", "requested-name-ignored")]),
            &kp.private,
        )
        .unwrap();
        (csr, kp)
    }

    #[test]
    fn issue_embeds_username_and_marker() {
        let ca = online_ca(1);
        let (csr, kp) = csr(2);
        let cert = ca.issue("alice", &csr, 3600).unwrap();
        assert_eq!(
            cert.subject().to_string(),
            "/O=GCMU/OU=cluster.example.org/CN=alice"
        );
        assert_eq!(cert.online_ca_endpoint(), Some("cluster.example.org"));
        assert_eq!(cert.public_key().unwrap(), kp.public);
        // Chain validates against the root; GCMU marker propagates.
        let mut trust = TrustStore::new();
        trust.add_root_with_policy(ca.root_cert(), ca.signing_policy());
        let id = validate_chain(&[cert], &trust, 10_100).unwrap();
        assert_eq!(id.online_ca_endpoint.as_deref(), Some("cluster.example.org"));
    }

    #[test]
    fn lifetime_is_clamped() {
        let ca = online_ca(3);
        let (csr, _) = csr(4);
        let cert = ca.issue("bob", &csr, 100 * 24 * 3600).unwrap();
        let v = cert.tbs.validity;
        assert_eq!(v.not_after - v.not_before, DEFAULT_MAX_LIFETIME);
        // Expired short-lived cert is rejected downstream.
        assert!(cert.check_validity(10_000 + DEFAULT_MAX_LIFETIME + 1).is_err());
    }

    #[test]
    fn bad_inputs_refused() {
        let ca = online_ca(5);
        let (mut bad_csr, _) = csr(6);
        bad_csr.signature[0] ^= 1;
        assert!(ca.issue("alice", &bad_csr, 3600).is_err());
        let (ok_csr, _) = csr(7);
        assert!(ca.issue("", &ok_csr, 3600).is_err());
        assert!(ca.issue("two words", &ok_csr, 3600).is_err());
    }

    #[test]
    fn signing_policy_confines_namespace() {
        let ca = online_ca(8);
        let policy = ca.signing_policy();
        assert!(policy.permits(
            &DistinguishedName::parse("/O=GCMU/OU=cluster.example.org/CN=anyone").unwrap()
        ));
        assert!(!policy.permits(&DistinguishedName::parse("/O=Evil/CN=x").unwrap()));
    }

    #[test]
    fn host_cert_issuance() {
        let ca = online_ca(9);
        let (cert, key) = ca.issue_host_cert(&mut seeded(10), 512).unwrap();
        assert_eq!(cert.subject().common_name(), Some("host/cluster.example.org"));
        assert_eq!(cert.public_key().unwrap(), *key.public());
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert());
        validate_chain(&[cert], &trust, 20_000).unwrap();
    }
}
