//! The logon wire protocol: JSON over a `Private`-sealed GSI channel.
//!
//! The channel is server-authenticated only — the client typically has no
//! certificate yet (that is the whole point); it authenticates with the
//! username/password inside the sealed request.

use crate::error::{MyProxyError, Result};
use ig_pki::{Certificate, CertificateSigningRequest};
use serde::{Deserialize, Serialize};

/// Client → server.
#[derive(Debug, Serialize, Deserialize)]
pub struct LogonRequest {
    /// Site username.
    pub username: String,
    /// Site password (or OTP token).
    pub password: String,
    /// Requested credential lifetime in seconds.
    pub lifetime: u64,
    /// CSR for the locally generated key (§IV-A).
    pub csr: CertificateSigningRequest,
}

/// Server → client.
#[derive(Debug, Serialize, Deserialize)]
pub enum LogonResponse {
    /// Credential issued.
    Ok {
        /// The short-lived certificate.
        certificate: Certificate,
        /// Trust roots (the CA's root cert) so the client needs no
        /// manual trusted-certificates setup.
        trust_roots: Vec<Certificate>,
        /// Signing-policy file body for the root.
        signing_policy: String,
    },
    /// Refused (bad password, bad CSR...).
    Err {
        /// Human-readable reason.
        message: String,
    },
}

/// Encode a protocol message.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_vec(msg).expect("protocol message serialization cannot fail")
}

/// Decode a protocol message.
pub fn decode<T: for<'de> Deserialize<'de>>(data: &[u8]) -> Result<T> {
    serde_json::from_slice(data).map_err(|e| MyProxyError::Decode(format!("bad message: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_pki::DistinguishedName;

    #[test]
    fn request_roundtrip() {
        let kp = ig_crypto::RsaKeyPair::generate(&mut seeded(1), 512).unwrap();
        let csr = CertificateSigningRequest::create(
            DistinguishedName::from_pairs([("CN", "x")]),
            &kp.private,
        )
        .unwrap();
        let req = LogonRequest {
            username: "alice".into(),
            password: "pw".into(),
            lifetime: 3600,
            csr,
        };
        let back: LogonRequest = decode(&encode(&req)).unwrap();
        assert_eq!(back.username, "alice");
        assert_eq!(back.lifetime, 3600);
        back.csr.verify().unwrap();
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = LogonResponse::Err { message: "nope".into() };
        let back: LogonResponse = decode(&encode(&resp)).unwrap();
        match back {
            LogonResponse::Err { message } => assert_eq!(message, "nope"),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<LogonRequest>(b"junk").is_err());
    }
}
