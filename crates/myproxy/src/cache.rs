//! Short-term-credential cache with single-flight renewal.
//!
//! The hosted service re-authenticates with stored short-term
//! credentials on every transfer restart (§VI) — at fleet scale that
//! turns into issuance storms against the MyProxy online CA: thousands
//! of jobs for the same tenant all noticing the same expired credential
//! in the same tick. This cache sits in front of the CA and guarantees:
//!
//! * **hits are lock-and-return** — a credential with enough validity
//!   left (beyond a configurable clock-skew margin) is served from
//!   memory, no CA round-trip;
//! * **renewals are single-flight** — concurrent requesters for the
//!   same `(subject, lifetime-bucket)` key coalesce onto one in-flight
//!   issuance; exactly one CA call happens per storm, everyone else
//!   waits for its outcome;
//! * **failures are typed and shared, never cached** — if the CA times
//!   out, every coalesced waiter gets the same [`CredCacheError::Issue`]
//!   (the error travels by `Arc`, so the CA error type stays intact),
//!   and the next request starts a fresh flight. Retry/backoff policy is
//!   the caller's (`ig_xio::RetryPolicy` — seeded, replayable), not
//!   baked in here.
//!
//! Requested lifetimes are quantized into buckets so "give me ~8 hours"
//! from two code paths lands on the same cache line; the issued
//! credential's real expiry (as reported by the issuer) governs reuse.
//!
//! Generic over the credential value and the issuer closure, so the
//! battery in `tests/cred_cache.rs` drives it with a counting fake and
//! the E15 fleet simulation drives it with a real [`crate::OnlineCa`].

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Default lifetime-bucket width: one hour.
pub const DEFAULT_BUCKET_S: u64 = 3600;

/// Default clock-skew margin: credentials within 5 minutes of expiry
/// are treated as expired (the CA's clock and ours may disagree).
pub const DEFAULT_SKEW_MARGIN_S: u64 = 300;

/// Cache key: who the credential is for and which lifetime class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CredKey {
    /// Credential subject (tenant / username).
    pub subject: String,
    /// Quantized requested lifetime (`requested / bucket_s`).
    pub lifetime_bucket: u64,
}

/// A cached credential plus its validity window (issuer-reported,
/// absolute seconds on the caller's timeline).
#[derive(Debug, Clone, PartialEq)]
pub struct Cached<V> {
    /// The credential.
    pub value: V,
    /// When it was issued.
    pub issued_at: u64,
    /// When it expires.
    pub expires_at: u64,
}

/// Why a credential lookup failed.
#[derive(Debug)]
pub enum CredCacheError<E> {
    /// The issuance this request performed (or coalesced onto) failed.
    /// Shared by every waiter of the flight, hence the `Arc`.
    Issue(Arc<E>),
    /// The issuer returned a credential that is already unusable at the
    /// caller's clock (expires within the skew margin) — caching it
    /// would serve dead credentials for a whole bucket.
    UnusableLifetime {
        /// Issuer-reported expiry.
        expires_at: u64,
        /// The caller's now.
        now: u64,
    },
}

impl<E> Clone for CredCacheError<E> {
    fn clone(&self) -> Self {
        match self {
            CredCacheError::Issue(e) => CredCacheError::Issue(Arc::clone(e)),
            CredCacheError::UnusableLifetime { expires_at, now } => {
                CredCacheError::UnusableLifetime { expires_at: *expires_at, now: *now }
            }
        }
    }
}

impl<E: fmt::Display> fmt::Display for CredCacheError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredCacheError::Issue(e) => write!(f, "credential issuance failed: {e}"),
            CredCacheError::UnusableLifetime { expires_at, now } => {
                write!(f, "issued credential unusable: expires {expires_at}, now {now}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for CredCacheError<E> {}

/// How a [`CredCache::get_or_issue`] call was satisfied — surfaced so
/// tests and metrics can tell a storm coalesced rather than fanned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from cache.
    Hit,
    /// This call performed the issuance.
    Issued,
    /// This call waited on another caller's in-flight issuance.
    Coalesced,
}

/// One in-flight issuance; waiters block on the condvar until the
/// leader publishes the outcome.
struct Flight<V, E> {
    done: Mutex<Option<Result<Cached<V>, CredCacheError<E>>>>,
    cv: Condvar,
}

enum Entry<V, E> {
    Ready(Cached<V>),
    InFlight(Arc<Flight<V, E>>),
}

/// The single-flight credential cache.
pub struct CredCache<V, E> {
    entries: Mutex<HashMap<CredKey, Entry<V, E>>>,
    obs: Arc<ig_obs::Obs>,
    /// Lifetime quantization (seconds per bucket).
    pub bucket_s: u64,
    /// Clock-skew margin: required remaining validity for a hit.
    pub skew_margin_s: u64,
}

impl<V: Clone, E> CredCache<V, E> {
    /// A cache with the default bucket width and skew margin, reporting
    /// `myproxy.cache.*` metrics to the global registry.
    pub fn new() -> CredCache<V, E> {
        CredCache::with_obs(ig_obs::Obs::global())
    }

    /// A cache reporting into `obs` (tests pass a private registry).
    pub fn with_obs(obs: Arc<ig_obs::Obs>) -> CredCache<V, E> {
        CredCache {
            entries: Mutex::new(HashMap::new()),
            obs,
            bucket_s: DEFAULT_BUCKET_S,
            skew_margin_s: DEFAULT_SKEW_MARGIN_S,
        }
    }

    /// Builder: lifetime-bucket width in seconds.
    pub fn with_bucket(mut self, bucket_s: u64) -> Self {
        assert!(bucket_s >= 1);
        self.bucket_s = bucket_s;
        self
    }

    /// Builder: clock-skew margin in seconds.
    pub fn with_skew_margin(mut self, margin_s: u64) -> Self {
        self.skew_margin_s = margin_s;
        self
    }

    /// The cache key a `(subject, requested_lifetime)` pair maps to.
    pub fn key(&self, subject: &str, requested_lifetime_s: u64) -> CredKey {
        CredKey {
            subject: subject.to_string(),
            lifetime_bucket: requested_lifetime_s / self.bucket_s,
        }
    }

    /// Fetch the credential for `(subject, requested_lifetime_s)` at
    /// time `now`, issuing via `issue` on miss. `issue` returns the
    /// credential plus its absolute expiry; it is called **at most once
    /// per storm** — concurrent callers with the same key coalesce onto
    /// the first one's flight.
    pub fn get_or_issue(
        &self,
        subject: &str,
        requested_lifetime_s: u64,
        now: u64,
        issue: impl FnOnce() -> Result<(V, u64), E>,
    ) -> (Result<V, CredCacheError<E>>, Outcome) {
        let key = self.key(subject, requested_lifetime_s);
        let flight: Arc<Flight<V, E>>;
        {
            let mut entries = self.entries.lock().expect("cred cache poisoned");
            match entries.get(&key) {
                Some(Entry::Ready(c)) if c.expires_at > now.saturating_add(self.skew_margin_s) => {
                    self.obs.metrics().add("myproxy.cache.hits", 1);
                    return (Ok(c.value.clone()), Outcome::Hit);
                }
                Some(Entry::InFlight(f)) => {
                    let f = Arc::clone(f);
                    drop(entries);
                    self.obs.metrics().add("myproxy.cache.coalesced", 1);
                    return (self.await_flight(&f).map(|c| c.value), Outcome::Coalesced);
                }
                _ => {
                    // Miss or stale: this caller leads a new flight.
                    flight = Arc::new(Flight { done: Mutex::new(None), cv: Condvar::new() });
                    entries.insert(key.clone(), Entry::InFlight(Arc::clone(&flight)));
                }
            }
        }
        self.obs.metrics().add("myproxy.cache.misses", 1);
        let outcome = match issue() {
            Ok((value, expires_at)) => {
                if expires_at > now.saturating_add(self.skew_margin_s) {
                    Ok(Cached { value, issued_at: now, expires_at })
                } else {
                    Err(CredCacheError::UnusableLifetime { expires_at, now })
                }
            }
            Err(e) => Err(CredCacheError::Issue(Arc::new(e))),
        };
        {
            // Publish to the map first (Ready on success, gone on
            // failure so the next request starts a fresh flight)...
            let mut entries = self.entries.lock().expect("cred cache poisoned");
            match &outcome {
                Ok(c) => {
                    entries.insert(key, Entry::Ready(c.clone()));
                }
                Err(_) => {
                    entries.remove(&key);
                }
            }
        }
        // ...then wake the coalesced waiters with the shared outcome.
        *flight.done.lock().expect("flight poisoned") = Some(outcome.clone());
        flight.cv.notify_all();
        (outcome.map(|c| c.value), Outcome::Issued)
    }

    /// Block until the flight's leader publishes an outcome.
    fn await_flight(&self, f: &Flight<V, E>) -> Result<Cached<V>, CredCacheError<E>> {
        let mut done = f.done.lock().expect("flight poisoned");
        while done.is_none() {
            done = f.cv.wait(done).expect("flight poisoned");
        }
        done.clone().expect("loop exits only when Some")
    }

    /// Cached (ready) entry count — stale entries included until their
    /// key is next touched.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cred cache poisoned")
            .values()
            .filter(|e| matches!(e, Entry::Ready(_)))
            .count()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached credential (tests; tenant revocation).
    pub fn clear(&self) {
        self.entries.lock().expect("cred cache poisoned").clear();
    }
}

impl<V: Clone, E> Default for CredCache<V, E> {
    fn default() -> Self {
        CredCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cache() -> CredCache<String, String> {
        CredCache::with_obs(ig_obs::Obs::new("cred-cache-test"))
            .with_bucket(3600)
            .with_skew_margin(300)
    }

    #[test]
    fn hit_skips_the_issuer() {
        let c = cache();
        let issued = AtomicU64::new(0);
        let issue = || {
            issued.fetch_add(1, Ordering::SeqCst);
            Ok(("cert".to_string(), 10_000))
        };
        let (v, o) = c.get_or_issue("alice", 4000, 1_000, issue);
        assert_eq!((v.unwrap().as_str(), o), ("cert", Outcome::Issued));
        let (v, o) = c.get_or_issue("alice", 4000, 2_000, || unreachable!());
        assert_eq!((v.unwrap().as_str(), o), ("cert", Outcome::Hit));
        assert_eq!(issued.load(Ordering::SeqCst), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lifetime_buckets_separate_but_quantize() {
        let c = cache();
        // 4000s and 5000s land in bucket 1: one cache line.
        assert_eq!(c.key("a", 4000), c.key("a", 5000));
        // 500s is bucket 0, a different line; different subject too.
        assert_ne!(c.key("a", 500), c.key("a", 4000));
        assert_ne!(c.key("a", 4000), c.key("b", 4000));
    }

    #[test]
    fn expiry_boundary_respects_skew_margin() {
        let c = cache();
        let (v, _) = c.get_or_issue("bob", 100, 0, || Ok(("v1".to_string(), 1_000)));
        v.unwrap();
        // 699: 301s of validity left — still a hit (margin is 300).
        let (v, o) = c.get_or_issue("bob", 100, 699, || unreachable!());
        assert_eq!((v.unwrap().as_str(), o), ("v1", Outcome::Hit));
        // 700: exactly the margin left — expired, re-issues.
        let (v, o) = c.get_or_issue("bob", 100, 700, || Ok(("v2".to_string(), 2_000)));
        assert_eq!((v.unwrap().as_str(), o), ("v2", Outcome::Issued));
    }

    #[test]
    fn issuer_returning_dead_credential_is_typed_and_not_cached() {
        let c = cache();
        let (v, _) = c.get_or_issue("eve", 100, 5_000, || Ok(("dead".to_string(), 5_100)));
        assert!(matches!(
            v.unwrap_err(),
            CredCacheError::UnusableLifetime { expires_at: 5_100, now: 5_000 }
        ));
        assert!(c.is_empty());
        // Next call issues afresh.
        let (v, o) = c.get_or_issue("eve", 100, 5_000, || Ok(("live".to_string(), 50_000)));
        assert_eq!((v.unwrap().as_str(), o), ("live", Outcome::Issued));
    }

    #[test]
    fn failure_is_shared_not_cached() {
        let c = cache();
        let (v, o) = c.get_or_issue("carol", 100, 0, || Err("CA timeout".to_string()));
        let err = v.unwrap_err();
        assert!(matches!(&err, CredCacheError::Issue(e) if e.as_str() == "CA timeout"));
        assert!(err.to_string().contains("CA timeout"));
        assert_eq!(o, Outcome::Issued);
        assert!(c.is_empty(), "failures must not be cached");
        let (v, _) = c.get_or_issue("carol", 100, 0, || Ok(("ok".to_string(), 9_000)));
        v.unwrap();
    }

    #[test]
    fn stampede_coalesces_to_one_issuance() {
        let c = Arc::new(cache());
        let issued = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let c = Arc::clone(&c);
                let issued = Arc::clone(&issued);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (v, o) = c.get_or_issue("storm", 4000, 0, || {
                        issued.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the rest
                        // of the storm to pile in behind it.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(("cert".to_string(), 100_000))
                    });
                    (v.unwrap(), o)
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(issued.load(Ordering::SeqCst), 1, "storm must coalesce to one issuance");
        assert!(outcomes.iter().all(|(v, _)| v == "cert"));
        assert_eq!(outcomes.iter().filter(|(_, o)| *o == Outcome::Issued).count(), 1);
    }
}
