//! Credential-cache battery (DESIGN.md §14): expiry boundaries, clock
//! skew, single-flight stampedes against the real online CA, and a
//! CA-timeout chaos cell with typed errors and replayable backoff.

use ig_myproxy::cache::Outcome;
use ig_myproxy::{CredCache, CredCacheError, OnlineCa};
use ig_pki::time::Clock;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Case-count override for CI smoke runs (`IG_PROPTEST_CASES`).
fn cases(default: u32) -> u32 {
    std::env::var("IG_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn cache(margin: u64) -> CredCache<String, String> {
    CredCache::with_obs(ig_obs::Obs::new("cred-cache-battery"))
        .with_bucket(3600)
        .with_skew_margin(margin)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// The expiry boundary under arbitrary clock skew margins: a cached
    /// credential is served iff it outlives `now + margin`; otherwise
    /// the cache re-issues. Exactly-at-margin counts as expired (a
    /// credential that might die mid-handshake is useless).
    #[test]
    fn expiry_boundary_under_skew(
        margin in 0u64..=900,
        expires_at in 1_000u64..=5_000,
        probe_offset in -600i64..=600,
    ) {
        let c = cache(margin);
        let (v, _) = c.get_or_issue("u", 100, 0, || Ok(("v1".to_string(), expires_at)));
        prop_assume!(v.is_ok()); // issuer-dead-on-arrival cells skipped here
        let probe = expires_at.saturating_add_signed(probe_offset - i64::try_from(margin).unwrap());
        let issued = AtomicU64::new(0);
        let (v, o) = c.get_or_issue("u", 100, probe, || {
            issued.fetch_add(1, Ordering::SeqCst);
            Ok(("v2".to_string(), probe + 10_000))
        });
        let v = v.unwrap();
        if expires_at > probe.saturating_add(margin) {
            prop_assert_eq!((v.as_str(), o), ("v1", Outcome::Hit), "probe {}", probe);
            prop_assert_eq!(issued.load(Ordering::SeqCst), 0);
        } else {
            prop_assert_eq!((v.as_str(), o), ("v2", Outcome::Issued), "probe {}", probe);
            prop_assert_eq!(issued.load(Ordering::SeqCst), 1);
        }
    }

    /// An issuer handing back a credential already inside the skew
    /// margin yields a typed `UnusableLifetime` and caches nothing.
    #[test]
    fn dead_on_arrival_is_typed(margin in 1u64..=600, slack in 0u64..=599) {
        let c = cache(margin);
        let now = 10_000u64;
        let expires_at = now + slack.min(margin); // within the margin
        let (v, _) = c.get_or_issue("u", 100, now, || Ok(("dead".to_string(), expires_at)));
        prop_assert!(matches!(
            v.unwrap_err(),
            CredCacheError::UnusableLifetime { expires_at: e, now: n } if e == expires_at && n == now
        ));
        prop_assert!(c.is_empty());
    }
}

/// The E11 stampede: K threads demand a credential for the same
/// (tenant, lifetime-bucket) simultaneously against the **real** online
/// CA. The `myproxy.issued` counter (bumped inside `OnlineCa::issue`,
/// the E11 issuance metric) must move by exactly 1: one CSR signed, the
/// rest coalesced or served from cache.
#[test]
fn stampede_hits_real_ca_once() {
    use ig_crypto::rng::seeded;

    let ca = Arc::new(
        OnlineCa::create(&mut seeded(42), "fleet.example.org", 512, Clock::Fixed(50_000))
            .unwrap(),
    );
    let cache: Arc<CredCache<ig_pki::Certificate, ig_myproxy::MyProxyError>> =
        Arc::new(CredCache::with_obs(ig_obs::Obs::new("cred-cache-stampede")));
    let issued_before = ig_obs::Obs::global().metrics().counter_value("myproxy.issued");

    let k = 12;
    let barrier = Arc::new(std::sync::Barrier::new(k));
    let handles: Vec<_> = (0..k)
        .map(|i| {
            let ca = Arc::clone(&ca);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Every thread brings its own key pair / CSR — exactly
                // the storm shape: same subject, distinct requests.
                let kp = ig_crypto::RsaKeyPair::generate(&mut seeded(100 + i as u64), 512)
                    .unwrap();
                let csr = ig_pki::CertificateSigningRequest::create(
                    ig_pki::DistinguishedName::from_pairs([("CN", "ignored")]),
                    &kp.private,
                )
                .unwrap();
                barrier.wait();
                let (cert, outcome) = cache.get_or_issue("tenant-a", 4000, 50_000, || {
                    let cert = ca.issue("tenant-a", &csr, 4000)?;
                    let expires = cert.tbs.validity.not_after;
                    Ok((cert, expires))
                });
                (cert.unwrap(), outcome)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let issued_after = ig_obs::Obs::global().metrics().counter_value("myproxy.issued");
    assert_eq!(
        issued_after - issued_before,
        1,
        "a {k}-wide stampede must produce exactly one CA issuance"
    );
    assert_eq!(results.iter().filter(|(_, o)| *o == Outcome::Issued).count(), 1);
    // Everyone holds the same certificate — the leader's.
    let first = &results[0].0;
    assert!(results.iter().all(|(c, _)| c == first));
    assert_eq!(first.subject().to_string(), "/O=GCMU/OU=fleet.example.org/CN=tenant-a");
}

/// CA-timeout chaos cell: the issuer times out for a seeded prefix of
/// attempts. Every failure surfaces as a typed `CredCacheError::Issue`
/// (nothing cached), the retry loop runs on `ig_xio::RetryPolicy` with
/// a manual clock, and the backoff schedule replays exactly under the
/// same seed.
#[test]
fn ca_timeout_chaos_with_replayable_backoff() {
    #[derive(Debug, Clone, PartialEq)]
    struct CaTimeout(u32);
    impl std::fmt::Display for CaTimeout {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "CA timed out (attempt {})", self.0)
        }
    }

    let run = |seed: u64| -> (Vec<std::time::Duration>, u32, u64) {
        let cache: CredCache<String, CaTimeout> =
            CredCache::with_obs(ig_obs::Obs::new("cred-cache-chaos"));
        let policy = ig_xio::RetryPolicy {
            max_attempts: 10,
            base_backoff: std::time::Duration::from_millis(100),
            max_backoff: std::time::Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
            attempt_timeout: None,
            overall_deadline: None,
            seed,
        };
        let clock = ig_xio::test_support::ManualClock::new();
        let sleeps: std::sync::Mutex<Vec<std::time::Duration>> = std::sync::Mutex::new(vec![]);
        // Chaos: first 3 issuances time out, the 4th succeeds.
        let failures = 3u32;
        let attempts = std::sync::Mutex::new(0u32);
        let issuances = AtomicU64::new(0);
        let out = policy.run_clocked(
            clock.now_fn(),
            |d| {
                sleeps.lock().unwrap().push(d);
                clock.advance(d);
            },
            |attempt| {
                *attempts.lock().unwrap() = attempt;
                let (v, _) = cache.get_or_issue("t", 100, 0, || {
                    issuances.fetch_add(1, Ordering::SeqCst);
                    if attempt <= failures {
                        Err(CaTimeout(attempt))
                    } else {
                        Ok(("cert".to_string(), 99_000))
                    }
                });
                v
            },
        );
        // Typed all the way: the final success yields the credential;
        // the in-between errors carried the CA's own error type.
        assert_eq!(out.unwrap(), "cert");
        let attempts = attempts.into_inner().unwrap();
        (sleeps.into_inner().unwrap(), attempts, issuances.load(Ordering::SeqCst))
    };

    let (sleeps_a, attempts_a, issuances_a) = run(7);
    assert_eq!(attempts_a, 4);
    // Failures were not cached: each retry reached the issuer.
    assert_eq!(issuances_a, 4);
    assert_eq!(sleeps_a.len(), 3, "one backoff per failed attempt");
    // Growing schedule (jittered exponential, per-seed deterministic).
    assert!(sleeps_a.windows(2).all(|w| w[0] < w[1]), "{sleeps_a:?}");

    // Same seed ⇒ byte-identical backoff schedule (the replay story).
    let (sleeps_b, _, _) = run(7);
    assert_eq!(sleeps_a, sleeps_b);
    // Different seed ⇒ different jitter.
    let (sleeps_c, _, _) = run(8);
    assert_ne!(sleeps_a, sleeps_c);
}

/// A typed failure is shared by every coalesced waiter of the same
/// flight — no waiter sees a hang, a panic, or a default value.
#[test]
fn coalesced_waiters_share_the_typed_failure() {
    let cache: Arc<CredCache<String, String>> =
        Arc::new(CredCache::with_obs(ig_obs::Obs::new("cred-cache-shared-fail")));
    let k = 8;
    let barrier = Arc::new(std::sync::Barrier::new(k));
    let handles: Vec<_> = (0..k)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (v, _) = cache.get_or_issue("t", 100, 0, || {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err("CA unreachable".to_string())
                });
                v
            })
        })
        .collect();
    let mut failures = 0;
    for h in handles {
        match h.join().unwrap() {
            Err(CredCacheError::Issue(e)) => {
                assert_eq!(e.as_str(), "CA unreachable");
                failures += 1;
            }
            other => panic!("expected typed issue error, got {other:?}"),
        }
    }
    assert_eq!(failures, k);
    assert!(cache.is_empty(), "failures must never be cached");
}
