//! Criterion microbenchmarks: the primitives every transfer touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ig_crypto::chacha20::ChaCha20;
use ig_crypto::hmac::HmacSha256;
use ig_crypto::rng::seeded;
use ig_crypto::{RsaKeyPair, Sha256};
use ig_gsi::keys::SessionKeys;
use ig_gsi::record::{Opener, Sealer};
use ig_gsi::ProtectionLevel;
use ig_netsim::{parallel_transfer_time, Bottleneck, TcpParams};
use ig_protocol::command::Command;
use ig_protocol::mode_e::{fragment, Block, Reassembler};

fn bench_hash_and_cipher(c: &mut Criterion) {
    let data = vec![0xa5u8; 1 << 20];
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_1MiB", |b| b.iter(|| Sha256::digest(&data)));
    g.bench_function("hmac_sha256_1MiB", |b| b.iter(|| HmacSha256::mac(b"key", &data)));
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    g.bench_function("chacha20_1MiB", |b| {
        b.iter(|| ChaCha20::xor(&key, &nonce, &data))
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let kp = RsaKeyPair::generate(&mut seeded(1), 512).expect("keygen");
    let msg = b"control channel transcript hash";
    let sig = kp.private.sign(msg).expect("sign");
    let mut g = c.benchmark_group("rsa512");
    g.bench_function("sign", |b| b.iter(|| kp.private.sign(msg).expect("sign")));
    g.bench_function("verify", |b| b.iter(|| kp.public.verify(msg, &sig).expect("verify")));
    g.finish();
}

fn bench_records(c: &mut Criterion) {
    let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
    let payload = vec![0x5au8; 64 * 1024];
    let mut g = c.benchmark_group("gsi_record_64KiB");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
        g.bench_with_input(BenchmarkId::new("seal_open", level.name()), &level, |b, &level| {
            b.iter(|| {
                let mut sealer = Sealer::new(keys.c2s.clone());
                let mut opener = Opener::new(keys.c2s.clone());
                let rec = sealer.seal(level, &payload);
                opener.open(&rec).expect("open")
            })
        });
    }
    g.finish();
}

/// The vectorized keystream XOR across payload sizes: sub-block (tail
/// path), one block, and bulk (the u64-lane whole-block path).
fn bench_chacha20_block_xor(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut g = c.benchmark_group("chacha20_block_xor");
    for size in [1024usize, 64 * 1024, 1 << 20] {
        let label = match size {
            1024 => "1KiB",
            65536 => "64KiB",
            _ => "1MiB",
        };
        let mut buf = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &size, |b, _| {
            b.iter(|| ChaCha20::new(&key, &nonce).apply(&mut buf))
        });
    }
    g.finish();
}

/// The allocation-free record path: `seal_into` + `open_in_place` over
/// reused buffers, at every protection level and payload size. Compare
/// with `gsi_record_64KiB/seal_open` (the allocating legacy path).
fn bench_seal_open_throughput(c: &mut Criterion) {
    let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
    let mut g = c.benchmark_group("seal_open_throughput");
    for size in [1024usize, 64 * 1024, 1 << 20] {
        let label = match size {
            1024 => "1KiB",
            65536 => "64KiB",
            _ => "1MiB",
        };
        let payload = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let mut sealer = Sealer::new(keys.c2s.clone());
            let mut opener = Opener::new(keys.c2s.clone());
            let mut record = Vec::new();
            g.bench_with_input(
                BenchmarkId::new(level.name(), label),
                &level,
                |b, &level| {
                    b.iter(|| {
                        // Sealer/opener sequence counters stay in sync:
                        // each iteration seals then opens exactly once.
                        sealer.seal_into(level, &payload, &mut record);
                        let (_, body) = opener.open_in_place(&mut record).expect("open");
                        body.len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_mode_e(c: &mut Criterion) {
    let data = vec![0x3cu8; 1 << 20];
    let mut g = c.benchmark_group("mode_e_1MiB");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("fragment_64KiB_blocks", |b| b.iter(|| fragment(0, &data, 64 * 1024)));
    g.bench_function("fragment_reassemble", |b| {
        b.iter(|| {
            let blocks = fragment(0, &data, 64 * 1024);
            let mut r = Reassembler::new();
            for blk in &blocks {
                r.push(blk).expect("push");
            }
            r.push(&Block::eof_count(1)).expect("eofc");
            r.push(&Block::eod()).expect("eod");
            r.into_data(data.len() as u64).expect("complete")
        })
    });
    g.finish();
}

fn bench_command_parse(c: &mut Criterion) {
    let lines = [
        "RETR /data/some/long/path/file.dat",
        "OPTS RETR Parallelism=8,8,8;",
        "DCAU S /O=Grid/CN=alice",
        "PORT 127,0,0,1,4,210",
        "DCSC D",
    ];
    c.bench_function("command_parse_mixed", |b| {
        b.iter(|| {
            for l in &lines {
                Command::parse(l).expect("parse");
            }
        })
    });
}

fn bench_netsim(c: &mut Criterion) {
    c.bench_function("netsim_256MiB_16flows_100msRTT", |b| {
        b.iter(|| {
            let mut rng = seeded(42);
            let link = Bottleneck::new(1e10, 0.1, 1e-4);
            parallel_transfer_time(&link, 256 << 20, 16, TcpParams::tuned(), &mut rng)
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hash_and_cipher, bench_chacha20_block_xor, bench_seal_open_throughput, bench_rsa, bench_records, bench_mode_e, bench_command_parse, bench_netsim
}
criterion_main!(micro);
