//! `cargo bench --bench report_tables` — prints every experiment table
//! (the figure/claim regenerator) so the full evaluation lands in
//! bench output logs. Uses trimmed (fast) sizes; run the `report` binary
//! without `--fast` for the full-size sweeps.

fn main() {
    // Criterion-less bench target: the "benchmark" is the report itself.
    println!("{}", ig_bench::full_report(true));
}
