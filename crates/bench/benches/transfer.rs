//! Criterion end-to-end transfer benchmarks over the real loopback stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ig_bench::experiments::common::{endpoint, session, stage};
use ig_client::{transfer, TransferOpts};
use ig_gsi::ProtectionLevel;

const SIZE: usize = 4 << 20;

fn bench_prot_levels(c: &mut Criterion) {
    let ep = endpoint("bench-prot.example.org", 0xBE01);
    stage(&ep, "p.bin", SIZE);
    let mut s = session(&ep, 0xBE02);
    let mut g = c.benchmark_group("loopback_get_4MiB");
    g.throughput(Throughput::Bytes(SIZE as u64));
    for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
        s.set_prot(level).expect("prot");
        g.bench_with_input(BenchmarkId::new("prot", level.name()), &level, |b, _| {
            b.iter(|| {
                let d = transfer::get_bytes(
                    &mut s,
                    "/home/alice/p.bin",
                    &TransferOpts::default().parallel(2).block(256 * 1024),
                )
                .expect("get");
                assert_eq!(d.len(), SIZE);
            })
        });
    }
    g.finish();
    let _ = s.quit();
    ep.shutdown();
}

fn bench_parallelism(c: &mut Criterion) {
    let ep = endpoint("bench-par.example.org", 0xBE11);
    stage(&ep, "q.bin", SIZE);
    let mut s = session(&ep, 0xBE12);
    let mut g = c.benchmark_group("loopback_get_streams");
    g.throughput(Throughput::Bytes(SIZE as u64));
    for streams in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("streams", streams), &streams, |b, &n| {
            b.iter(|| {
                let d = transfer::get_bytes(
                    &mut s,
                    "/home/alice/q.bin",
                    &TransferOpts::default().parallel(n).block(128 * 1024),
                )
                .expect("get");
                assert_eq!(d.len(), SIZE);
            })
        });
    }
    g.finish();
    let _ = s.quit();
    ep.shutdown();
}

criterion_group! {
    name = transfers;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_prot_levels, bench_parallelism
}
criterion_main!(transfers);
