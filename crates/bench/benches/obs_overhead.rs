//! Criterion benchmarks for the observability layer: the `ObsLink`
//! timing driver on the data path vs a bare pipe link (the statistically
//! rigorous mirror of E13's A/B side — E13's enforceable claim is the
//! fixed per-hop cost vs the 1573 ns budget), plus the primitive costs
//! every instrumented call site pays — histogram record, counter add,
//! event emission, and the disabled-hub fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ig_obs::Obs;
use ig_xio::{pipe, Link, ObsLink};
use std::sync::Arc;

const RECORD: usize = 64 * 1024;

/// One 64 KiB record through a pipe: bare, then wrapped in `ObsLink` on
/// both ends (two histogram records + two counter adds per round trip).
fn bench_link_paths(c: &mut Criterion) {
    let buf = vec![0xa5u8; RECORD];
    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Bytes(RECORD as u64));
    g.bench_function("bare_pipe_64KiB", |b| {
        let (mut tx, mut rx) = pipe();
        b.iter(|| {
            tx.send(&buf).unwrap();
            rx.recv().unwrap().len()
        })
    });
    g.bench_function("obs_link_64KiB", |b| {
        let obs = Obs::new("bench");
        let (tx, rx) = pipe();
        let mut tx = ObsLink::new(tx, Arc::clone(&obs), "bench.dtp");
        let mut rx = ObsLink::new(rx, Arc::clone(&obs), "bench.dtp");
        b.iter(|| {
            tx.send(&buf).unwrap();
            rx.recv().unwrap().len()
        })
    });
    g.finish();
}

/// The building blocks: what one metric update or trace event costs.
fn bench_primitives(c: &mut Criterion) {
    let obs = Obs::new("bench-prim");
    let h = obs.metrics().histogram("bench.h");
    let ctr = obs.metrics().counter("bench.c");
    let mut g = c.benchmark_group("obs_primitives");
    g.bench_function("histogram_record", |b| b.iter(|| h.record(12_345)));
    g.bench_function("counter_add", |b| b.iter(|| ctr.add(1)));
    g.bench_function("event_stable", |b| {
        b.iter(|| obs.event("bench.ev", vec![ig_obs::kv("k", 1u64)]))
    });
    let off = Obs::new("bench-off");
    off.set_enabled(false);
    g.bench_function("event_disabled", |b| {
        b.iter(|| off.event("bench.ev", vec![ig_obs::kv("k", 1u64)]))
    });
    g.finish();
}

criterion_group! {
    name = obs_overhead;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_link_paths, bench_primitives
}
criterion_main!(obs_overhead);
