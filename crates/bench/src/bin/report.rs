//! `report` — regenerate the paper's figures/claims as text tables.
//!
//! ```text
//! cargo run -p ig-bench --bin report --release            # everything
//! cargo run -p ig-bench --bin report --release -- --exp e7
//! cargo run -p ig-bench --bin report --release -- --fast  # trimmed sizes
//! ```
//!
//! A full run (no `--exp` filter) also writes `BENCH_report.json` to the
//! working directory: the same tables parsed into header/rows/notes, for
//! scripts that compare runs without scraping aligned text.

use ig_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // E14's idle-session herd helper mode: hold connections for the
    // parent `report` process, then exit when it closes our stdin.
    if args.first().map(String::as_str) == Some("--e14-hold") {
        match (args.get(1), args.get(2)) {
            (Some(addr), Some(count)) => exp::e14_sessions::hold_main(addr, count),
            _ => {
                eprintln!("usage: report --e14-hold <addr> <count>");
                std::process::exit(2);
            }
        }
    }
    // Let E14 hold its herd out-of-process (client fds and RSS land in
    // the helper, not in the measured server process).
    if let Ok(me) = std::env::current_exe() {
        std::env::set_var(exp::e14_sessions::HELPER_ENV, me);
    }
    let fast = args.iter().any(|a| a == "--fast");
    let exp_filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    match exp_filter.as_deref() {
        None => {
            // Run each experiment once; derive both outputs from it.
            let sections = ig_bench::report_sections(fast);
            for (_, title, body) in &sections {
                print!("\n=== {title} ===\n{body}\n");
            }
            let json = ig_bench::json_from_sections(&sections, fast);
            let pretty = serde_json::to_string_pretty(&json).expect("serialize report");
            match std::fs::write("BENCH_report.json", pretty) {
                Ok(()) => eprintln!("wrote BENCH_report.json"),
                Err(e) => eprintln!("could not write BENCH_report.json: {e}"),
            }
        }
        Some("e1") => print!("{}", exp::e1_usage::table()),
        Some("e2") => print!("{}", exp::e2_wan::table(fast)),
        Some("e2x") => print!("{}", exp::e2_wan::crossover_table(fast)),
        Some("e3") => print!("{}", exp::e3_prot::table(fast)),
        Some("e4") => print!("{}", exp::e4_small_files::table(fast)),
        Some("e5") => print!("{}", exp::e5_striping::table(fast)),
        Some("e6") => print!("{}", exp::e6_third_party::table()),
        Some("e7") => print!("{}", exp::e7_dcsc::table()),
        Some("e8") => print!("{}", exp::e8_setup::table()),
        Some("e9") => print!("{}", exp::e9_restart::table(fast)),
        Some("e10") => print!("{}", exp::e10_oauth::table()),
        Some("e11") => print!("{}", exp::e11_myproxy::table(fast)),
        Some("e12") => print!("{}", exp::e12_overheads::table()),
        Some("e13") => print!("{}", exp::e13_obs::table(fast)),
        Some("e14") => print!("{}", exp::e14_sessions::table(fast)),
        Some("e15") => print!("{}", exp::e15_fleet::table(fast)),
        Some("e16") => print!("{}", exp::e16_drain::table(fast)),
        Some(other) => {
            eprintln!("unknown experiment {other:?}; use e1..e16 or e2x");
            std::process::exit(2);
        }
    }
}
