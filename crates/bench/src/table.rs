//! Minimal aligned-table rendering for experiment output.

/// Render rows as an aligned text table. The first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().expect("non-empty");
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            if i + 1 < row.len() {
                out.push_str(&" ".repeat(pad + 2));
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parse a table produced by [`render`] back into structured data:
/// `(header, rows, notes)`. Cells are recovered by splitting on runs of
/// two or more spaces (the render padding); the dash separator line is
/// dropped. Lines whose cell count does not match the header — e.g.
/// `(paper: ...)` footnotes appended after a table — are returned as
/// free-form notes with their internal whitespace collapsed.
pub fn parse_rendered(rendered: &str) -> (Vec<String>, Vec<Vec<String>>, Vec<String>) {
    fn split_cells(line: &str) -> Vec<String> {
        line.trim()
            .split("  ")
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect()
    }

    let mut header: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for line in rendered.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !trimmed.is_empty() && trimmed.chars().all(|c| c == '-' || c == ' ') {
            continue; // the separator under the header
        }
        if header.is_empty() {
            header = split_cells(line);
            continue;
        }
        let cells = split_cells(line);
        if cells.len() == header.len() {
            rows.push(cells);
        } else {
            notes.push(cells.join(" "));
        }
    }
    (header, rows, notes)
}

/// Human-readable bits/second.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbit/s", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} Mbit/s", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.2} kbit/s", bps / 1e3)
    } else {
        format!("{bps:.1} bit/s")
    }
}

/// Human-readable bytes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(&[
            vec!["name".into(), "value".into()],
            vec!["alpha".into(), "1".into()],
            vec!["b".into(), "22222".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
        // Columns align.
        assert_eq!(lines[2].find('1'), lines[3].find('2'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bps(2.5e9), "2.50 Gbit/s");
        assert_eq!(fmt_bps(3.2e6), "3.20 Mbit/s");
        assert_eq!(fmt_bps(1500.0), "1.50 kbit/s");
        assert_eq!(fmt_bps(10.0), "10.0 bit/s");
        assert_eq!(fmt_bytes(5), "5 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(4 << 30), "4.00 GiB");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render(&[]), "");
    }

    #[test]
    fn parse_roundtrips_render() {
        let rendered = render(&[
            vec!["config".into(), "throughput".into(), "slowdown".into()],
            vec!["PROT C".into(), "2.50 Gbit/s".into(), "1.0x".into()],
            vec!["PROT P".into(), "0.25 Gbit/s".into(), "10.0x".into()],
        ]);
        let with_note = format!("{rendered}(paper: an order of magnitude)\n");
        let (header, rows, notes) = parse_rendered(&with_note);
        assert_eq!(header, ["config", "throughput", "slowdown"]);
        assert_eq!(
            rows,
            [
                ["PROT C", "2.50 Gbit/s", "1.0x"],
                ["PROT P", "0.25 Gbit/s", "10.0x"],
            ]
        );
        assert_eq!(notes, ["(paper: an order of magnitude)"]);
    }

    #[test]
    fn parse_empty() {
        let (header, rows, notes) = parse_rendered("");
        assert!(header.is_empty() && rows.is_empty() && notes.is_empty());
    }
}
