//! # ig-bench — the evaluation harness
//!
//! One module per experiment from DESIGN.md's index (E1–E16). Every
//! module exposes a `run()` returning printable rows plus a `table()`
//! that renders the same table the paper's figure/claim corresponds to.
//! The `report` binary and the `report_tables` bench target print all of
//! them; EXPERIMENTS.md records paper-vs-measured for each.

pub mod experiments;
pub mod table;

/// Run every experiment, returning `(id, title, rendered table)` per
/// section — the single source both [`full_report`] (human text) and
/// [`json_report`] (machine-readable) are derived from.
pub fn report_sections(fast: bool) -> Vec<(&'static str, &'static str, String)> {
    vec![
        ("e1", "E1  (Fig 1) fleet usage", experiments::e1_usage::table()),
        ("e2", "E2  GridFTP vs SCP/FTP on the WAN (simulated)", experiments::e2_wan::table(fast)),
        (
            "e2x",
            "E2x transport crossover: striped TCP vs BBR reliable-UDP (simulated)",
            experiments::e2_wan::crossover_table(fast),
        ),
        ("e3", "E3  data-channel protection cost (measured)", experiments::e3_prot::table(fast)),
        ("e4", "E4  lots of small files (measured)", experiments::e4_small_files::table(fast)),
        ("e5", "E5  striping (measured, per-stripe NIC limit)", experiments::e5_striping::table(fast)),
        ("e6", "E6  third-party: direct vs through-client (simulated)", experiments::e6_third_party::table()),
        ("e7", "E7  (Figs 4-5) DCAU x DCSC matrix (measured)", experiments::e7_dcsc::table()),
        ("e8", "E8  (Fig 3, §III) setup complexity", experiments::e8_setup::table()),
        ("e9", "E9  (Fig 6) GO checkpoint restart (measured)", experiments::e9_restart::table(fast)),
        ("e10", "E10 (Fig 7) OAuth vs password activation (measured)", experiments::e10_oauth::table()),
        ("e11", "E11 MyProxy online CA issuance (measured)", experiments::e11_myproxy::table(fast)),
        ("e12", "E12 DCSC/control-channel overheads (measured)", experiments::e12_overheads::table()),
        ("e13", "E13 observability overhead: ObsLink vs bare link (measured)", experiments::e13_obs::table(fast)),
        ("e14", "E14 session scalability: threaded vs epoll reactor core (measured)", experiments::e14_sessions::table(fast)),
        ("e15", "E15 fleet-scale hosted service: Fig 1 @ 10M transfers/day (simulated)", experiments::e15_fleet::table(fast)),
        ("e16", "E16 drain under load: admin-socket drain RTT + forced checkpoint resume (measured)", experiments::e16_drain::table(fast)),
    ]
}

/// Run every experiment and return the concatenated report.
pub fn full_report(fast: bool) -> String {
    let mut out = String::new();
    for (_, title, body) in report_sections(fast) {
        out.push_str(&format!("\n=== {title} ===\n{body}\n"));
    }
    out
}

/// Machine-readable mirror of [`full_report`]: every section's rendered
/// table parsed back into header/rows/notes. The `report` binary writes
/// this next to its text output as `BENCH_report.json`.
pub fn json_report(fast: bool) -> serde_json::Value {
    json_from_sections(&report_sections(fast), fast)
}

/// Build the JSON report from already-computed sections (so a caller that
/// also prints the text report runs each experiment only once).
pub fn json_from_sections(sections: &[(&str, &str, String)], fast: bool) -> serde_json::Value {
    let sections: Vec<serde_json::Value> = sections
        .iter()
        .map(|(id, title, body)| {
            let (header, rows, notes) = table::parse_rendered(body);
            serde_json::json!({
                "id": id,
                "title": title,
                "header": header,
                "rows": rows,
                "notes": notes,
            })
        })
        .collect();
    serde_json::json!({ "fast": fast, "sections": sections })
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_mirror_structure() {
        let body = crate::table::render(&[
            vec!["metric".into(), "value".into()],
            vec!["throughput".into(), "1.00 Gbit/s".into()],
        ]);
        let sections = vec![("e0", "demo section", body)];
        let v = crate::json_from_sections(&sections, true);
        assert_eq!(v["fast"], true);
        assert_eq!(v["sections"][0]["id"], "e0");
        assert_eq!(v["sections"][0]["title"], "demo section");
        assert_eq!(v["sections"][0]["header"][0], "metric");
        assert_eq!(v["sections"][0]["rows"][0][1], "1.00 Gbit/s");
        assert_eq!(v["sections"][0]["notes"].as_array().unwrap().len(), 0);
    }
}
