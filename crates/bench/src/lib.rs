//! # ig-bench — the evaluation harness
//!
//! One module per experiment from DESIGN.md's index (E1–E12). Every
//! module exposes a `run()` returning printable rows plus a `table()`
//! that renders the same table the paper's figure/claim corresponds to.
//! The `report` binary and the `report_tables` bench target print all of
//! them; EXPERIMENTS.md records paper-vs-measured for each.

pub mod experiments;
pub mod table;

/// Run every experiment and return the concatenated report.
pub fn full_report(fast: bool) -> String {
    let mut out = String::new();
    let sections: Vec<(&str, String)> = vec![
        ("E1  (Fig 1) fleet usage", experiments::e1_usage::table()),
        ("E2  GridFTP vs SCP/FTP on the WAN (simulated)", experiments::e2_wan::table(fast)),
        ("E3  data-channel protection cost (measured)", experiments::e3_prot::table(fast)),
        ("E4  lots of small files (measured)", experiments::e4_small_files::table(fast)),
        ("E5  striping (measured, per-stripe NIC limit)", experiments::e5_striping::table(fast)),
        ("E6  third-party: direct vs through-client (simulated)", experiments::e6_third_party::table()),
        ("E7  (Figs 4-5) DCAU x DCSC matrix (measured)", experiments::e7_dcsc::table()),
        ("E8  (Fig 3, §III) setup complexity", experiments::e8_setup::table()),
        ("E9  (Fig 6) GO checkpoint restart (measured)", experiments::e9_restart::table(fast)),
        ("E10 (Fig 7) OAuth vs password activation (measured)", experiments::e10_oauth::table()),
        ("E11 MyProxy online CA issuance (measured)", experiments::e11_myproxy::table(fast)),
        ("E12 DCSC/control-channel overheads (measured)", experiments::e12_overheads::table()),
    ];
    for (title, body) in sections {
        out.push_str(&format!("\n=== {title} ===\n{body}\n"));
    }
    out
}
