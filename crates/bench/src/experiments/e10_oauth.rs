//! E10 — Fig 7: OAuth activation keeps the password off the third-party
//! service. Measured: both activation flows end to end, with the
//! password-exposure audit and latency.

use crate::experiments::common::{timed, NOW};
use crate::table;
use ig_gcmu::InstallOptions;
use ig_gol::GlobusOnline;
use ig_pki::time::Clock;

/// One flow's outcome.
pub struct Row {
    /// Flow name.
    pub flow: &'static str,
    /// Principals (besides the user) that saw the password.
    pub password_seen_by: Vec<&'static str>,
    /// Did the third party ever hold the password?
    pub third_party_exposure: bool,
    /// End-to-end activation latency (seconds).
    pub secs: f64,
}

/// Run both flows.
pub fn run() -> Vec<Row> {
    let ep = InstallOptions::new("e10.example.org")
        .account("alice", "pw")
        .clock(Clock::Fixed(NOW))
        .seed(0xE10)
        .oauth()
        .install()
        .expect("install");
    let go = GlobusOnline::new(Clock::Fixed(NOW), 0xE10_9);
    go.register_gcmu(&ep);
    let mut rows = Vec::new();
    // Password flow (Fig 6).
    let (audit, secs) = timed(|| {
        go.activate_with_password("u", "e10.example.org", "alice", "pw", 3600)
            .expect("password activation")
    });
    rows.push(Row {
        flow: "password via Globus Online (Fig 6)",
        password_seen_by: audit.seen_by.clone(),
        third_party_exposure: audit.third_party_saw_password(),
        secs,
    });
    // OAuth flow (Fig 7): user authenticates at the endpoint's page.
    let (audit, secs) = timed(|| {
        let code = ep
            .oauth
            .as_ref()
            .expect("oauth")
            .authorize("alice", "pw", "globus-online")
            .expect("authorize");
        go.activate_with_oauth("u2", "e10.example.org", &code, 3600)
            .expect("oauth activation")
    });
    rows.push(Row {
        flow: "OAuth on the endpoint (Fig 7)",
        password_seen_by: audit.seen_by.clone(),
        third_party_exposure: audit.third_party_saw_password(),
        secs,
    });
    ep.shutdown();
    rows
}

/// Render the table.
pub fn table() -> String {
    let rows = run();
    let mut t = vec![vec![
        "flow".to_string(),
        "password seen by".to_string(),
        "3rd-party exposure".to_string(),
        "latency".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.flow.to_string(),
            r.password_seen_by.join(", "),
            if r.third_party_exposure { "YES".into() } else { "no".into() },
            format!("{:.3} s", r.secs),
        ]);
    }
    format!(
        "{}(both flows yield an equivalent short-term certificate; OAuth removes the GO exposure)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oauth_removes_third_party_exposure() {
        let rows = run();
        assert!(rows[0].third_party_exposure);
        assert!(!rows[1].third_party_exposure);
        // Both complete quickly.
        for r in &rows {
            assert!(r.secs < 10.0);
        }
    }
}
