//! E11 — §IV-A: online CA issuance. Measured: logon latency/throughput
//! per PAM backend, plus lifetime-policy enforcement.

use crate::experiments::common::NOW;
use crate::table;
use ig_myproxy::ca::{OnlineCa, DEFAULT_MAX_LIFETIME};
use ig_myproxy::pam::{
    AuthBackend, FileBackend, LdapSimBackend, NisSimBackend, OtpBackend, PamStack,
    RadiusSimBackend,
};
use ig_myproxy::{myproxy_logon, MyProxyServer};
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use std::sync::Arc;
use std::time::Duration;

/// One backend's measured issuance performance.
pub struct Row {
    /// Backend name.
    pub backend: &'static str,
    /// Logons completed.
    pub logons: usize,
    /// Mean latency per logon (seconds).
    pub mean_latency_s: f64,
    /// Issuances per second.
    pub per_sec: f64,
}

fn server_with(backend: Box<dyn AuthBackend>, seed: u64) -> Arc<MyProxyServer> {
    let clock = Clock::Fixed(NOW);
    let mut rng = ig_crypto::rng::seeded(seed);
    let ca = Arc::new(OnlineCa::create(&mut rng, "e11.example.org", 512, clock).expect("ca"));
    let (host_cert, host_key) = ca.issue_host_cert(&mut rng, 512).expect("host");
    let host_cred = Credential::new(vec![host_cert, ca.root_cert()], host_key).expect("cred");
    let pam = Arc::new(PamStack::new(vec![backend]));
    MyProxyServer::start(ca, pam, host_cred, clock, seed * 7).expect("server")
}

/// Run the per-backend sweep.
pub fn run(fast: bool) -> Vec<Row> {
    let logons = if fast { 4 } else { 16 };
    let mut rows = Vec::new();
    let backends: Vec<(&'static str, Box<dyn AuthBackend>)> = vec![
        ("pam_files", {
            let mut b = FileBackend::new();
            b.add_user("alice", "pw");
            Box::new(b)
        }),
        ("pam_ldap (sim)", {
            let mut b = LdapSimBackend::new("ou=people,dc=example,dc=org");
            b.latency = Duration::from_millis(2);
            b.add_entry("alice", "pw");
            Box::new(b)
        }),
        ("pam_nis (sim)", {
            let mut b = NisSimBackend::new();
            b.latency = Duration::from_millis(1);
            b.add_entry("alice", "pw");
            Box::new(b)
        }),
        ("pam_radius (sim)", {
            let mut b = RadiusSimBackend::new(b"secret");
            b.latency = Duration::from_millis(3);
            b.add_user("alice", "pw");
            Box::new(b)
        }),
    ];
    for (i, (name, backend)) in backends.into_iter().enumerate() {
        let server = server_with(backend, 0xE11_0 + i as u64);
        let start = std::time::Instant::now();
        for n in 0..logons {
            let mut rng = ig_crypto::rng::seeded(0xE11_100 + (i * 1000 + n) as u64);
            let out = myproxy_logon(
                server.addr(),
                "alice",
                "pw",
                3600,
                TrustStore::new(),
                true,
                Clock::Fixed(NOW),
                512,
                &mut rng,
            )
            .expect("logon");
            assert!(out.credential.remaining_lifetime(NOW) > 0);
        }
        let secs = start.elapsed().as_secs_f64();
        rows.push(Row {
            backend: name,
            logons,
            mean_latency_s: secs / logons as f64,
            per_sec: logons as f64 / secs,
        });
        server.shutdown();
    }
    rows
}

/// OTP issuance works and lifetimes are clamped — spot checks printed
/// alongside the table.
pub fn spot_checks() -> (bool, bool) {
    // OTP backend behind the CA.
    let mut otp = OtpBackend::new();
    otp.enroll("alice", b"otp-secret");
    let server = server_with(Box::new(otp), 0xE11_777);
    let code = OtpBackend::code(b"otp-secret", 1);
    let mut rng = ig_crypto::rng::seeded(0xE11_778);
    let otp_ok = myproxy_logon(
        server.addr(),
        "alice",
        &code,
        3600,
        TrustStore::new(),
        true,
        Clock::Fixed(NOW),
        512,
        &mut rng,
    )
    .is_ok();
    // Lifetime clamp.
    let mut b = FileBackend::new();
    b.add_user("alice", "pw");
    let server2 = server_with(Box::new(b), 0xE11_779);
    let mut rng2 = ig_crypto::rng::seeded(0xE11_780);
    let out = myproxy_logon(
        server2.addr(),
        "alice",
        "pw",
        u64::MAX / 8,
        TrustStore::new(),
        true,
        Clock::Fixed(NOW),
        512,
        &mut rng2,
    )
    .expect("logon");
    let clamped = out.credential.remaining_lifetime(NOW) == DEFAULT_MAX_LIFETIME;
    server.shutdown();
    server2.shutdown();
    (otp_ok, clamped)
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "PAM backend".to_string(),
        "logons".to_string(),
        "mean latency".to_string(),
        "issuances/s".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.backend.to_string(),
            r.logons.to_string(),
            format!("{:.1} ms", r.mean_latency_s * 1e3),
            format!("{:.1}", r.per_sec),
        ]);
    }
    let (otp_ok, clamped) = spot_checks();
    format!(
        "{}OTP logon: {}; lifetime clamp at {}h: {}\n",
        table::render(&t),
        if otp_ok { "ok" } else { "FAILED" },
        DEFAULT_MAX_LIFETIME / 3600,
        if clamped { "enforced" } else { "NOT ENFORCED" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_issue() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.per_sec > 0.5, "{} too slow: {:.2}/s", r.backend, r.per_sec);
        }
    }

    #[test]
    fn spot_checks_hold() {
        let _serial = crate::experiments::common::bench_lock();
        let (otp_ok, clamped) = spot_checks();
        assert!(otp_ok);
        assert!(clamped);
    }
}
