//! E7 — Figures 4 and 5 as a live matrix: third-party transfers between
//! two GCMU endpoints with disjoint CAs, under every security
//! configuration the paper discusses.

use crate::experiments::common::{session, stage, NOW};
use crate::table;
use ig_client::{transfer, TransferOpts};
use ig_gcmu::InstallOptions;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName};

/// One matrix cell.
pub struct Row {
    /// Configuration label.
    pub config: &'static str,
    /// Did the transfer complete?
    pub success: bool,
    /// The deciding reply/explanation.
    pub note: String,
}

fn run_case(seed: u64, b_legacy: bool, mode: &'static str) -> Row {
    let a = InstallOptions::new("e7-a.example.org")
        .account("alice", "benchpw")
        .clock(Clock::Fixed(NOW))
        .seed(seed)
        .install()
        .expect("install a");
    let mut b_opts = InstallOptions::new("e7-b.example.org")
        .account("alice", "benchpw")
        .clock(Clock::Fixed(NOW))
        .seed(seed + 1);
    if b_legacy {
        b_opts = b_opts.legacy();
    }
    let b = b_opts.install().expect("install b");
    stage(&a, "m.bin", 20_000);
    let mut sa = session(&a, seed + 10);
    let mut sb = session(&b, seed + 20);
    let config;
    match mode {
        "none" => {
            config = if b_legacy {
                "legacy x legacy, disjoint CAs, no DCSC"
            } else {
                "DCSC-capable, disjoint CAs, DCSC not used"
            };
        }
        "dcsc-dst" => {
            sb.install_dcsc(sa.credential()).expect("dcsc dst");
            config = "DCSC P (credential A) on receiver B";
        }
        "dcsc-src" => {
            sa.install_dcsc(sb.credential()).expect("dcsc src");
            config = "DCSC P (credential B) on sender A (B legacy)";
        }
        "self-signed" => {
            let mut rng = ig_crypto::rng::seeded(seed + 99);
            let throwaway = CertificateAuthority::create(
                &mut rng,
                DistinguishedName::parse("/CN=random-ctx").expect("dn"),
                512,
                NOW - 5,
                7200,
            )
            .expect("throwaway ca");
            let cred = Credential::new(
                vec![throwaway.root_cert().clone()],
                throwaway.keypair().private.clone(),
            )
            .expect("cred");
            sa.install_dcsc(&cred).expect("dcsc a");
            sb.install_dcsc(&cred).expect("dcsc b");
            config = "random self-signed context on both (higher security)";
        }
        other => unreachable!("unknown mode {other}"),
    }
    let outcome = transfer::third_party(
        &mut sa,
        "/home/alice/m.bin",
        &mut sb,
        "/home/alice/m.bin",
        &TransferOpts::default(),
        None,
    )
    .expect("transport");
    let note = if outcome.is_success() {
        "226 transfer complete".to_string()
    } else {
        format!("{}", outcome.dst_reply)
            .chars()
            .take(60)
            .collect::<String>()
    };
    a.shutdown();
    b.shutdown();
    Row { config, success: outcome.is_success(), note }
}

/// Run the matrix.
pub fn run() -> Vec<Row> {
    vec![
        run_case(0xE7_00, false, "none"),
        run_case(0xE7_10, false, "dcsc-dst"),
        run_case(0xE7_20, true, "dcsc-src"),
        run_case(0xE7_30, false, "self-signed"),
    ]
}

/// Render the table.
pub fn table() -> String {
    let rows = run();
    let mut t = vec![vec![
        "configuration".to_string(),
        "result".to_string(),
        "note".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.config.to_string(),
            if r.success { "OK".into() } else { "FAIL".into() },
            r.note.clone(),
        ]);
    }
    format!(
        "{}(Fig 4 = row 1's failure; Fig 5 = rows 2-4 repaired by DCSC)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_the_paper() {
        let rows = run();
        assert!(!rows[0].success, "disjoint CAs without DCSC must fail (Fig 4)");
        assert!(rows[1].success, "DCSC on receiver must succeed (Fig 5)");
        assert!(rows[2].success, "sender-side DCSC with legacy receiver must succeed");
        assert!(rows[3].success, "self-signed random context must succeed");
    }
}
