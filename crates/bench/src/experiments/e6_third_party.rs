//! E6 — §VII: "SCP routes data through the client for transfers between
//! two remote hosts; but often, the two remote hosts are connected by a
//! high-speed link whereas the client and remote hosts are connected by
//! low-bandwidth links."
//!
//! Simulated: servers joined by a 1 Gbit/s, 20 ms link; the client sits
//! behind a 20 Mbit/s, 40 ms access link. GridFTP third-party moves the
//! data directly; SCP drags every byte down and back up the access link.

use crate::table;
use ig_baselines::scp::scp_netsim_params;
use ig_netsim::{parallel_transfer_time, Bottleneck, Route, TcpParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point.
pub struct Row {
    /// Payload size in bytes.
    pub bytes: u64,
    /// GridFTP direct third-party time (seconds).
    pub gridftp_direct_s: f64,
    /// SCP through-client time (seconds).
    pub scp_via_client_s: f64,
}

/// Run the sweep.
pub fn run() -> Vec<Row> {
    let server_link = Bottleneck::new(1e9, 0.02, 1e-6);
    let access_link = Bottleneck::new(20e6, 0.04, 1e-5);
    let mut rows = Vec::new();
    for bytes in [10u64 << 20, 100 << 20, 1 << 30] {
        let mut rng = StdRng::seed_from_u64(0xE6 ^ bytes);
        // Direct: 4 parallel streams on the fast inter-site link.
        let direct =
            parallel_transfer_time(&server_link, bytes, 4, TcpParams::tuned(), &mut rng);
        // Via client: download A→client then upload client→B, each over
        // the effective route (server link + access link), single scp
        // stream. scp is sequential: total = down + up.
        let route = Route::via(server_link, access_link).effective();
        let down = parallel_transfer_time(&route, bytes, 1, scp_netsim_params(), &mut rng);
        let up = parallel_transfer_time(&route, bytes, 1, scp_netsim_params(), &mut rng);
        rows.push(Row { bytes, gridftp_direct_s: direct, scp_via_client_s: down + up });
    }
    rows
}

/// Render the table.
pub fn table() -> String {
    let rows = run();
    let mut t = vec![vec![
        "size".to_string(),
        "gridftp direct".to_string(),
        "scp via client".to_string(),
        "speedup".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            table::fmt_bytes(r.bytes),
            format!("{:.1} s", r.gridftp_direct_s),
            format!("{:.1} s", r.scp_via_client_s),
            format!("{:.0}x", r.scp_via_client_s / r.gridftp_direct_s),
        ]);
    }
    format!(
        "{}(servers: 1 Gbit/s / 20 ms; client access: 20 Mbit/s / 40 ms)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_wins_by_the_link_ratio() {
        let rows = run();
        for r in &rows {
            assert!(
                r.scp_via_client_s > 5.0 * r.gridftp_direct_s,
                "{} bytes: direct {:.1}s via-client {:.1}s",
                r.bytes,
                r.gridftp_direct_s,
                r.scp_via_client_s
            );
        }
        // Larger payloads widen the absolute gap.
        assert!(rows[2].scp_via_client_s - rows[2].gridftp_direct_s
            > rows[0].scp_via_client_s - rows[0].gridftp_direct_s);
    }
}
