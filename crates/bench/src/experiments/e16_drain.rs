//! E16 — drain under load: retiring a hosted endpoint (§VI) without
//! losing acknowledged bytes.
//!
//! Three rounds, driven through the *real* admin unix socket (the same
//! wire an operator's tooling speaks):
//!
//! * **idle** — drain a server with no in-flight transfers, many times,
//!   alternating cores; the request→reply RTT distribution is the pure
//!   drain-path latency, and its p99 is budget-gated in CI.
//! * **busy/clean** — drain with a generous deadline while a throttled
//!   GET is mid-flight: the drain must wait for the transfer, report
//!   `clean`, and the client's bytes must verify.
//! * **forced checkpoint** — a chaos-injected third-party transfer into
//!   the draining server: a `Drop` fault in the source's data plane
//!   kills the attempt while a tiny-deadline drain interrupts the
//!   endpoint. The receiver's 111-marker checkpoint then seeds a resume
//!   against a replacement server sharing the same storage; the resumed
//!   attempt must move *only* the missing ranges (source `bytes_out`
//!   delta), and the final content must verify — zero acknowledged
//!   bytes lost, zero re-sent.

use crate::table;
use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_server::dsi::read_all;
use ig_server::{
    Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore, UserContext,
};
use ig_xio::{ChaosConfig, ChaosHook, FaultKind, FaultSpec, Link, TcpLink, Trigger};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: u64 = 1_000_000;
const PAYLOAD_LEN: usize = 40_000;
const BLOCK: usize = 4 * 1024;
/// Server data-plane throttle for rounds that need a transfer to stay
/// in flight (~0.4–0.5 s at this rate).
const SLOW_RATE: f64 = 100_000.0;
/// Receiver stall detector: a permanent hole turns into a 426 (with the
/// checkpoint on the wire) this fast.
const STALL: Duration = Duration::from_millis(250);
/// CI gate: p99 idle-drain RTT through the admin socket.
pub const DRAIN_P99_BUDGET_MS: f64 = 250.0;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i * 41 % 251) as u8).collect()
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ig-e16-{}-{}.sock", tag, std::process::id()))
}

fn cores() -> Vec<ServerCore> {
    #[cfg(target_os = "linux")]
    {
        vec![ServerCore::Threaded, ServerCore::Reactor]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![ServerCore::Threaded]
    }
}

/// Shared PKI world: one CA, host credentials minted per endpoint, one
/// mapped user.
struct World {
    ca_trust: TrustStore,
    gridmap: Gridmap,
    user_cred: Credential,
    host_creds: Vec<(String, Credential)>,
}

fn world(seed: u64, hosts: &[&str]) -> World {
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=E16 CA"), 512, 0, NOW * 10).unwrap();
    let host_creds = hosts
        .iter()
        .map(|name| {
            let keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
            let cert = ca
                .issue(
                    dn(&format!("/CN={name}")),
                    &keys.public,
                    Validity::starting_at(0, NOW * 10),
                    vec![],
                )
                .unwrap();
            (name.to_string(), Credential::new(vec![cert], keys.private).unwrap())
        })
        .collect();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut ca_trust = TrustStore::new();
    ca_trust.add_root(ca.root_cert().clone());
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    World {
        ca_trust,
        gridmap,
        user_cred: Credential::new(vec![user_cert], user_keys.private).unwrap(),
        host_creds,
    }
}

impl World {
    fn host_cred(&self, name: &str) -> Credential {
        self.host_creds.iter().find(|(n, _)| n == name).expect("known host").1.clone()
    }

    /// Start an endpoint with its admin socket at `sock_path(tag)`.
    #[allow(clippy::too_many_arguments)]
    fn start(
        &self,
        name: &str,
        tag: &str,
        core: ServerCore,
        dsi: Arc<MemDsi>,
        obs: &Arc<ig_obs::Obs>,
        stripe_rate: Option<f64>,
        data_chaos: Option<Arc<ChaosHook>>,
        seed: u64,
    ) -> (Arc<GridFtpServer>, PathBuf) {
        let sock = sock_path(tag);
        let mut cfg = ServerConfig::new(
            name,
            self.host_cred(name),
            self.ca_trust.clone(),
            Arc::new(GridmapAuthz::new(self.gridmap.clone())),
            dsi as Arc<dyn Dsi>,
        )
        .with_clock(Clock::Fixed(NOW))
        .with_block_size(BLOCK)
        .with_stall_timeout(STALL)
        .with_obs(Arc::clone(obs))
        .with_core(core)
        .with_admin_socket(sock.clone());
        if let Some(rate) = stripe_rate {
            cfg = cfg.with_stripes(1, Some(rate));
        }
        if let Some(hook) = data_chaos {
            cfg = cfg.with_data_chaos(hook);
        }
        (GridFtpServer::start(cfg, seed).unwrap(), sock)
    }

    fn session(&self, server: &GridFtpServer, seed: u64) -> ClientSession {
        let cfg = ClientConfig::new(self.user_cred.clone(), self.ca_trust.clone())
            .with_clock(Clock::Fixed(NOW))
            .with_seed(seed)
            .no_delegation()
            .with_retry(
                RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(2))),
            );
        let tcp = TcpLink::connect(server.addr().to_socket_addr()).unwrap();
        let mut s = ClientSession::from_link(Box::new(tcp) as Box<dyn Link>, cfg).unwrap();
        s.login().unwrap();
        s.set_dcau(DcauMode::None).unwrap();
        s
    }
}

/// What a drain command reported, however it was driven.
struct DrainOutcome {
    clean: bool,
    waited_ms: u64,
    interrupted: u64,
}

/// Drive `drain` the way an operator does: over the admin unix socket
/// (hello handshake + one length-prefixed JSON frame each way). Returns
/// the parsed report and the request→reply RTT in milliseconds. On
/// platforms without the admin plane the handle is driven directly.
#[cfg(target_os = "linux")]
fn drive_drain(
    _server: &GridFtpServer,
    sock: &Path,
    deadline_ms: u64,
) -> (DrainOutcome, f64) {
    use ig_server::admin::wire::{self, Json};
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let mut stream = UnixStream::connect(sock).expect("admin socket");
    stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    stream.write_all(b"IGADMIN 1\n").unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("admin closed during handshake"),
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => panic!("admin handshake: {e}"),
        }
    }
    assert_eq!(String::from_utf8_lossy(&line), "IGADMIN 1 OK");

    let req = format!("{{\"cmd\":\"drain\",\"deadline_ms\":{deadline_ms}}}");
    let started = Instant::now();
    stream.write_all(&ig_xio::FrameBuf::encode(req.as_bytes())).unwrap();
    let mut inbuf = ig_xio::FrameBuf::new();
    let mut chunk = [0u8; 4096];
    let frame = loop {
        if let Some(f) = inbuf.next_frame().unwrap() {
            break f;
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!("admin closed before the drain reply"),
            Ok(n) => inbuf.push(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => panic!("admin read: {e}"),
        }
    };
    let rtt_ms = started.elapsed().as_secs_f64() * 1e3;
    let reply = wire::parse(&String::from_utf8(frame).unwrap()).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "drain not ok");
    (
        DrainOutcome {
            clean: reply.get("clean").and_then(Json::as_bool).unwrap(),
            waited_ms: reply.get("waited_ms").and_then(Json::as_u64).unwrap(),
            interrupted: reply
                .get("transfers_interrupted")
                .and_then(Json::as_u64)
                .unwrap(),
        },
        rtt_ms,
    )
}

#[cfg(not(target_os = "linux"))]
fn drive_drain(
    server: &GridFtpServer,
    _sock: &Path,
    deadline_ms: u64,
) -> (DrainOutcome, f64) {
    let started = Instant::now();
    let report = server.drain(Duration::from_millis(deadline_ms));
    (
        DrainOutcome {
            clean: report.clean,
            waited_ms: report.waited_ms,
            interrupted: report.transfers_interrupted,
        },
        started.elapsed().as_secs_f64() * 1e3,
    )
}

/// A busy/clean drain measurement.
pub struct BusyRow {
    /// Core label the server ran on.
    pub core: &'static str,
    /// Drain reported clean (waited out the in-flight GET).
    pub clean: bool,
    /// Transfers interrupted at the deadline (must be 0).
    pub interrupted: u64,
    /// How long the drain waited for quiescence.
    pub waited_ms: u64,
    /// The concurrent GET delivered the exact payload.
    pub content_ok: bool,
}

/// A forced checkpoint-and-resume measurement.
pub struct ForcedRow {
    /// Core label both endpoints ran on.
    pub core: &'static str,
    /// Transfers still in flight when the tiny deadline expired.
    pub interrupted: u64,
    /// Bytes the receiver had acknowledged (checkpoint total).
    pub acked: u64,
    /// Bytes the resumed attempt moved (source bytes_out delta).
    pub resumed: u64,
    /// Bytes re-sent beyond the missing set (must be 0).
    pub resent: u64,
    /// Every acknowledged range matched the payload before the resume,
    /// and the final file verified byte-for-byte after it.
    pub content_ok: bool,
}

/// Full E16 results.
pub struct Results {
    /// Idle-drain RTTs (ms), through the admin socket, across cores.
    pub idle_rtt_ms: Vec<f64>,
    pub busy: Vec<BusyRow>,
    pub forced: Vec<ForcedRow>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

impl Results {
    /// p50 of the idle-drain RTT distribution.
    pub fn idle_p50_ms(&self) -> f64 {
        let mut v = self.idle_rtt_ms.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&v, 0.50)
    }

    /// p99 of the idle-drain RTT distribution (the CI-gated number).
    pub fn idle_p99_ms(&self) -> f64 {
        let mut v = self.idle_rtt_ms.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&v, 0.99)
    }
}

fn idle_round(iteration: usize, core: ServerCore) -> f64 {
    let obs = ig_obs::Obs::new("e16-idle");
    let w = world(0xE16_000 + iteration as u64, &["e16.example.org"]);
    let dsi = Arc::new(MemDsi::new());
    let (server, sock) = w.start(
        "e16.example.org",
        &format!("idle{iteration}"),
        core,
        Arc::clone(&dsi),
        &obs,
        None,
        None,
        7 + iteration as u64,
    );
    // The server has done real work before retiring: one quick PUT.
    let mut s = w.session(&server, 40 + iteration as u64);
    let small: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(2)));
    transfer::put_bytes(&mut s, "/home/alice/warm.bin", &small, &opts).unwrap();

    let (outcome, rtt_ms) = drive_drain(&server, &sock, 2000);
    assert!(outcome.clean, "idle drain must be clean");
    assert_eq!(outcome.interrupted, 0);
    drop(s); // session's QUIT no longer matters; server is retiring
    rtt_ms
}

fn busy_round(core: ServerCore, tag: &str) -> BusyRow {
    let obs = ig_obs::Obs::new("e16-busy");
    let w = world(0xE16_100, &["e16.example.org"]);
    let dsi = Arc::new(MemDsi::new());
    let (server, sock) = w.start(
        "e16.example.org",
        tag,
        core,
        Arc::clone(&dsi),
        &obs,
        Some(SLOW_RATE),
        None,
        17,
    );
    let data = payload();
    let mut s = w.session(&server, 50);
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(5)));
    transfer::put_bytes(&mut s, "/home/alice/busy.bin", &data, &opts).unwrap();

    // Throttled GET in flight while the operator drains with a generous
    // deadline: the drain waits it out.
    let getter = std::thread::spawn(move || {
        let got = transfer::get_bytes(&mut s, "/home/alice/busy.bin", &opts);
        drop(s);
        got
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs.metrics().gauge_value("server.transfers_active") < 1.0 {
        assert!(Instant::now() < deadline, "GET never became active");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (outcome, _rtt) = drive_drain(&server, &sock, 5000);
    let got = getter.join().unwrap();
    BusyRow {
        core: core.label(),
        clean: outcome.clean,
        interrupted: outcome.interrupted,
        waited_ms: outcome.waited_ms,
        content_ok: got.map(|g| g == data).unwrap_or(false),
    }
}

fn forced_round(core: ServerCore, tag: &str) -> ForcedRow {
    let w = world(0xE16_200, &["e16-src.example.org", "e16-dst.example.org"]);
    let data = payload();

    // Source endpoint: throttled data plane with a seeded Drop fault
    // armed — record 5 of the server-to-server stream vanishes.
    let src_obs = ig_obs::Obs::new("e16-src");
    let src_dsi = Arc::new(MemDsi::new());
    src_dsi.put("/home/alice/e16.bin", &data);
    let hook = ChaosHook::disarmed(ChaosConfig::single(
        0xE16_5EED,
        FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(5)),
    ));
    let (src, _src_sock) = w.start(
        "e16-src.example.org",
        &format!("{tag}-src"),
        core,
        Arc::clone(&src_dsi),
        &src_obs,
        Some(SLOW_RATE),
        Some(Arc::clone(&hook)),
        27,
    );

    // Destination endpoint A: the one being retired mid-transfer.
    let dst_obs = ig_obs::Obs::new("e16-dst");
    let dst_dsi = Arc::new(MemDsi::new());
    let (dst_a, dst_sock) = w.start(
        "e16-dst.example.org",
        &format!("{tag}-dst"),
        core,
        Arc::clone(&dst_dsi),
        &dst_obs,
        None,
        None,
        37,
    );

    // Chaos-injected third-party attempt, driven from its own thread so
    // the operator can drain mid-flight.
    let mut src_sess = w.session(&src, 60);
    let mut dst_sess = w.session(&dst_a, 61);
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(2)));
    hook.arm();
    let mover_opts = opts.clone();
    let mover = std::thread::spawn(move || {
        let r = transfer::third_party(
            &mut src_sess,
            "/home/alice/e16.bin",
            &mut dst_sess,
            "/home/alice/e16.bin",
            &mover_opts,
            None,
        );
        drop(src_sess);
        drop(dst_sess);
        r
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while dst_obs.metrics().gauge_value("server.transfers_active") < 1.0 {
        assert!(Instant::now() < deadline, "third-party receive never became active");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Tiny deadline: the in-flight receive cannot finish in time.
    let (outcome, _rtt) = drive_drain(&dst_a, &dst_sock, 40);
    let attempt = mover.join().unwrap().expect("control channels survive the fault");
    hook.disarm();
    assert!(
        !attempt.is_success(),
        "the seeded Drop must fail the first attempt (dst {})",
        attempt.dst_reply.code
    );
    let checkpoint = attempt.checkpoint.clone();
    let acked = checkpoint.total();
    assert!(acked > 0, "receiver acknowledged nothing before the fault");
    assert!(
        !checkpoint.is_complete(data.len() as u64),
        "a dropped record cannot leave a complete file"
    );

    // Zero acknowledged bytes lost: every checkpointed range matches
    // the payload in the (shared) storage the replacement will serve.
    let root = UserContext::superuser();
    let partial = read_all(&*dst_dsi, &root, "/home/alice/e16.bin", 1 << 20).unwrap();
    let mut ranges_ok = true;
    for &(start, end) in checkpoint.ranges() {
        let (s, e) = (start as usize, end as usize);
        if partial.len() < e || partial[s..e] != data[s..e] {
            ranges_ok = false;
        }
    }

    // Replacement endpoint B on the same storage; the checkpoint seeds
    // the resume, so only the missing ranges move again.
    let (dst_b, _b_sock) = w.start(
        "e16-dst.example.org",
        &format!("{tag}-dst2"),
        core,
        Arc::clone(&dst_dsi),
        &ig_obs::Obs::new("e16-dst2"),
        None,
        None,
        47,
    );
    let sent_before = src_obs.metrics().counter_value("server.bytes_out");
    let mut src_sess = w.session(&src, 62);
    let mut dst_sess = w.session(&dst_b, 63);
    let resumed_outcome = transfer::third_party(
        &mut src_sess,
        "/home/alice/e16.bin",
        &mut dst_sess,
        "/home/alice/e16.bin",
        &opts,
        Some(&checkpoint),
    )
    .expect("resume attempt");
    assert!(
        resumed_outcome.is_success(),
        "resume must complete (dst {})",
        resumed_outcome.dst_reply.code
    );
    let resumed = src_obs.metrics().counter_value("server.bytes_out") - sent_before;
    let missing = data.len() as u64 - acked;
    let final_content = read_all(&*dst_dsi, &root, "/home/alice/e16.bin", 1 << 20).unwrap();

    drop(src_sess);
    drop(dst_sess);
    src.shutdown();
    dst_b.shutdown();
    ForcedRow {
        core: core.label(),
        interrupted: outcome.interrupted,
        acked,
        resumed,
        resent: resumed.saturating_sub(missing),
        content_ok: ranges_ok && final_content == data,
    }
}

/// Run the sweep.
pub fn run(fast: bool) -> Results {
    let cores = cores();
    let idle_n = if fast { 6 } else { 20 };
    let mut idle_rtt_ms = Vec::with_capacity(idle_n);
    for i in 0..idle_n {
        idle_rtt_ms.push(idle_round(i, cores[i % cores.len()]));
    }
    let mut busy = Vec::new();
    let mut forced = Vec::new();
    for (i, &core) in cores.iter().enumerate() {
        if fast && i > 0 {
            // Fast mode covers the second core in the idle sweep only.
            break;
        }
        busy.push(busy_round(core, &format!("busy{i}")));
        forced.push(forced_round(core, &format!("forced{i}")));
    }
    Results { idle_rtt_ms, busy, forced }
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let r = run(fast);
    let mut t = vec![vec![
        "round".to_string(),
        "core".to_string(),
        "drain".to_string(),
        "acked bytes".to_string(),
        "resumed".to_string(),
        "re-sent".to_string(),
        "verified".to_string(),
    ]];
    t.push(vec![
        format!("idle x{}", r.idle_rtt_ms.len()),
        "both".to_string(),
        format!("p50 {:.1} ms / p99 {:.1} ms", r.idle_p50_ms(), r.idle_p99_ms()),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("p99 budget {DRAIN_P99_BUDGET_MS:.0} ms"),
    ]);
    for b in &r.busy {
        t.push(vec![
            "busy (waits)".to_string(),
            b.core.to_string(),
            format!("clean={} waited {} ms", b.clean, b.waited_ms),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            if b.content_ok { "content ok".into() } else { "CONTENT MISMATCH".into() },
        ]);
    }
    for f in &r.forced {
        t.push(vec![
            "forced ckpt".to_string(),
            f.core.to_string(),
            format!("interrupted={}", f.interrupted),
            table::fmt_bytes(f.acked),
            table::fmt_bytes(f.resumed),
            table::fmt_bytes(f.resent),
            if f.content_ok { "content ok".into() } else { "CONTENT MISMATCH".into() },
        ]);
    }
    format!(
        "{}(drain driven over the admin unix socket; forced round: seeded Drop fault + 40 ms deadline, then 111-checkpoint resume onto a replacement server sharing the DSI)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gate from ISSUE 10: bounded drain p99, zero acknowledged
    /// bytes lost under chaos, and nothing re-sent on resume.
    #[test]
    fn drain_p99_bounded_and_no_acked_bytes_lost() {
        let _serial = crate::experiments::common::bench_lock();
        let r = run(true);
        assert!(
            r.idle_p99_ms() <= DRAIN_P99_BUDGET_MS,
            "idle drain p99 {:.1} ms blew the {:.0} ms budget",
            r.idle_p99_ms(),
            DRAIN_P99_BUDGET_MS
        );
        for b in &r.busy {
            assert!(b.clean, "busy drain on {} must wait out the transfer", b.core);
            assert_eq!(b.interrupted, 0, "generous deadline must interrupt nothing");
            assert!(b.content_ok, "in-flight GET on {} lost bytes", b.core);
        }
        for f in &r.forced {
            assert!(f.interrupted >= 1, "tiny deadline must report the in-flight transfer");
            assert!(f.acked > 0, "receiver checkpointed nothing on {}", f.core);
            assert_eq!(f.resent, 0, "resume on {} re-sent acknowledged bytes", f.core);
            assert!(f.content_ok, "acknowledged bytes lost on {}", f.core);
        }
    }
}
