//! E12 — ablation overheads: DCSC blob size/parse cost vs chain length
//! (§V-A), and the default-on control-channel protection cost (§IIC).

use crate::table;
use ig_crypto::rng::seeded;
use ig_gsi::context::test_support::{ca_and_credential, config_with};
use ig_gsi::context::SecureContext;
use ig_gsi::handshake::pump;
use ig_pki::cert::Validity;
use ig_pki::proxy::{delegate, ProxyOptions};
use ig_pki::{CertificateAuthority, Credential, DistinguishedName};
use ig_protocol::command::{Command, ProtectedKind};
use ig_protocol::{dcsc, secure_line};

/// DCSC blob metrics for one chain length.
pub struct BlobRow {
    /// Certificates in the chain.
    pub chain_len: usize,
    /// Encoded `DCSC P` blob size in bytes.
    pub blob_bytes: usize,
    /// Round-trip (encode + parse) time, microseconds.
    pub roundtrip_us: f64,
}

/// Build credentials with chains of 1..=3 certificates and measure.
pub fn run_blobs() -> Vec<BlobRow> {
    let mut rng = seeded(0xE12);
    let mut ca = CertificateAuthority::create(
        &mut rng,
        DistinguishedName::parse("/O=E12 CA").expect("dn"),
        512,
        0,
        1_000_000_000,
    )
    .expect("ca");
    let keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).expect("keys");
    let cert = ca
        .issue(
            DistinguishedName::parse("/O=Grid/CN=alice").expect("dn"),
            &keys.public,
            Validity::starting_at(0, 1_000_000_000),
            vec![],
        )
        .expect("issue");
    let leaf_only = Credential::new(vec![cert.clone()], keys.private.clone()).expect("cred1");
    let with_root =
        Credential::new(vec![cert, ca.root_cert().clone()], keys.private).expect("cred2");
    let delegated = delegate(&mut rng, &with_root, 512, 0, ProxyOptions::default()).expect("deleg");
    let mut rows = Vec::new();
    for cred in [&leaf_only, &with_root, &delegated] {
        let start = std::time::Instant::now();
        let iters = 20;
        for _ in 0..iters {
            let cmd = dcsc::encode_dcsc_p(cred);
            let Command::Dcsc { context_type, blob } = cmd else { unreachable!() };
            dcsc::interpret(context_type, blob.as_deref()).expect("parse");
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        rows.push(BlobRow {
            chain_len: cred.chain().len(),
            blob_bytes: dcsc::blob_size(cred),
            roundtrip_us: us,
        });
    }
    rows
}

/// Control-channel protection cost: μs per command round for plain vs
/// `MIC` vs `ENC` wrapping.
pub struct CtrlRow {
    /// Wrapping mode.
    pub mode: &'static str,
    /// Microseconds per command wrap+unwrap.
    pub us_per_command: f64,
}

/// Measure control-channel wrapping.
pub fn run_ctrl() -> Vec<CtrlRow> {
    let mut rng = seeded(0xE12_2);
    let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
    let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=client");
    let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
    let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);
    let (ie, ae) = pump(client_cfg, server_cfg, &mut rng).expect("handshake");
    let mut client = SecureContext::from_established(ie);
    let mut server = SecureContext::from_established(ae);
    let cmd = Command::Retr("/data/file-with-a-typical-path-length.dat".into());
    let iters = 500;
    let mut rows = Vec::new();
    // Plain: parse/serialize only.
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let line = cmd.to_string();
        let _ = Command::parse(&line).expect("parse");
    }
    rows.push(CtrlRow {
        mode: "plain (no protection)",
        us_per_command: start.elapsed().as_secs_f64() * 1e6 / iters as f64,
    });
    for (kind, name) in [(ProtectedKind::Mic, "MIC (integrity)"), (ProtectedKind::Enc, "ENC (private, GridFTP default)")] {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let wrapped = secure_line::protect_command(&mut client, kind, &cmd);
            let _ = secure_line::unprotect_command(&mut server, &wrapped).expect("unwrap");
        }
        rows.push(CtrlRow {
            mode: name,
            us_per_command: start.elapsed().as_secs_f64() * 1e6 / iters as f64,
        });
    }
    rows
}

/// Render the table.
pub fn table() -> String {
    let blobs = run_blobs();
    let mut t1 = vec![vec![
        "chain length".to_string(),
        "DCSC P blob".to_string(),
        "encode+parse".to_string(),
    ]];
    for r in &blobs {
        t1.push(vec![
            r.chain_len.to_string(),
            table::fmt_bytes(r.blob_bytes as u64),
            format!("{:.0} us", r.roundtrip_us),
        ]);
    }
    let ctrl = run_ctrl();
    let mut t2 = vec![vec!["control-channel mode".to_string(), "per command".to_string()]];
    for r in &ctrl {
        t2.push(vec![r.mode.to_string(), format!("{:.1} us", r.us_per_command)]);
    }
    format!("{}\n{}", table::render(&t1), table::render(&t2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_grows_with_chain() {
        let rows = run_blobs();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].blob_bytes < rows[1].blob_bytes);
        assert!(rows[1].blob_bytes < rows[2].blob_bytes);
        // Parsing stays cheap (well under a millisecond).
        for r in &rows {
            assert!(r.roundtrip_us < 10_000.0);
        }
    }

    #[test]
    fn protection_costs_are_finite_and_ordered() {
        let rows = run_ctrl();
        assert_eq!(rows.len(), 3);
        // Wrapping costs more than plain parsing.
        assert!(rows[1].us_per_command > rows[0].us_per_command);
        assert!(rows[2].us_per_command > rows[0].us_per_command);
    }
}
