//! E5 — striping (§II, Fig 2): a striped server with one (rate-limited)
//! NIC per data-mover node scales throughput with stripe count.
//!
//! Measured: third-party transfer into a striped receiver whose stripes
//! are each throttled to a fixed rate — adding stripes adds capacity.

use crate::experiments::common::{endpoint_with, session, stage};
use crate::table;
use ig_client::{transfer, TransferOpts};
use ig_server::UserContext;

/// One measured point.
pub struct Row {
    /// Stripe count.
    pub stripes: usize,
    /// Seconds for the transfer.
    pub secs: f64,
    /// Aggregate throughput, bytes/second.
    pub bytes_per_sec: f64,
    /// Data connections the receiver actually used.
    pub streams: u32,
}

/// Per-stripe NIC rate (bytes/s). Deliberately far below what one CPU
/// can push through the stack, so the stripe limit (not the host CPU) is
/// the binding constraint — the same reason the real striped server puts
/// each DTP on its own node.
pub const STRIPE_RATE: f64 = 1024.0 * 1024.0;

/// Run the sweep.
pub fn run(fast: bool) -> Vec<Row> {
    let size = if fast { 1 << 20 } else { 4 << 20 };
    let stripe_counts: &[usize] = if fast { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for (i, &stripes) in stripe_counts.iter().enumerate() {
        let src = endpoint_with("e5-src.example.org", 0xE5_00 + i as u64, |o| o);
        let dst = endpoint_with("e5-dst.example.org", 0xE5_50 + i as u64, |o| {
            if stripes > 1 {
                o.striped(stripes, Some(STRIPE_RATE))
            } else {
                o.striped(1, Some(STRIPE_RATE))
            }
        });
        let data = stage(&src, "striped.bin", size);
        let mut sa = session(&src, 0xE5_100 + i as u64 * 7);
        let mut sb = session(&dst, 0xE5_200 + i as u64 * 7);
        sb.install_dcsc(sa.credential()).expect("dcsc");
        let opts = if stripes > 1 {
            TransferOpts::default().striped_mode().block(64 * 1024)
        } else {
            TransferOpts::default().block(64 * 1024)
        };
        let start = std::time::Instant::now();
        let outcome = transfer::third_party(
            &mut sa,
            "/home/alice/striped.bin",
            &mut sb,
            "/home/alice/striped.bin",
            &opts,
            None,
        )
        .expect("transfer");
        let secs = start.elapsed().as_secs_f64();
        assert!(outcome.is_success(), "stripes={stripes}: {outcome:?}");
        let alice = UserContext::user("alice");
        let got =
            ig_server::dsi::read_all(dst.dsi.as_ref(), &alice, "/home/alice/striped.bin", 1 << 20)
                .expect("read back");
        assert_eq!(got, data);
        let streams = dst.usage.records().first().map(|r| r.streams).unwrap_or(0);
        rows.push(Row { stripes, secs, bytes_per_sec: size as f64 / secs, streams });
        let _ = sa.quit();
        let _ = sb.quit();
        src.shutdown();
        dst.shutdown();
    }
    rows
}

/// The single reliable-UDP flow measured against the striped rows: a
/// direct two-party MODE E download through the userspace datagram
/// driver (BBR, one flow, no stripe NIC throttle — its ceiling is the
/// per-datagram CPU path, which is exactly the crossover's other side).
pub fn udp_flow_run(fast: bool) -> Row {
    let size = if fast { 1 << 20 } else { 4 << 20 };
    let ep = endpoint_with("e5-udp.example.org", 0xE5_0DD, |o| o);
    let data = stage(&ep, "udpflow.bin", size);
    let mut s = session(&ep, 0xE5_0EE);
    let opts = TransferOpts::default().udp().block(64 * 1024);
    let start = std::time::Instant::now();
    let got = transfer::get_bytes(&mut s, "/home/alice/udpflow.bin", &opts).expect("udp get");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(got, data, "udp flow corrupted the payload");
    let streams = ep.usage.records().first().map(|r| r.streams).unwrap_or(0);
    let _ = s.quit();
    ep.shutdown();
    Row { stripes: 1, secs, bytes_per_sec: size as f64 / secs, streams }
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let udp = udp_flow_run(fast);
    let mut t = vec![vec![
        "stripes".to_string(),
        "seconds".to_string(),
        "throughput".to_string(),
        "scaling".to_string(),
    ]];
    let base = rows[0].bytes_per_sec;
    for r in &rows {
        t.push(vec![
            r.stripes.to_string(),
            format!("{:.2}", r.secs),
            table::fmt_bps(r.bytes_per_sec * 8.0),
            format!("{:.1}x", r.bytes_per_sec / base),
        ]);
    }
    t.push(vec![
        "udp x1".to_string(),
        format!("{:.2}", udp.secs),
        table::fmt_bps(udp.bytes_per_sec * 8.0),
        format!("{:.1}x", udp.bytes_per_sec / base),
    ]);
    format!(
        "{}(per-stripe NIC limited to {}; ideal scaling = stripe count; udp x1 = one direct \
         reliable-UDP flow, no stripe throttle — CPU-bound, the crossover's other contender)\n",
        table::render(&t),
        table::fmt_bps(STRIPE_RATE * 8.0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_udp_flow_moves_the_payload() {
        let _serial = crate::experiments::common::bench_lock();
        let row = udp_flow_run(true);
        assert!(row.bytes_per_sec > 0.0);
        assert!(row.streams >= 1, "usage should record the UDP data connection");
    }

    #[test]
    fn striping_scales_throughput() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        let one = rows.iter().find(|r| r.stripes == 1).expect("1-stripe row");
        let four = rows.iter().find(|r| r.stripes == 4).expect("4-stripe row");
        assert_eq!(four.streams, 4, "receiver should see 4 stripe connections");
        assert!(
            four.bytes_per_sec > 1.7 * one.bytes_per_sec,
            "4 stripes {:.2e} (streams {}) should scale vs 1 stripe {:.2e}",
            four.bytes_per_sec,
            four.streams,
            one.bytes_per_sec
        );
    }
}
