//! E9 — Fig 6: Globus Online restarts failed transfers "from the last
//! checkpoint" using the stored short-term credential. Measured with the
//! fault injector; the ablation compares checkpoint-restart against
//! restart-from-scratch.

use crate::experiments::common::NOW;
use crate::table;
use ig_client::TransferOpts;
use ig_gcmu::InstallOptions;
use ig_gol::{GlobusOnline, TransferRequest};
use ig_pki::time::Clock;
use ig_server::{FaultInjector, UserContext};
use std::sync::Arc;

/// One measured point.
pub struct Row {
    /// Where the fault hit, as a fraction of the file.
    pub fault_at: f64,
    /// Attempts used.
    pub attempts: u32,
    /// Completed?
    pub completed: bool,
    /// Bytes delivered with checkpoint restart.
    pub delivered_with_restart: u64,
    /// Bytes a from-scratch retry would deliver (file + wasted prefix).
    pub delivered_from_scratch: u64,
    /// Savings fraction.
    pub saved_fraction: f64,
}

/// Run the sweep.
pub fn run(fast: bool) -> Vec<Row> {
    let size: usize = if fast { 120_000 } else { 600_000 };
    let mut rows = Vec::new();
    for (i, frac) in [0.25f64, 0.5, 0.75].iter().enumerate() {
        let fault = FaultInjector::after_bytes((size as f64 * frac) as u64);
        let a = InstallOptions::new("e9-src.example.org")
            .account("alice", "pw")
            .clock(Clock::Fixed(NOW))
            .seed(0xE9_00 + i as u64)
            .fault(Arc::clone(&fault))
            .install()
            .expect("install src");
        let b = InstallOptions::new("e9-dst.example.org")
            .account("alice", "pw")
            .clock(Clock::Fixed(NOW))
            .seed(0xE9_50 + i as u64)
            .install()
            .expect("install dst");
        let root = UserContext::superuser();
        let data: Vec<u8> = (0..size as u32).map(|x| (x % 251) as u8).collect();
        a.dsi.write(&root, "/home/alice/f.bin", 0, &data).expect("stage");
        let go = GlobusOnline::new(Clock::Fixed(NOW), 0xE9_100 + i as u64 * 100);
        go.register_gcmu(&a);
        go.register_gcmu(&b);
        go.activate_with_password("u", "e9-src.example.org", "alice", "pw", 3600)
            .expect("activate src");
        go.activate_with_password("u", "e9-dst.example.org", "alice", "pw", 3600)
            .expect("activate dst");
        let result = go
            .submit(
                "u",
                &TransferRequest {
                    src_endpoint: "e9-src.example.org".into(),
                    src_path: "/home/alice/f.bin".into(),
                    dst_endpoint: "e9-dst.example.org".into(),
                    dst_path: "/home/alice/f.bin".into(),
                    max_retries: 3,
                    retry: None,
                    opts: Some(TransferOpts::default().parallel(2).block(8 * 1024)),
                },
            )
            .expect("managed transfer");
        // Checkpoint restart delivers ~size bytes total; a from-scratch
        // retry would deliver the wasted prefix plus the whole file.
        let wasted_prefix = (size as f64 * frac) as u64;
        let from_scratch = size as u64 + wasted_prefix;
        let with_restart = result.bytes_on_wire.max(size as u64);
        rows.push(Row {
            fault_at: *frac,
            attempts: result.attempts,
            completed: result.completed,
            delivered_with_restart: with_restart,
            delivered_from_scratch: from_scratch,
            saved_fraction: 1.0 - with_restart as f64 / from_scratch as f64,
        });
        a.shutdown();
        b.shutdown();
    }
    rows
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "fault at".to_string(),
        "attempts".to_string(),
        "completed".to_string(),
        "bytes (checkpoint restart)".to_string(),
        "bytes (from scratch)".to_string(),
        "saved".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            format!("{:.0}%", r.fault_at * 100.0),
            r.attempts.to_string(),
            r.completed.to_string(),
            table::fmt_bytes(r.delivered_with_restart),
            table::fmt_bytes(r.delivered_from_scratch),
            format!("{:.0}%", r.saved_fraction * 100.0),
        ]);
    }
    format!(
        "{}(one injected crash per run; GO reauthenticates with the stored short-term cert and resumes)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_completes_and_saves_bytes() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        for r in &rows {
            assert!(r.completed, "fault at {:.0}% did not recover", r.fault_at * 100.0);
            assert_eq!(r.attempts, 2);
            assert!(
                r.saved_fraction > 0.1,
                "restart at {:.0}% should save bytes (saved {:.2})",
                r.fault_at * 100.0,
                r.saved_fraction
            );
        }
        // Later faults waste more in the from-scratch baseline → larger
        // savings from checkpointing.
        assert!(rows[2].saved_fraction > rows[0].saved_fraction);
    }
}
