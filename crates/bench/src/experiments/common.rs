//! Shared scaffolding for measured experiments.

use ig_client::ClientSession;
use ig_gcmu::{GcmuEndpoint, InstallOptions};
use ig_pki::time::Clock;
use ig_server::UserContext;

/// Fixed simulated "now" for all measured experiments.
pub const NOW: u64 = 2_100_000_000;

/// Install a GCMU endpoint with one `alice` account.
pub fn endpoint(name: &str, seed: u64) -> GcmuEndpoint {
    InstallOptions::new(name)
        .account("alice", "benchpw")
        .clock(Clock::Fixed(NOW))
        .seed(seed)
        .install()
        .expect("install")
}

/// Install + customize.
pub fn endpoint_with(
    name: &str,
    seed: u64,
    f: impl FnOnce(InstallOptions) -> InstallOptions,
) -> GcmuEndpoint {
    f(InstallOptions::new(name)
        .account("alice", "benchpw")
        .clock(Clock::Fixed(NOW))
        .seed(seed))
    .install()
    .expect("install")
}

/// Logon and open an authenticated session.
pub fn session(ep: &GcmuEndpoint, seed: u64) -> ClientSession {
    let logon = ep.logon("alice", "benchpw", 3600, seed).expect("logon");
    let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, seed + 1))
        .expect("connect");
    s.login().expect("login");
    s
}

/// Stage a deterministic payload at `/home/alice/<file>`.
pub fn stage(ep: &GcmuEndpoint, file: &str, len: usize) -> Vec<u8> {
    let data: Vec<u8> = (0..len as u64).map(|i| (i.wrapping_mul(0x9e37) % 251) as u8).collect();
    let root = UserContext::superuser();
    ep.dsi
        .write(&root, &format!("/home/alice/{file}"), 0, &data)
        .expect("stage");
    data
}

/// Serializes timing-sensitive experiments: on small hosts (this CI box
/// has one core) concurrent measured experiments corrupt each other's
/// wall-clock numbers.
pub fn bench_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Wall-clock a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffolding_works() {
        let ep = endpoint("bench-common.example.org", 9001);
        let data = stage(&ep, "probe.bin", 1000);
        assert_eq!(data.len(), 1000);
        let mut s = session(&ep, 9002);
        assert_eq!(s.size("/home/alice/probe.bin").unwrap(), 1000);
        let (_, secs) = timed(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        assert!(secs >= 0.009);
        s.quit().unwrap();
        ep.shutdown();
    }
}
