//! E3 — §IIC: "Both cryptographic confidentiality and integrity
//! protection are supported on the data channel but are not enabled by
//! default because of cost. (An order of magnitude slowdown is not
//! unusual on high-speed links.)"
//!
//! Measured for real: a loopback GET through the full stack at
//! `PROT C` / `S` / `P`.

use crate::experiments::common::{endpoint, session, stage};
use crate::table;
use ig_client::{transfer, TransferOpts};
use ig_gsi::ProtectionLevel;

/// One measured point.
pub struct Row {
    /// Protection level name.
    pub level: &'static str,
    /// Measured throughput, bytes/second.
    pub bytes_per_sec: f64,
    /// Slowdown vs `PROT C`.
    pub slowdown: f64,
}

/// Run the measurement. `fast` shrinks the payload.
pub fn run(fast: bool) -> Vec<Row> {
    let size = if fast { 8 << 20 } else { 64 << 20 };
    let ep = endpoint("e3-prot.example.org", 0xE3);
    stage(&ep, "payload.bin", size);
    let mut s = session(&ep, 0xE3_10);
    let mut rows: Vec<Row> = Vec::new();
    let mut clear_rate = 0.0f64;
    for (level, name) in [
        (ProtectionLevel::Clear, "PROT C (clear)"),
        (ProtectionLevel::Safe, "PROT S (integrity)"),
        (ProtectionLevel::Private, "PROT P (private)"),
    ] {
        s.set_prot(level).expect("prot");
        // Warm once, measure once (the payload dwarfs setup).
        let start = std::time::Instant::now();
        let data = transfer::get_bytes(
            &mut s,
            "/home/alice/payload.bin",
            &TransferOpts::default().parallel(2).block(256 * 1024),
        )
        .expect("get");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(data.len(), size);
        let rate = size as f64 / secs;
        if level == ProtectionLevel::Clear {
            clear_rate = rate;
        }
        rows.push(Row { level: name, bytes_per_sec: rate, slowdown: clear_rate / rate });
    }
    let _ = s.quit();
    ep.shutdown();
    rows
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "level".to_string(),
        "throughput".to_string(),
        "slowdown vs C".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.level.to_string(),
            table::fmt_bps(r.bytes_per_sec * 8.0),
            format!("{:.1}x", r.slowdown),
        ]);
    }
    format!(
        "{}(paper: \"an order of magnitude slowdown is not unusual\" for PROT P)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_is_substantially_slower_than_clear() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        assert_eq!(rows.len(), 3);
        let clear = &rows[0];
        let private = &rows[2];
        assert!(
            private.slowdown > 1.5,
            "PROT P should cost real throughput: C={:.2e} B/s, P={:.2e} B/s",
            clear.bytes_per_sec,
            private.bytes_per_sec
        );
        // Integrity-only sits between.
        assert!(rows[1].slowdown >= 1.0);
    }
}
