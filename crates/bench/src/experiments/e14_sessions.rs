//! E14 — session scalability: what one control-plane core costs per
//! *idle* session, and what command latency looks like once a herd of
//! them sits on the server while real transfers run.
//!
//! The claim under test: the epoll reactor core holds an order of
//! magnitude more idle control sessions than thread-per-session at a
//! fraction of the resident memory, with p99 command RTT staying within
//! 2x of a warm 100-session baseline. Each core variant is measured the
//! same way:
//!
//! 1. warm p99 NOOP RTT with ~100 sessions held,
//! 2. grow the herd to the target, reading `/proc/self/statm` before
//!    and after for a per-idle-session resident delta,
//! 3. p99 NOOP RTT again while the full herd sits there **and** 50
//!    authenticated PUT transfers run concurrently.
//!
//! When `IG_E14_EXE` points at the `report` binary (the binary sets it
//! itself), the herd is held by a helper subprocess (`--e14-hold`) so
//! client-side socket state stays out of this process's RSS *and* out
//! of its file-descriptor budget — that is what lets the full run reach
//! 10k reactor sessions under a 20k `RLIMIT_NOFILE`. Without the
//! helper (in-crate tests), the herd is held in-process at smaller
//! counts and the RSS delta includes the client ends of the sockets —
//! the same bias for both cores, so the ratio survives.

use crate::experiments::common;
use crate::table;
use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore};
use ig_xio::{Link, TcpLink};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable naming an executable that understands
/// `--e14-hold <addr> <count>` (the `report` binary names itself).
pub const HELPER_ENV: &str = "IG_E14_EXE";

const BASELINE_SESSIONS: usize = 100;
const ACTIVE_TRANSFERS: usize = 50;
const PUT_LEN: usize = 64 * 1024;

/// One measured core variant.
pub struct Row {
    /// Core label (`threaded` / `reactor`).
    pub label: &'static str,
    /// Idle sessions actually held at measurement time.
    pub held: usize,
    /// Resident-memory delta per idle session, bytes (`None` when
    /// `/proc/self/statm` is unavailable).
    pub rss_per_session: Option<f64>,
    /// p99 NOOP RTT with [`BASELINE_SESSIONS`] held.
    pub p99_warm: Duration,
    /// p99 NOOP RTT with the full herd held and the PUTs running.
    pub p99_loaded: Duration,
}

struct World {
    server: Arc<GridFtpServer>,
    server_obs: Arc<ig_obs::Obs>,
    user_cred: Credential,
    trust: TrustStore,
}

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn world(core: ServerCore, seed: u64) -> World {
    let server_obs = ig_obs::Obs::new("e14-server");
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca = CertificateAuthority::create(&mut rng, dn("/O=E14 CA"), 512, 0, common::NOW * 10)
        .expect("ca");
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).expect("host keys");
    let host_cert = ca
        .issue(
            dn("/CN=e14.example.org"),
            &host_keys.public,
            Validity::starting_at(0, common::NOW * 10),
            vec![],
        )
        .expect("host cert");
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).expect("user keys");
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, common::NOW * 10),
            vec![],
        )
        .expect("user cert");
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let cfg = ServerConfig::new(
        "e14.example.org",
        Credential::new(vec![host_cert], host_keys.private).expect("host cred"),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::new(MemDsi::new()) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(common::NOW))
    .with_stall_timeout(Duration::from_secs(10))
    .with_obs(Arc::clone(&server_obs))
    .with_core(core);
    World {
        server: GridFtpServer::start(cfg, seed).expect("server"),
        server_obs,
        user_cred: Credential::new(vec![user_cert], user_keys.private).expect("user cred"),
        trust,
    }
}

/// A held herd of idle sessions: client ends either live in this
/// process or in a `--e14-hold` helper subprocess.
enum Holder {
    InProc(Vec<TcpLink>),
    Remote(std::process::Child),
}

impl Holder {
    fn release(self) {
        match self {
            Holder::InProc(links) => drop(links),
            Holder::Remote(mut child) => {
                // Closing stdin tells the helper to hang up its herd.
                drop(child.stdin.take());
                let _ = child.wait();
            }
        }
    }
}

/// Connect `n` idle sessions to `addr` (banner consumed, then silence).
/// Returns the holder and how many actually connected.
fn hold(addr: std::net::SocketAddr, n: usize) -> (Holder, usize) {
    if let Ok(exe) = std::env::var(HELPER_ENV) {
        match hold_remote(&exe, addr, n) {
            Ok(pair) => return pair,
            Err(e) => eprintln!("e14: helper failed ({e}); holding in-process"),
        }
    }
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let mut link = match TcpLink::connect(addr) {
            Ok(l) => l,
            Err(_) => break, // fd budget: hold what we got
        };
        if !link.recv().map(|b| b.starts_with(b"220")).unwrap_or(false) {
            break;
        }
        links.push(link);
    }
    let held = links.len();
    (Holder::InProc(links), held)
}

fn hold_remote(
    exe: &str,
    addr: std::net::SocketAddr,
    n: usize,
) -> std::io::Result<(Holder, usize)> {
    let mut child = std::process::Command::new(exe)
        .arg("--e14-hold")
        .arg(addr.to_string())
        .arg(n.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("helper stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line)?;
    let held: usize = line
        .trim()
        .strip_prefix("HELD ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            let _ = child.kill();
            std::io::Error::other(format!("bad helper greeting {line:?}"))
        })?;
    Ok((Holder::Remote(child), held))
}

/// The `--e14-hold` helper body: connect, report, sit, hang up on EOF.
/// Called by the `report` binary's `main` — never returns.
pub fn hold_main(addr: &str, count: &str) -> ! {
    let addr: std::net::SocketAddr = addr.parse().expect("e14-hold addr");
    let count: usize = count.parse().expect("e14-hold count");
    let mut links = Vec::with_capacity(count);
    for _ in 0..count {
        let mut link = match TcpLink::connect(addr) {
            Ok(l) => l,
            Err(_) => break,
        };
        if !link.recv().map(|b| b.starts_with(b"220")).unwrap_or(false) {
            break;
        }
        links.push(link);
    }
    println!("HELD {}", links.len());
    std::io::stdout().flush().expect("flush");
    // Sit until the parent closes our stdin.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    drop(links);
    std::process::exit(0);
}

/// p99 of `probes` NOOP round trips on a fresh pre-auth connection.
fn p99_noop(addr: std::net::SocketAddr, probes: usize) -> Duration {
    let mut link = TcpLink::connect(addr).expect("probe connect");
    let banner = link.recv().expect("probe banner");
    assert!(banner.starts_with(b"220"));
    let mut rtts = Vec::with_capacity(probes);
    for _ in 0..probes {
        let t0 = Instant::now();
        link.send(b"NOOP").expect("probe send");
        let reply = link.recv().expect("probe recv");
        rtts.push(t0.elapsed());
        assert!(reply.starts_with(b"200"), "NOOP got {:?}", String::from_utf8_lossy(&reply));
    }
    link.send(b"QUIT").expect("probe quit");
    let _ = link.recv();
    rtts.sort_unstable();
    rtts[rtts.len() * 99 / 100]
}

fn login(w: &World, seed: u64) -> ClientSession {
    let cfg = ClientConfig::new(w.user_cred.clone(), w.trust.clone())
        .with_clock(Clock::Fixed(common::NOW))
        .with_seed(seed)
        .no_delegation()
        .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(30))));
    let link: Box<dyn Link> =
        Box::new(TcpLink::connect(w.server.addr().to_socket_addr()).expect("login connect"));
    let mut session = ClientSession::from_link(link, cfg).expect("handshake");
    session.login().expect("login");
    session.set_dcau(DcauMode::None).expect("dcau");
    session
}

fn wait_sessions_at_least(w: &World, n: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while w.server_obs.metrics().gauge_value("server.sessions_active") < n {
        assert!(Instant::now() < deadline, "server never registered {n} sessions");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_sessions_zero(w: &World) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while w.server_obs.metrics().gauge_value("server.sessions_active") != 0.0 {
        if Instant::now() >= deadline {
            return; // informational teardown; don't wedge the report
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Measure one core at one herd size.
fn measure(core: ServerCore, target: usize, actives: usize, probes: usize) -> Row {
    let w = world(core, 0xE14 + target as u64);
    let addr = w.server.addr().to_socket_addr();

    // Warm baseline: ~100 held sessions, quiet server.
    let (warm_holder, warm_held) = hold(addr, BASELINE_SESSIONS.min(target));
    wait_sessions_at_least(&w, warm_held as f64);
    let p99_warm = p99_noop(addr, probes);

    // Grow the herd, bracketing with resident-memory reads.
    let rss0 = ig_obs::process::resident_bytes();
    let grow = target.saturating_sub(warm_held);
    let (herd_holder, grown) = hold(addr, grow);
    let held = warm_held + grown;
    wait_sessions_at_least(&w, held as f64);
    let rss_per_session = match (rss0, ig_obs::process::resident_bytes()) {
        (Some(a), Some(b)) if grown > 0 => {
            Some(b.saturating_sub(a) as f64 / grown as f64)
        }
        _ => None,
    };

    // Active load: authenticated PUTs in their own threads, racing the
    // loaded RTT probe. Logins are serialized first (they are CPU-bound
    // RSA work that would otherwise pollute the RTT measurement window
    // far more than the transfers do).
    let sessions: Vec<ClientSession> =
        (0..actives).map(|i| login(&w, 0x5E55 + i as u64)).collect();
    let threads: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            std::thread::spawn(move || {
                let data: Vec<u8> =
                    (0..PUT_LEN as u32).map(|b| (b * 11 % 241) as u8).collect();
                let opts = TransferOpts::default()
                    .block(8 * 1024)
                    .timeout(Some(Duration::from_secs(30)));
                let sent = transfer::put_bytes(
                    &mut s,
                    &format!("/home/alice/e14-{i}.bin"),
                    &data,
                    &opts,
                )
                .expect("put");
                assert_eq!(sent, PUT_LEN as u64);
                s.quit().expect("quit");
            })
        })
        .collect();
    let p99_loaded = p99_noop(addr, probes);
    for t in threads {
        t.join().expect("active transfer");
    }

    warm_holder.release();
    herd_holder.release();
    w.server.shutdown();
    wait_sessions_zero(&w);

    Row { label: core.label(), held, rss_per_session, p99_warm, p99_loaded }
}

/// Herd targets. The reactor's full target is the 10k claim; threaded
/// is held an order of magnitude lower on purpose — ten thousand
/// blocking threads on a small CI box is a machine-DoS, and the paper
/// point is precisely that you should not need them.
fn targets(fast: bool) -> (usize, usize, usize) {
    if fast {
        (2_000, 200, 150) // reactor herd, threaded herd, RTT probes
    } else {
        (10_000, 1_000, 400)
    }
}

/// Run both cores; rows ordered threaded-first (baseline, then the
/// tentpole). Linux-only servers mean this experiment is Linux-only in
/// its reactor half; elsewhere it reports the threaded row alone.
pub fn run(fast: bool) -> Vec<Row> {
    let _guard = common::bench_lock();
    let (reactor_target, threaded_target, probes) = targets(fast);
    let mut rows =
        vec![measure(ServerCore::Threaded, threaded_target, ACTIVE_TRANSFERS, probes)];
    if cfg!(target_os = "linux") {
        rows.push(measure(ServerCore::Reactor, reactor_target, ACTIVE_TRANSFERS, probes));
    }
    rows
}

fn fmt_rss(r: Option<f64>) -> String {
    match r {
        Some(b) => format!("{:.1} KiB", b / 1024.0),
        None => "n/a".into(),
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

/// Render the table plus the claim note.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "core".to_string(),
        "idle sessions held".to_string(),
        "RSS per idle session".to_string(),
        format!("p99 NOOP ({BASELINE_SESSIONS} held)"),
        format!("p99 NOOP (herd + {ACTIVE_TRANSFERS} PUTs)"),
    ]];
    for r in &rows {
        t.push(vec![
            r.label.to_string(),
            r.held.to_string(),
            fmt_rss(r.rss_per_session),
            fmt_ms(r.p99_warm),
            fmt_ms(r.p99_loaded),
        ]);
    }
    let ratio = match (rows.first(), rows.get(1)) {
        (Some(th), Some(re)) => match (th.rss_per_session, re.rss_per_session) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.1}x", a / b),
            _ => "n/a".into(),
        },
        _ => "n/a (reactor core is Linux-only)".into(),
    };
    format!(
        "{}(claim: the reactor core holds 10k+ idle control sessions on one \
         thread at kilobytes per session, p99 command RTT within 2x of the \
         {BASELINE_SESSIONS}-session baseline; threaded/reactor memory ratio \
         this run: {ratio}; herds: {})\n",
        table::render(&t),
        if fast { "fast (2k reactor / 200 threaded)" } else { "full (10k reactor / 1k threaded)" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-herd structural check: both cores measured the same way,
    /// the reactor holds its whole (reduced) herd, and the loaded p99
    /// stays inside a deliberately loose absolute budget — re-measured
    /// (bounded) so a transient CI load spike cannot flake tier-1. The
    /// real sizes run from the `report` binary / `scripts/ci.sh`.
    #[test]
    fn herd_measured_on_both_cores() {
        let _guard = common::bench_lock();
        let mut cores = vec![(ServerCore::Threaded, 60usize)];
        if cfg!(target_os = "linux") {
            cores.push((ServerCore::Reactor, 300));
        }
        for (core, target) in cores {
            ig_xio::test_support::retry_measurement(2, core.label(), || {
                let r = measure(core, target, 4, 50);
                assert!(r.held > 0, "{} held nothing", r.label);
                assert!(r.p99_warm > Duration::ZERO);
                if r.label == "reactor" {
                    assert_eq!(r.held, target, "reactor shed part of its herd");
                }
                if r.p99_loaded < Duration::from_secs(5) {
                    Ok(())
                } else {
                    Err(format!("{} loaded p99 {:?} over the smoke budget", r.label, r.p99_loaded))
                }
            });
        }
    }

    #[test]
    fn note_carries_the_claim() {
        // Render path only — reuse tiny herds via the private pieces.
        let rows = [Row {
            label: "reactor",
            held: 2000,
            rss_per_session: Some(4096.0),
            p99_warm: Duration::from_micros(800),
            p99_loaded: Duration::from_millis(2),
        }];
        let mut t = vec![vec!["core".into(), "held".into()]];
        for r in &rows {
            t.push(vec![r.label.into(), r.held.to_string()]);
        }
        let rendered = format!("{}(claim: the reactor core holds 10k+)\n", table::render(&t));
        let (_, parsed, notes) = table::parse_rendered(&rendered);
        assert_eq!(parsed.len(), 1);
        assert!(notes.iter().any(|n| n.contains("claim: the reactor core holds 10k+")));
    }
}
