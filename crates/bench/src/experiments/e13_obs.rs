//! E13 — observability overhead: what the `ObsLink` timing driver costs
//! on the data path.
//!
//! The observability layer's performance contract: the per-record
//! instrumentation cost is **fixed** — two clock reads, one histogram
//! record and one counter add per hop (see `ig_xio::obs`) — and stays
//! within **3%** of a tuned DTP block's wire time. The budget is stated
//! at the 64 KiB tuned block on a 10 Gbit/s path (52.4 µs/block, so 3%
//! = 1573 ns); the fixed cost measures in the low hundreds of
//! nanoseconds. Two measurements back this:
//!
//! * a **direct** measurement of the exact instrumentation sequence
//!   (deterministic, asserted by a unit test against the 1573 ns
//!   budget), and
//! * an **A/B** bare-pipe vs `ObsLink` comparison (informational: an
//!   in-process pipe moves a record ~30× faster than a 10 Gbit/s wire,
//!   so the same nanoseconds read as a larger percentage here). The
//!   `obs_overhead` criterion group is the statistically rigorous
//!   mirror of the A/B side.

use crate::table;
use ig_xio::{pipe, Link, ObsLink};
use std::sync::Arc;

/// One measured link variant.
pub struct Row {
    /// Variant name.
    pub label: &'static str,
    /// Best-of-rounds nanoseconds per record (send + recv).
    pub ns_per_record: f64,
}

/// A/B record size: the large end of the tuner's range, so the pipe's
/// per-record time (~tens of µs) is comparable to a real wire block.
const RECORD: usize = 1024 * 1024;
const ROUNDS: usize = 5;

/// 3% of a 64 KiB block at 10 Gbit/s (65536 * 8 / 1e10 s = 52.4 µs).
const CLAIM_BUDGET_NS: f64 = 1_573.0;

fn records(fast: bool) -> usize {
    if fast {
        64
    } else {
        256
    }
}

/// Directly measure the fixed per-hop instrumentation cost: the exact
/// sequence `ObsLink::send`/`recv` wrap around the inner call — an
/// `Instant::now`, an `elapsed`, one histogram record, one counter add.
/// Best-of-rounds minimum; unlike the A/B comparison below this does not
/// subtract two large noisy numbers, so it is stable enough to assert on.
pub fn fixed_cost_ns(iters: usize) -> f64 {
    let obs = ig_obs::Obs::new("e13-cost");
    let h = obs.metrics().histogram("e13.hop_ns");
    let c = obs.metrics().counter("e13.hop_bytes");
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let t0 = std::time::Instant::now();
            h.record(t0.elapsed().as_nanos() as u64);
            c.add(RECORD as u64);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Push `n` records through a freshly built link pair; return the best
/// (minimum) per-record time over [`ROUNDS`] rounds — minima are far
/// more stable than means under scheduler noise.
fn measure<F>(n: usize, mk: F) -> f64
where
    F: Fn() -> (Box<dyn Link>, Box<dyn Link>),
{
    let buf = vec![0xabu8; RECORD];
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let (mut tx, mut rx) = mk();
        let start = std::time::Instant::now();
        for _ in 0..n {
            tx.send(&buf).expect("send");
            rx.recv().expect("recv");
        }
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// Measure the A/B pair plus the direct fixed cost; returns the rows,
/// the A/B overhead in percent (clamped at zero — minima can invert on
/// noise), and the fixed per-hop cost in nanoseconds.
pub fn run(fast: bool) -> (Vec<Row>, f64, f64) {
    let n = records(fast);
    let bare = measure(n, || {
        let (a, b) = pipe();
        (Box::new(a) as Box<dyn Link>, Box::new(b) as Box<dyn Link>)
    });
    let obs = ig_obs::Obs::new("e13");
    let instrumented = measure(n, || {
        let (a, b) = pipe();
        (
            Box::new(ObsLink::new(a, Arc::clone(&obs), "e13.dtp")) as Box<dyn Link>,
            Box::new(ObsLink::new(b, Arc::clone(&obs), "e13.dtp")) as Box<dyn Link>,
        )
    });
    let overhead_pct = ((instrumented - bare) / bare * 100.0).max(0.0);
    let fixed = fixed_cost_ns(if fast { 10_000 } else { 100_000 });
    let rows = vec![
        Row { label: "bare pipe link", ns_per_record: bare },
        Row { label: "ObsLink (latency histograms + byte counters)", ns_per_record: instrumented },
    ];
    (rows, overhead_pct, fixed)
}

/// Render the table plus the claim-vs-measured note.
pub fn table(fast: bool) -> String {
    let (rows, overhead_pct, fixed) = run(fast);
    let mut t = vec![vec![
        "data path".to_string(),
        "per 1 MiB record".to_string(),
        "throughput".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.label.to_string(),
            format!("{:.0} ns", r.ns_per_record),
            table::fmt_bps(RECORD as f64 * 8.0 / (r.ns_per_record * 1e-9)),
        ]);
    }
    format!(
        "{}(claim: instrumentation <= 3% of a 64 KiB block at 10 Gbit/s, \
         i.e. <= {CLAIM_BUDGET_NS:.0} ns/record; measured fixed cost: {fixed:.0} ns/hop; \
         in-memory pipe A/B overhead: {overhead_pct:.2}%)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_within_claim() {
        let (rows, _overhead_pct, _) = run(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ns_per_record.is_finite() && r.ns_per_record > 0.0);
        }
        // The enforceable side of the claim: the fixed per-hop cost must
        // fit the 3%-of-a-tuned-block budget. The A/B pipe comparison is
        // informational only — subtracting two allocator-noise-dominated
        // multi-microsecond numbers is not assertable in shared CI.
        // Re-measured (bounded) so a transient load spike on the CI box
        // cannot flake tier-1; a real regression fails every round.
        ig_xio::test_support::retry_measurement(3, "fixed instrumentation cost", || {
            let fixed = fixed_cost_ns(10_000);
            if fixed <= CLAIM_BUDGET_NS {
                Ok(())
            } else {
                Err(format!(
                    "fixed instrumentation cost {fixed:.0} ns/hop exceeds the \
                     {CLAIM_BUDGET_NS:.0} ns budget (3% of a 64 KiB block at 10 Gbit/s)"
                ))
            }
        });
    }

    #[test]
    fn note_carries_the_claim() {
        let rendered = table(true);
        let (_, rows, notes) = table::parse_rendered(&rendered);
        assert_eq!(rows.len(), 2);
        assert!(notes.iter().any(|n| n.contains("claim: instrumentation <= 3%")));
    }
}
