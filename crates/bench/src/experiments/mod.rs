//! The E1–E16 experiment implementations (see DESIGN.md §4).

pub mod common;
pub mod e10_oauth;
pub mod e11_myproxy;
pub mod e12_overheads;
pub mod e13_obs;
pub mod e14_sessions;
pub mod e15_fleet;
pub mod e16_drain;
pub mod e1_usage;
pub mod e2_wan;
pub mod e3_prot;
pub mod e4_small_files;
pub mod e5_striping;
pub mod e6_third_party;
pub mod e7_dcsc;
pub mod e8_setup;
pub mod e9_restart;
