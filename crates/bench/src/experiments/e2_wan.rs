//! E2 — the headline claim (§I, §VII): "GridFTP has been shown to
//! deliver multiple orders of magnitude higher throughput than do other
//! data transfer methods such as secure copy (SCP)."
//!
//! Simulated on the netsim WAN substrate (we have no 10 Gbps testbed):
//! 10 Gbps bottleneck, RTT and loss swept, 256 MiB payload.
//! SCP = one stream, 64 KiB window, cipher ceiling; FTP = one stream,
//! 256 KiB window; GridFTP = tuned buffers, N parallel streams.

use crate::table;
use ig_baselines::ftp::ftp_netsim_params;
use ig_baselines::scp::scp_netsim_params;
use ig_gol::tuning::{pick_transport, STRIPED_STREAMS, UDP_RATE_CEILING_BPS};
use ig_netsim::{parallel_throughput_bps, Bottleneck, CcAlgo, TcpParams};
use ig_xio::DataTransport;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point.
pub struct Row {
    /// RTT in milliseconds.
    pub rtt_ms: f64,
    /// Path loss probability.
    pub loss: f64,
    /// Throughputs in bits/s: scp, ftp, gridftp x1, x8, x16.
    pub scp: f64,
    /// Plain FTP.
    pub ftp: f64,
    /// GridFTP single stream.
    pub gridftp_1: f64,
    /// GridFTP 8 streams.
    pub gridftp_8: f64,
    /// GridFTP 16 streams.
    pub gridftp_16: f64,
}

/// Run the sweep. `fast` trims the grid.
pub fn run(fast: bool) -> Vec<Row> {
    let bytes: u64 = if fast { 64 << 20 } else { 256 << 20 };
    let rtts = if fast { vec![0.01, 0.1] } else { vec![0.001, 0.01, 0.05, 0.1] };
    let losses = if fast { vec![0.0, 1e-4] } else { vec![0.0, 1e-5, 1e-4, 1e-3] };
    let mut rows = Vec::new();
    for &rtt in &rtts {
        for &loss in &losses {
            let link = Bottleneck::new(1e10, rtt, loss);
            let mut rng = StdRng::seed_from_u64(0xE2 ^ (rtt * 1e6) as u64 ^ (loss * 1e9) as u64);
            let scp = parallel_throughput_bps(&link, bytes, 1, scp_netsim_params(), &mut rng);
            let ftp = parallel_throughput_bps(&link, bytes, 1, ftp_netsim_params(), &mut rng);
            let g1 = parallel_throughput_bps(&link, bytes, 1, TcpParams::tuned(), &mut rng);
            let g8 = parallel_throughput_bps(&link, bytes, 8, TcpParams::tuned(), &mut rng);
            let g16 = parallel_throughput_bps(&link, bytes, 16, TcpParams::tuned(), &mut rng);
            rows.push(Row {
                rtt_ms: rtt * 1e3,
                loss,
                scp,
                ftp,
                gridftp_1: g1,
                gridftp_8: g8,
                gridftp_16: g16,
            });
        }
    }
    rows
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "RTT".to_string(),
        "loss".to_string(),
        "scp".to_string(),
        "ftp".to_string(),
        "gridftp x1".to_string(),
        "gridftp x8".to_string(),
        "gridftp x16".to_string(),
        "x16/scp".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            format!("{:.0} ms", r.rtt_ms),
            format!("{:.0e}", r.loss),
            table::fmt_bps(r.scp),
            table::fmt_bps(r.ftp),
            table::fmt_bps(r.gridftp_1),
            table::fmt_bps(r.gridftp_8),
            table::fmt_bps(r.gridftp_16),
            format!("{:.0}x", r.gridftp_16 / r.scp),
        ]);
    }
    format!(
        "{}(10 Gbit/s bottleneck; scp = 64 KiB window + cipher ceiling, single stream)\n",
        table::render(&t)
    )
}

/// One cell of the transport-crossover heatmap: the three contenders
/// measured in the packet simulator, plus the tuner's pick and whether
/// the simulator agrees with it.
pub struct CrossRow {
    /// RTT in milliseconds.
    pub rtt_ms: f64,
    /// Path loss probability.
    pub loss: f64,
    /// Striped Reno TCP, `STRIPED_STREAMS` streams (the legacy default).
    pub reno_striped: f64,
    /// Striped CUBIC TCP, same stream count.
    pub cubic_striped: f64,
    /// One BBR reliable-UDP flow, capped at the userspace datagram
    /// ceiling (`UDP_RATE_CEILING_BPS`).
    pub bbr_udp_1: f64,
    /// What `ig_gol::tuning::pick_transport` chose for this cell.
    pub planned: DataTransport,
    /// Did the simulator's winner match the tuner's pick?
    pub agrees: bool,
}

/// The crossover sweep: {RTT × loss} × {Reno×N, CUBIC×N, BBR-UDP×1} on a
/// 10 Gbit/s bottleneck, with the closed-form tuner judged against the
/// simulator in every cell. `fast` keeps only the two corners the ci
/// smoke gate asserts on.
pub fn crossover_run(fast: bool) -> Vec<CrossRow> {
    let bytes: u64 = if fast { 64 << 20 } else { 256 << 20 };
    let rtts = if fast { vec![0.0002, 0.1] } else { vec![0.0002, 0.01, 0.05, 0.1] };
    let losses = if fast { vec![1e-6, 1e-3] } else { vec![1e-6, 1e-5, 1e-4, 1e-3] };
    let bw = 1e10;
    let mut rows = Vec::new();
    for &rtt in &rtts {
        for &loss in &losses {
            let link = Bottleneck::new(bw, rtt, loss);
            let seed = 0xE2C ^ (rtt * 1e6) as u64 ^ (loss * 1e9) as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let reno = parallel_throughput_bps(
                &link,
                bytes,
                STRIPED_STREAMS,
                TcpParams::tuned(),
                &mut rng,
            );
            let cubic = parallel_throughput_bps(
                &link,
                bytes,
                STRIPED_STREAMS,
                TcpParams::tuned().with_cc(CcAlgo::Cubic),
                &mut rng,
            );
            // The reliable-UDP flow modelled in netsim: one BBR stream
            // behind the userspace per-datagram CPU ceiling.
            let bbr_udp = parallel_throughput_bps(
                &link,
                bytes,
                1,
                TcpParams::tuned().with_cc(CcAlgo::Bbr).with_rate_cap(UDP_RATE_CEILING_BPS),
                &mut rng,
            );
            let plan = pick_transport(bw, rtt, loss);
            let sim_winner = if bbr_udp > reno.max(cubic) {
                DataTransport::Udp
            } else {
                DataTransport::Tcp
            };
            rows.push(CrossRow {
                rtt_ms: rtt * 1e3,
                loss,
                reno_striped: reno,
                cubic_striped: cubic,
                bbr_udp_1: bbr_udp,
                planned: plan.transport,
                agrees: plan.transport == sim_winner,
            });
        }
    }
    rows
}

/// Render the crossover heatmap.
pub fn crossover_table(fast: bool) -> String {
    let rows = crossover_run(fast);
    let mut t = vec![vec![
        "RTT".to_string(),
        "loss".to_string(),
        format!("reno x{STRIPED_STREAMS}"),
        format!("cubic x{STRIPED_STREAMS}"),
        "bbr-udp x1".to_string(),
        "tuner picks".to_string(),
        "sim agrees".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            format!("{:.1} ms", r.rtt_ms),
            format!("{:.0e}", r.loss),
            table::fmt_bps(r.reno_striped),
            table::fmt_bps(r.cubic_striped),
            table::fmt_bps(r.bbr_udp_1),
            r.planned.label().to_string(),
            if r.agrees { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "{}(10 Gbit/s bottleneck; bbr-udp capped at the {:.1} Gbit/s userspace datagram ceiling; \
         'NO' cells sit in the near-crossover band where a finite transfer's slow-start outruns \
         the asymptotic Mathis model the tuner uses)\n",
        table::render(&t),
        UDP_RATE_CEILING_BPS / 1e9,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gridftp_beats_scp_by_orders_of_magnitude_on_the_wan() {
        let rows = run(true);
        // At 100 ms RTT the window cap strangles scp; parallel tuned
        // GridFTP should be >= 100x (the paper says "multiple orders of
        // magnitude").
        let wan = rows
            .iter()
            .find(|r| r.rtt_ms >= 99.0 && r.loss == 0.0)
            .expect("wan row");
        assert!(
            wan.gridftp_16 / wan.scp > 100.0,
            "x16/scp = {:.1}",
            wan.gridftp_16 / wan.scp
        );
        // Parallelism matters under loss.
        let lossy = rows
            .iter()
            .find(|r| r.rtt_ms >= 99.0 && r.loss > 0.0)
            .expect("lossy row");
        assert!(lossy.gridftp_16 > 2.0 * lossy.gridftp_1);
        // FTP sits between scp and tuned GridFTP on the WAN.
        assert!(wan.ftp > wan.scp);
        assert!(wan.gridftp_16 > wan.ftp);
    }

    #[test]
    fn crossover_corners_go_both_ways_and_the_tuner_agrees() {
        let rows = crossover_run(true);
        // Clean LAN corner: striped TCP saturates the path, the UDP flow
        // is pinned at its CPU ceiling.
        let lan = rows
            .iter()
            .find(|r| r.rtt_ms < 1.0 && r.loss < 1e-4)
            .expect("lan corner");
        assert!(
            lan.reno_striped > lan.bbr_udp_1,
            "lan: reno {:.2e} must beat bbr-udp {:.2e}",
            lan.reno_striped,
            lan.bbr_udp_1
        );
        assert_eq!(lan.planned, DataTransport::Tcp);
        assert!(lan.agrees, "tuner and simulator must agree on the LAN corner");
        // Lossy high-BDP corner: the Mathis ceiling collapses striped
        // TCP; the loss-agnostic BBR-UDP flow wins by a wide margin.
        let wan = rows
            .iter()
            .find(|r| r.rtt_ms >= 99.0 && r.loss >= 1e-3)
            .expect("wan corner");
        assert!(
            wan.bbr_udp_1 > 2.0 * wan.reno_striped.max(wan.cubic_striped),
            "wan: bbr-udp {:.2e} must dominate reno {:.2e} / cubic {:.2e}",
            wan.bbr_udp_1,
            wan.reno_striped,
            wan.cubic_striped
        );
        assert_eq!(wan.planned, DataTransport::Udp);
        assert!(wan.agrees, "tuner and simulator must agree on the WAN corner");
    }

    #[test]
    fn cubic_outpaces_reno_on_the_long_fat_pipe() {
        // CUBIC's window growth is RTT-independent — on the high-BDP
        // lossy path it should recover faster than Reno's linear probe.
        let rows = crossover_run(true);
        let wan = rows
            .iter()
            .find(|r| r.rtt_ms >= 99.0 && r.loss >= 1e-3)
            .expect("wan corner");
        assert!(
            wan.cubic_striped >= wan.reno_striped,
            "cubic {:.2e} vs reno {:.2e}",
            wan.cubic_striped,
            wan.reno_striped
        );
    }

    #[test]
    fn lan_differences_are_modest() {
        // On a 1 ms LAN everything is fast — the win is a WAN story.
        let rows = run(false);
        let lan = rows.iter().find(|r| r.rtt_ms <= 1.1 && r.loss == 0.0).expect("lan row");
        assert!(lan.gridftp_16 / lan.scp < 100.0);
    }
}
