//! E4 — the lots-of-small-files optimizations (§II-A, §VII): session
//! reuse, concurrency, control-channel **command pipelining** (`PIPE`
//! windows of `PORT`+`RETR` pairs), and **streamed directory transfer**
//! (`ERET DIR`: the whole tree over one MODE E data-channel setup).
//!
//! Measured: N 4 KiB files fetched
//! (a) the naive way — one fresh authenticated session per file (what a
//!     scripted `scp`/one-shot client does: full handshake per file),
//! (b) one session, per-file round-trips — reuse amortizes login, but
//!     every file still pays `PASV`+`RETR` turns and a fresh
//!     DCAU-authenticated data connection,
//! (c) concurrent — k sessions splitting the batch,
//! (d) one session with a `PIPE` window — command latency overlaps,
//!     data connections still per-file,
//! (e) streamed dir — one `ERET DIR` moves the tree over a single data
//!     connection: no per-file commands, no per-file DCAU.

use crate::experiments::common::{endpoint, session, stage, timed, NOW};
use crate::table;
use ig_client::{transfer, ClientSession, TransferOpts};
use ig_server::{Dsi, MemDsi};
use std::sync::Arc;

/// One measured point.
pub struct Row {
    /// Strategy label.
    pub strategy: String,
    /// Files moved.
    pub files: usize,
    /// Seconds.
    pub secs: f64,
    /// Files per second.
    pub files_per_sec: f64,
}

/// Run the measurement.
pub fn run(fast: bool) -> Vec<Row> {
    let files = if fast { 60 } else { 200 };
    let size = 4 * 1024;
    let ep = endpoint("e4-small.example.org", 0xE4);
    // Ten subdirectories so the streamed-dir strategy exercises real
    // tree structure, not a flat listing.
    for i in 0..files {
        stage(&ep, &format!("small/d{}/f{i}.bin", i % 10), size);
    }
    let path_of = |i: usize| format!("/home/alice/small/d{}/f{i}.bin", i % 10);
    let mut rows = Vec::new();
    let mut push = |strategy: &str, secs: f64| {
        rows.push(Row {
            strategy: strategy.into(),
            files,
            secs,
            files_per_sec: files as f64 / secs,
        });
    };

    // (a) fresh session per file — pays login (5-token handshake +
    // delegation) every time.
    let (_, secs) = timed(|| {
        for i in 0..files {
            let mut s = session(&ep, 0xE4_100 + i as u64 * 3);
            let d = transfer::get_bytes(&mut s, &path_of(i), &TransferOpts::default())
                .expect("get");
            assert_eq!(d.len(), size);
            let _ = s.quit();
        }
    });
    push("session per file (naive)", secs);

    // (b) one session reused; still one PASV+RETR turn and one
    // DCAU-authenticated data connection per file. The baseline the
    // streamed-dir speedup is quoted against.
    let mut s = session(&ep, 0xE4_500);
    let (_, secs) = timed(|| {
        for i in 0..files {
            let d = transfer::get_bytes(&mut s, &path_of(i), &TransferOpts::default())
                .expect("get");
            assert_eq!(d.len(), size);
        }
    });
    let _ = s.quit();
    let per_file_baseline = files as f64 / secs;
    push("one session, per-file", secs);

    // (c) concurrency 4: four sessions splitting the batch.
    let conc = 4usize;
    let addr = ep.gridftp_addr();
    let logon = ep.logon("alice", "benchpw", 3600, 0xE4_900).expect("logon");
    let (_, secs) = timed(|| {
        let mut handles = Vec::new();
        for c in 0..conc {
            let cfg = ep.client_config(&logon, 0xE4_901 + c as u64);
            let paths: Vec<String> = (c..files).step_by(conc).map(path_of).collect();
            handles.push(std::thread::spawn(move || {
                let mut s = ClientSession::connect(addr, cfg).expect("connect");
                s.login().expect("login");
                for p in &paths {
                    let d = transfer::get_bytes(&mut s, p, &TransferOpts::default())
                        .expect("get");
                    assert_eq!(d.len(), size);
                }
                let _ = s.quit();
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
    });
    push(&format!("concurrency {conc}"), secs);

    // (d) one session, PIPE window 8: windows of PORT+RETR go out before
    // any reply is read, overlapping command latency.
    let mut s = session(&ep, 0xE4_950);
    let paths: Vec<String> = (0..files).map(path_of).collect();
    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let (got, secs) = timed(|| {
        transfer::get_files_pipelined(&mut s, &refs, 8, &TransferOpts::default())
            .expect("pipelined get")
    });
    let _ = s.quit();
    assert_eq!(got.len(), files);
    assert!(got.iter().all(|d| d.len() == size));
    push("one session, PIPE window 8", secs);

    // (e) streamed dir: the whole tree over ONE data-channel setup.
    let mut s = session(&ep, 0xE4_990);
    let local = Arc::new(MemDsi::new());
    let local_dyn: Arc<dyn Dsi> = Arc::clone(&local) as Arc<dyn Dsi>;
    let (out, secs) = timed(|| {
        transfer::get_dir(&mut s, &local_dyn, "/dl", "/home/alice/small", &TransferOpts::default())
            .expect("get_dir")
    });
    let _ = s.quit();
    assert!(out.complete, "streamed dir must complete: {out:?}");
    assert_eq!(out.entries_done as usize, files + 10, "files + 10 subdirs");
    push("streamed dir (ERET DIR)", secs);

    let dir_speedup = rows.last().unwrap().files_per_sec / per_file_baseline;
    let _ = (NOW, dir_speedup);
    ep.shutdown();
    rows
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "strategy".to_string(),
        "files".to_string(),
        "seconds".to_string(),
        "files/s".to_string(),
        "speedup".to_string(),
    ]];
    let base = rows[0].files_per_sec;
    for r in &rows {
        t.push(vec![
            r.strategy.clone(),
            r.files.to_string(),
            format!("{:.3}", r.secs),
            format!("{:.1}", r.files_per_sec),
            format!("{:.1}x", r.files_per_sec / base),
        ]);
    }
    format!(
        "{}(4 KiB files; naive = full GSI login per file; streamed dir = one\n MODE E channel and one DCAU handshake for the whole tree)\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_concurrency_and_streaming_beat_naive() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        assert_eq!(rows.len(), 5);
        let naive = rows[0].files_per_sec;
        let per_file = rows[1].files_per_sec;
        let concurrent = rows[2].files_per_sec;
        let piped = rows[3].files_per_sec;
        let dir = rows[4].files_per_sec;
        assert!(per_file > 1.5 * naive, "per-file {per_file:.1} vs naive {naive:.1}");
        assert!(concurrent > per_file * 0.8, "concurrency should roughly hold or improve");
        // Pipelining overlaps command turns but keeps per-file data
        // connections: it must at least hold the per-file rate.
        assert!(piped > per_file * 0.9, "piped {piped:.1} vs per-file {per_file:.1}");
        // The headline: one data-channel setup for the whole tree is an
        // order of magnitude past per-file round-trips on 4 KiB files.
        assert!(
            dir >= 10.0 * per_file,
            "streamed dir {dir:.1} files/s must be >= 10x per-file {per_file:.1} files/s"
        );
    }
}
