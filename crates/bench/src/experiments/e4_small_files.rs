//! E4 — the lots-of-small-files optimizations (§II-A, §VII): session
//! reuse ("pipelining" amortizes per-command latency) and concurrency
//! (multiple sessions moving files simultaneously).
//!
//! Measured: N small files fetched
//! (a) the naive way — one fresh authenticated session per file (what a
//!     scripted `scp`/one-shot client does: full handshake per file),
//! (b) pipelined — one session reused for all files,
//! (c) concurrent — k sessions splitting the batch.

use crate::experiments::common::{endpoint, session, stage, timed, NOW};
use crate::table;
use ig_client::{transfer, ClientSession, TransferOpts};

/// One measured point.
pub struct Row {
    /// Strategy label.
    pub strategy: String,
    /// Files moved.
    pub files: usize,
    /// Seconds.
    pub secs: f64,
    /// Files per second.
    pub files_per_sec: f64,
}

/// Run the measurement.
pub fn run(fast: bool) -> Vec<Row> {
    let files = if fast { 12 } else { 48 };
    let size = 16 * 1024;
    let ep = endpoint("e4-small.example.org", 0xE4);
    for i in 0..files {
        stage(&ep, &format!("small/f{i}.bin"), size);
    }
    let mut rows = Vec::new();

    // (a) fresh session per file — pays login (5-token handshake +
    // delegation) every time.
    let (_, secs) = timed(|| {
        for i in 0..files {
            let mut s = session(&ep, 0xE4_100 + i as u64 * 3);
            let d = transfer::get_bytes(
                &mut s,
                &format!("/home/alice/small/f{i}.bin"),
                &TransferOpts::default(),
            )
            .expect("get");
            assert_eq!(d.len(), size);
            let _ = s.quit();
        }
    });
    rows.push(Row {
        strategy: "session per file (naive)".into(),
        files,
        secs,
        files_per_sec: files as f64 / secs,
    });

    // (b) one session, pipelined requests.
    let mut s = session(&ep, 0xE4_500);
    let (_, secs) = timed(|| {
        for i in 0..files {
            let d = transfer::get_bytes(
                &mut s,
                &format!("/home/alice/small/f{i}.bin"),
                &TransferOpts::default(),
            )
            .expect("get");
            assert_eq!(d.len(), size);
        }
    });
    let _ = s.quit();
    rows.push(Row {
        strategy: "one session, pipelined".into(),
        files,
        secs,
        files_per_sec: files as f64 / secs,
    });

    // (c) concurrency 4: four sessions splitting the batch.
    let conc = 4usize;
    let addr = ep.gridftp_addr();
    let logon = ep.logon("alice", "benchpw", 3600, 0xE4_900).expect("logon");
    let (_, secs) = timed(|| {
        let mut handles = Vec::new();
        for c in 0..conc {
            let cfg = ep.client_config(&logon, 0xE4_901 + c as u64);
            handles.push(std::thread::spawn(move || {
                let mut s = ClientSession::connect(addr, cfg).expect("connect");
                s.login().expect("login");
                for i in (c..files).step_by(conc) {
                    let d = transfer::get_bytes(
                        &mut s,
                        &format!("/home/alice/small/f{i}.bin"),
                        &TransferOpts::default(),
                    )
                    .expect("get");
                    assert_eq!(d.len(), size);
                }
                let _ = s.quit();
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
    });
    rows.push(Row {
        strategy: format!("concurrency {conc}"),
        files,
        secs,
        files_per_sec: files as f64 / secs,
    });
    let _ = NOW;
    ep.shutdown();
    rows
}

/// Render the table.
pub fn table(fast: bool) -> String {
    let rows = run(fast);
    let mut t = vec![vec![
        "strategy".to_string(),
        "files".to_string(),
        "seconds".to_string(),
        "files/s".to_string(),
        "speedup".to_string(),
    ]];
    let base = rows[0].files_per_sec;
    for r in &rows {
        t.push(vec![
            r.strategy.clone(),
            r.files.to_string(),
            format!("{:.3}", r.secs),
            format!("{:.1}", r.files_per_sec),
            format!("{:.1}x", r.files_per_sec / base),
        ]);
    }
    format!("{}(16 KiB files; naive = full GSI login per file)\n", table::render(&t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_and_concurrency_beat_naive() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run(true);
        assert_eq!(rows.len(), 3);
        let naive = rows[0].files_per_sec;
        let pipelined = rows[1].files_per_sec;
        let concurrent = rows[2].files_per_sec;
        assert!(pipelined > 1.5 * naive, "pipelined {pipelined:.1} vs naive {naive:.1}");
        assert!(concurrent > pipelined * 0.8, "concurrency should roughly hold or improve");
    }
}
