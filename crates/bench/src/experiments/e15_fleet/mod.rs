//! E15 — fleet-scale hosted service: a seeded, chaos-injected day of
//! Globus-Online-style operation regenerating the Fig 1 usage curve.
//!
//! The paper's operating point — ">5,000 servers", "more than 10
//! million transfers ... approximately half a petabyte of data every
//! day" — run as a *simulation in virtual time* over the subsystems
//! this repo grew for exactly that scale:
//!
//! * a seeded [`ig_netsim::Fleet`] of GCMU endpoints with per-class WAN
//!   links and outage ("flap") schedules,
//! * the fair-share [`ig_gol::FairScheduler`] dispatching the diurnal
//!   job stream under per-tenant weights, a contracted rate cap, and a
//!   bounded queue that rejects (typed) when a burst tenant floods it,
//! * the sharded [`ig_server::UsageReporter`] ledger aggregating every
//!   completed transfer into the hourly curve,
//! * a [`ig_myproxy::CredCache`]-fronted **real** [`OnlineCa`] issuing
//!   the short-lived per-tenant credentials — every issuance here bumps
//!   the same `myproxy.issued` counter E11 measures.
//!
//! The whole day replays byte-identically under one seed (the `digest:`
//! note line); `scripts/ci.sh` runs a reduced fleet twice and gates on
//! that. Set `E15_SEED` to replay a different day.

pub mod sim;

use crate::table;
use ig_myproxy::OnlineCa;
use ig_pki::time::Clock;
use sim::{SimParams, SimSummary};
use std::collections::HashMap;

pub use sim::{P99_ACTIVATION_BUDGET_S, P99_SUBMIT_BUDGET_S};

/// Seed override knob (`E15_SEED=<u64>`); default replays the in-tree
/// reference day.
pub const SEED_ENV: &str = "E15_SEED";

/// Default master seed.
pub const DEFAULT_SEED: u64 = 0xE15_0001;

fn seed() -> u64 {
    std::env::var(SEED_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// Report-sized parameters. Both sizes model the same scaled
/// 10M-transfers/day: `sim_jobs * scale == 1e7`; the full run trades a
/// 5,000-endpoint fleet and finer ticks for wall time.
pub fn params(fast: bool, seed: u64) -> SimParams {
    if fast {
        SimParams {
            endpoints: 1_000,
            tenants: 16,
            sim_jobs_per_day: 20_000.0,
            scale: 500,
            tick_s: 300.0,
            seed,
            flap_fraction: 0.02,
            capacity_factor: 2.2,
            burst_jobs: 150,
            burst_queue_cap: 80,
        }
    } else {
        SimParams {
            endpoints: 5_000,
            tenants: 16,
            sim_jobs_per_day: 100_000.0,
            scale: 100,
            tick_s: 60.0,
            seed,
            flap_fraction: 0.02,
            capacity_factor: 2.2,
            burst_jobs: 800,
            burst_queue_cap: 400,
        }
    }
}

/// Run one simulated day against the real online CA.
pub fn run(fast: bool) -> SimSummary {
    run_with(&params(fast, seed()))
}

/// Run arbitrary parameters against the real online CA: one CSR per
/// tenant (the storm shape — same subject, distinct requests), the CA's
/// `myproxy.issued` counter moving once per cache miss.
pub fn run_with(p: &SimParams) -> SimSummary {
    use ig_crypto::rng::seeded;

    let ca = OnlineCa::create(&mut seeded(p.seed), "fleet.gcmu.example.org", 512, Clock::Fixed(0))
        .expect("online CA");
    let csrs: HashMap<String, ig_pki::CertificateSigningRequest> = (0..p.tenants)
        .map(|i| {
            let kp = ig_crypto::RsaKeyPair::generate(&mut seeded(p.seed ^ (0xC5A0 + i as u64)), 512)
                .expect("tenant key");
            let csr = ig_pki::CertificateSigningRequest::create(
                ig_pki::DistinguishedName::from_pairs([("CN", "ignored")]),
                &kp.private,
            )
            .expect("tenant csr");
            (sim::tenant_name(i), csr)
        })
        .collect();
    sim::simulate(p, |tenant, now| {
        let cert = ca.issue(tenant, &csrs[tenant], sim::CRED_LIFETIME_S)?;
        // Expiry tracks the *virtual* clock (the CA's clock is fixed).
        Ok((cert, now + sim::CRED_LIFETIME_S))
    })
}

/// Render the hourly curve plus the gate notes.
pub fn table(fast: bool) -> String {
    let p = params(fast, seed());
    let s = run_with(&p);
    let mut t = vec![vec![
        "hour".to_string(),
        "transfers (scaled)".to_string(),
        "TB".to_string(),
        "plot".to_string(),
    ]];
    let max = s.hours.iter().map(|h| h.transfers).fold(0.0f64, f64::max);
    for h in &s.hours {
        let bars = ((h.transfers / max) * 40.0) as usize;
        t.push(vec![
            format!("{:02}", h.start_s / 3_600),
            format!("{:.0}", h.transfers),
            format!("{:.1}", h.tb),
            "#".repeat(bars),
        ]);
    }
    format!(
        "{}day total: {:.2e} transfers, {:.0} TB (paper: >1e7 transfers/day, ~500 TB/day; \
         fleet {} endpoints / {} tenants)\n\
         scheduler: {} grants, {} queue-full rejects (typed), {} chaos-deferred arrivals\n\
         credentials: {} CA issuances, {} cache hits — single-flight in front of the E11 \
         `myproxy.issued` counter\n\
         p99 submit {:.1} s (budget {:.0} s), p99 activation {:.3} s (budget {:.2} s) — \
         within budget: {}\n\
         digest: {} (seed {}; set {} to replay a different day)\n",
        table::render(&t),
        s.scaled_daily_transfers,
        s.scaled_daily_bytes / 1e12,
        p.endpoints,
        p.tenants,
        s.granted,
        s.rejects,
        s.deferred,
        s.issuances,
        s.cache_hits,
        s.p99_submit_s,
        P99_SUBMIT_BUDGET_S,
        s.p99_activation_s,
        P99_ACTIVATION_BUDGET_S,
        if s.within_budgets() { "yes" } else { "NO" },
        s.digest,
        p.seed,
        SEED_ENV,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced day against the **real** CA: budgets hold, chaos and
    /// backpressure both fire, and every cache miss reached
    /// `OnlineCa::issue` (the global E11 counter moved at least that
    /// much — other tests share the registry, so ≥ not ==; the exact
    /// K→1 stampede accounting lives in `ig-myproxy`'s battery).
    #[test]
    fn real_ca_day_holds_budgets() {
        let issued_before = ig_obs::Obs::global().metrics().counter_value("myproxy.issued");
        let s = run_with(&SimParams::smoke(DEFAULT_SEED));
        let issued_after = ig_obs::Obs::global().metrics().counter_value("myproxy.issued");
        assert!(s.within_budgets(), "p99 {:.1}s/{:.3}s", s.p99_submit_s, s.p99_activation_s);
        assert_eq!(s.granted, s.submitted);
        assert!(s.rejects > 0 && s.deferred > 0, "chaos cells did not fire");
        assert!(s.issuances > 0);
        assert!(
            issued_after - issued_before >= s.issuances,
            "cache misses must reach the real CA ({} -> {issued_after})",
            issued_before
        );
    }

    /// The fast report size renders the full curve with the replay
    /// digest and the budget verdict — what ci.sh gates on.
    #[test]
    fn fast_table_renders_with_digest() {
        let rendered = table(true);
        assert!(rendered.contains("transfers (scaled)"));
        assert!(rendered.contains("digest: e15:"), "{rendered}");
        assert!(rendered.contains("within budget: yes"), "{rendered}");
        let (header, rows, notes) = table::parse_rendered(&rendered);
        assert_eq!(header.len(), 4);
        assert!(rows.len() >= 24, "need a full day of hourly rows");
        assert!(notes.iter().any(|n| n.contains("digest: e15:")));
    }
}
