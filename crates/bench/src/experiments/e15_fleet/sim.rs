//! The deterministic fleet-simulation engine behind experiment E15.
//!
//! Everything here runs in **virtual time** under a single seed: a
//! [`Fleet`] of simulated GCMU endpoints, a [`DiurnalModel`] arrival
//! curve scaled to the paper's 10M-transfers/day, the fair-share
//! [`FairScheduler`], the sharded [`UsageReporter`] ledger, and a
//! [`CredCache`]-fronted credential issuer. The issuer is a closure so
//! the engine itself has no PKI dependency — the experiment wrapper
//! plugs in the real MyProxy online CA, tests can plug in fakes or
//! chaos. Two runs with the same [`SimParams`] produce byte-identical
//! [`SimSummary::digest`] values; that is the replay contract
//! `scripts/ci.sh` gates on.

use ig_gol::{FairScheduler, SchedReject, TenantShare};
use ig_myproxy::cache::Outcome;
use ig_myproxy::CredCache;
use ig_netsim::{DiurnalModel, Fleet, FleetConfig};
use ig_server::usage::TransferRecord;
use ig_server::UsageReporter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Simulated seconds in a day.
pub const DAY_S: f64 = 86_400.0;

/// In-tree budget: p99 submit→grant wait (virtual seconds). The
/// scheduler must hold this through the diurnal peak, the chaos burst
/// and endpoint-flap re-arrivals.
pub const P99_SUBMIT_BUDGET_S: f64 = 600.0;

/// In-tree budget: p99 activation latency (virtual seconds). Bounded by
/// the modelled CA round trip — a working credential cache keeps almost
/// every activation at the cache-hit cost.
pub const P99_ACTIVATION_BUDGET_S: f64 = 0.30;

/// Modelled activation cost of a credential-cache hit.
const ACT_HIT_S: f64 = 0.002;
/// Modelled activation cost when the flight coalesced onto a leader.
const ACT_COALESCED_S: f64 = 0.12;
/// Modelled activation cost of a fresh CA issuance (CSR + sign RTT).
const ACT_ISSUE_S: f64 = 0.25;

/// Requested credential lifetime — hourly re-issuance over the day.
pub const CRED_LIFETIME_S: u64 = 3_600;

/// Tenant naming shared by the engine and the experiment wrapper (the
/// wrapper pre-builds one CSR per tenant for the real CA).
pub fn tenant_name(i: usize) -> String {
    format!("tenant-{i:02}")
}

/// Knobs for one simulated day.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Endpoint population (the paper's ">5,000 servers" at full size).
    pub endpoints: usize,
    /// Tenant count (scheduler shares / credential subjects).
    pub tenants: usize,
    /// Simulated jobs over the day; each stands for [`SimParams::scale`]
    /// real transfers, so `sim_jobs_per_day * scale` is the modelled
    /// daily rate (10M at either report size).
    pub sim_jobs_per_day: f64,
    /// Real transfers represented by one simulated job.
    pub scale: u64,
    /// Virtual tick width (seconds).
    pub tick_s: f64,
    /// Master seed (fleet, arrivals, sizes, chaos all derive from it).
    pub seed: u64,
    /// Fraction of endpoints given outage windows (chaos knob).
    pub flap_fraction: f64,
    /// Service dispatch capacity as a multiple of the mean arrival
    /// rate; must exceed the diurnal peak-to-mean ratio (1.5 here) or
    /// the peak backlog grows without bound.
    pub capacity_factor: f64,
    /// Extra jobs the burst tenant slams in at the diurnal peak.
    pub burst_jobs: u64,
    /// The burst tenant's bounded submit queue — sized so the burst
    /// overflows it and the typed-reject path is exercised at scale.
    pub burst_queue_cap: usize,
}

impl SimParams {
    /// Reduced-size parameters for in-crate tests and smoke gates.
    pub fn smoke(seed: u64) -> SimParams {
        SimParams {
            endpoints: 300,
            tenants: 8,
            sim_jobs_per_day: 4_000.0,
            scale: 2_500,
            tick_s: 600.0,
            seed,
            flap_fraction: 0.30,
            capacity_factor: 2.2,
            burst_jobs: 60,
            burst_queue_cap: 30,
        }
    }

    /// Modelled real-transfer daily total (`sim_jobs * scale`).
    pub fn modeled_daily_transfers(&self) -> f64 {
        self.sim_jobs_per_day * self.scale as f64
    }
}

/// One point of the regenerated Fig 1-style daily curve.
#[derive(Debug, Clone, Copy)]
pub struct HourPoint {
    /// Hour bucket start (virtual seconds).
    pub start_s: u64,
    /// Scaled (real-equivalent) transfers completed in the hour.
    pub transfers: f64,
    /// Scaled terabytes moved in the hour.
    pub tb: f64,
}

/// What one simulated day produced.
#[derive(Debug, Clone)]
pub struct SimSummary {
    /// Jobs accepted by the scheduler.
    pub submitted: u64,
    /// Jobs granted (all accepted jobs, once the drain completes).
    pub granted: u64,
    /// Typed queue-full rejects (== the `gol.sched.rejects` counter).
    pub rejects: u64,
    /// Arrivals deferred because their endpoint was down (chaos).
    pub deferred: u64,
    /// CA issuances performed (cache misses + expiries).
    pub issuances: u64,
    /// Credential-cache hits.
    pub cache_hits: u64,
    /// p99 submit→grant wait (virtual seconds).
    pub p99_submit_s: f64,
    /// p99 activation latency (virtual seconds, modelled).
    pub p99_activation_s: f64,
    /// Scaled daily transfer total (compare against 1e7).
    pub scaled_daily_transfers: f64,
    /// Scaled daily bytes total.
    pub scaled_daily_bytes: f64,
    /// Hourly usage curve (the Fig 1 regeneration).
    pub hours: Vec<HourPoint>,
    /// FNV-1a digest of the whole stable trace — byte-identical across
    /// replays of the same parameters.
    pub digest: String,
}

impl SimSummary {
    /// Do both latency budgets hold?
    pub fn within_budgets(&self) -> bool {
        self.p99_submit_s <= P99_SUBMIT_BUDGET_S
            && self.p99_activation_s <= P99_ACTIVATION_BUDGET_S
    }
}

/// Run one simulated day. `issue` is the credential issuer placed
/// behind the single-flight cache: `(tenant, virtual_now) ->
/// Ok((credential, expires_at))` — the experiment passes the real
/// online CA, tests pass counting fakes.
pub fn simulate<V, E>(
    p: &SimParams,
    issue: impl Fn(&str, u64) -> Result<(V, u64), E>,
) -> SimSummary
where
    V: Clone,
    E: std::fmt::Display,
{
    assert!(p.capacity_factor > 1.5, "capacity must clear the diurnal peak");
    let fleet = Fleet::generate(&FleetConfig {
        endpoints: p.endpoints,
        tenants: p.tenants,
        seed: p.seed,
        flap_fraction: p.flap_fraction,
    });
    let model = DiurnalModel::with_daily_total(p.sim_jobs_per_day, 3.0, 14.0 * 3_600.0);
    let obs = ig_obs::Obs::new("e15-sim");
    // Payload: (endpoint id, arrival time) — the grant hands back both.
    let sched: FairScheduler<(u32, f64)> = FairScheduler::with_obs(std::sync::Arc::clone(&obs));
    let burst_tenant = tenant_name(p.tenants - 1);
    for i in 0..p.tenants {
        let weight = 1 + (i % 4) as u32;
        let cap =
            if i == p.tenants - 1 { p.burst_queue_cap } else { p.sim_jobs_per_day as usize + 1 };
        let mut share = TenantShare::weighted(weight, cap);
        if i == 3 && p.tenants > 4 {
            // One tenant with a contracted dispatch rate: generous
            // enough to clear its share, tight enough to bite on
            // Poisson spikes.
            let rate = 4.0 * p.sim_jobs_per_day / DAY_S / p.tenants as f64;
            share = share.with_rate(rate, 8.0);
        }
        sched.register(&tenant_name(i), share);
    }
    let cache: CredCache<V, E> = CredCache::with_obs(std::sync::Arc::clone(&obs));
    let ledger = UsageReporter::sharded(16);

    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xA11C_E5EE_D5_u64);
    let capacity_per_s = p.capacity_factor * p.sim_jobs_per_day / DAY_S;
    let day_ticks = (DAY_S / p.tick_s).round() as u64;
    // Post-day drain window: rate-capped stragglers finish here.
    let total_ticks = day_ticks + (21_600.0 / p.tick_s).round() as u64;
    let burst_tick = (14.0 * 3_600.0 / p.tick_s) as u64;

    let mut deferred_arrivals: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let mut waits: Vec<f64> = Vec::new();
    let mut act_lat: Vec<f64> = Vec::new();
    let mut submitted = 0u64;
    let mut deferred = 0u64;
    let mut issuances = 0u64;
    let mut cache_hits = 0u64;
    let mut carry = 0.0f64;

    let submit_job = |sched: &FairScheduler<(u32, f64)>, ep: u32, tenant: &str, t: f64| {
        match sched.submit(tenant, (ep, t)) {
            Ok(_) => true,
            Err(SchedReject::QueueFull { .. }) => false,
            Err(e @ SchedReject::UnknownTenant { .. }) => panic!("sim misconfigured: {e}"),
        }
    };

    for tick in 0..total_ticks {
        let t = tick as f64 * p.tick_s;
        // Chaos re-arrivals: jobs whose endpoint was down, retrying at
        // the outage's end.
        if let Some(eps) = deferred_arrivals.remove(&tick) {
            for ep_id in eps {
                let ep = &fleet.endpoints[ep_id as usize];
                if submit_job(&sched, ep_id, &tenant_name(ep.tenant as usize), t) {
                    submitted += 1;
                }
            }
        }
        // Fresh arrivals follow the diurnal curve for the day only.
        if tick < day_ticks {
            let n = model.arrivals(t, p.tick_s, &mut rng);
            for _ in 0..n {
                let ep = &fleet.endpoints[rng.gen_range(0..fleet.len())];
                if !ep.is_up(t) {
                    // Endpoint mid-outage: retry when it comes back.
                    let back = ep
                        .outages
                        .iter()
                        .find(|&&(a, b)| (a..b).contains(&t))
                        .map_or(t + p.tick_s, |&(_, b)| b);
                    let back_tick = (back / p.tick_s).ceil() as u64 + 1;
                    deferred_arrivals.entry(back_tick).or_default().push(ep.id);
                    deferred += 1;
                    continue;
                }
                if submit_job(&sched, ep.id, &tenant_name(ep.tenant as usize), t) {
                    submitted += 1;
                }
            }
            if tick == burst_tick {
                // The chaos burst: one tenant floods its bounded queue
                // at the diurnal peak; overflow must reject, typed.
                for _ in 0..p.burst_jobs {
                    let ep = &fleet.endpoints[rng.gen_range(0..fleet.len())];
                    if submit_job(&sched, ep.id, &burst_tenant, t) {
                        submitted += 1;
                    }
                }
            }
        }
        // Dispatch up to this tick's service capacity, spreading grant
        // times across the tick so waits resolve below tick width.
        let mut budget = carry + capacity_per_s * p.tick_s;
        let mut k = 0u64;
        while budget >= 1.0 {
            let Some(grant) = sched.dispatch(t) else { break };
            budget -= 1.0;
            k += 1;
            let grant_t = t + k as f64 / capacity_per_s;
            let (ep_id, arrived_t) = grant.payload;
            waits.push(grant_t - arrived_t);
            // Activation through the single-flight credential cache.
            let (cred, outcome) =
                cache.get_or_issue(&grant.tenant, CRED_LIFETIME_S, grant_t as u64, || {
                    issue(&grant.tenant, grant_t as u64)
                });
            if let Err(e) = cred {
                panic!("in-sim issuance failed for {}: {e}", grant.tenant);
            }
            let act = match outcome {
                Outcome::Hit => {
                    cache_hits += 1;
                    ACT_HIT_S
                }
                Outcome::Coalesced => ACT_COALESCED_S,
                Outcome::Issued => {
                    issuances += 1;
                    ACT_ISSUE_S
                }
            };
            act_lat.push(act);
            // The transfer itself: one representative transfer's bytes
            // and duration on the endpoint's WAN link; the record is
            // scaled back up to real-fleet magnitude.
            let ep = &fleet.endpoints[ep_id as usize];
            let bytes_one = 1e5 * 4_000.0_f64.powf(rng.gen::<f64>());
            let duration = bytes_one / (ep.link.bandwidth_bps / 8.0) + ep.link.rtt_s;
            let done = grant_t + act + duration;
            ledger.record_on(
                ep_id as usize,
                TransferRecord {
                    timestamp: done as u64,
                    bytes: bytes_one as u64 * p.scale,
                    user: grant.tenant,
                    inbound: grant.id % 2 == 0,
                    streams: 4,
                },
            );
        }
        carry = budget.min(capacity_per_s * p.tick_s);
    }
    assert_eq!(sched.queued_total(), 0, "drain window left jobs queued");

    let granted = obs.metrics().counter_value("gol.sched.grants");
    let rejects = obs.metrics().counter_value("gol.sched.rejects");
    let p99_submit_s = p99(&mut waits);
    let p99_activation_s = p99(&mut act_lat);
    let hours: Vec<HourPoint> = ledger
        .aggregate(3_600)
        .iter()
        .map(|b| HourPoint {
            start_s: b.start,
            transfers: b.transfers as f64 * p.scale as f64,
            tb: b.bytes as f64 / 1e12,
        })
        .collect();
    let scaled_daily_transfers = hours.iter().map(|h| h.transfers).sum();
    let scaled_daily_bytes = ledger.total_bytes() as f64;

    let mut trace = String::new();
    let _ = write!(
        trace,
        "e15 seed={} endpoints={} tenants={} jobs={} scale={} sub={submitted} \
         gr={granted} rej={rejects} def={deferred} iss={issuances} hit={cache_hits} \
         p99s={p99_submit_s:.3} p99a={p99_activation_s:.3}",
        p.seed, p.endpoints, p.tenants, p.sim_jobs_per_day, p.scale,
    );
    for h in &hours {
        let _ = write!(trace, " {}:{:.0}:{:.3}", h.start_s, h.transfers, h.tb);
    }

    SimSummary {
        submitted,
        granted,
        rejects,
        deferred,
        issuances,
        cache_hits,
        p99_submit_s,
        p99_activation_s,
        scaled_daily_transfers,
        scaled_daily_bytes,
        hours,
        digest: format!("e15:{:016x}", fnv1a64(trace.as_bytes())),
    }
}

/// p99 by sorting (destructive; fine for one-shot summaries).
fn p99(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    xs[(xs.len() * 99 / 100).min(xs.len() - 1)]
}

/// FNV-1a 64-bit — the stable-trace digest hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fake CA: hands out string credentials, counts issuances.
    fn fake_issuer(
        count: &AtomicU64,
    ) -> impl Fn(&str, u64) -> Result<(String, u64), String> + '_ {
        move |tenant, now| {
            count.fetch_add(1, Ordering::SeqCst);
            Ok((format!("cred-{tenant}-{now}"), now + CRED_LIFETIME_S))
        }
    }

    #[test]
    fn replay_is_byte_identical_and_seed_sensitive() {
        let issued = AtomicU64::new(0);
        let a = simulate(&SimParams::smoke(0xE15), fake_issuer(&issued));
        let b = simulate(&SimParams::smoke(0xE15), fake_issuer(&issued));
        assert_eq!(a.digest, b.digest, "same seed must replay byte-identically");
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.rejects, b.rejects);
        let c = simulate(&SimParams::smoke(0xE15 + 1), fake_issuer(&issued));
        assert_ne!(a.digest, c.digest, "different seed must change the trace");
    }

    #[test]
    fn budgets_chaos_and_anchors_hold() {
        let issued = AtomicU64::new(0);
        let p = SimParams::smoke(0xE15);
        let s = simulate(&p, fake_issuer(&issued));
        // Every accepted job was eventually granted.
        assert_eq!(s.granted, s.submitted);
        assert!(s.within_budgets(), "p99 {:.1}s / {:.3}s blew budget", s.p99_submit_s, s.p99_activation_s);
        // Chaos actually happened: flaps deferred arrivals, the burst
        // overflowed its bounded queue into typed rejects.
        assert!(s.deferred > 0, "no arrivals hit a downed endpoint");
        assert!(s.rejects > 0, "the peak burst never overflowed the queue");
        // The issuer's own count matches the cache's view, and expiry
        // forced periodic re-issuance (hour-lifetime creds, 24h day).
        assert_eq!(issued.load(Ordering::SeqCst), s.issuances);
        assert!(s.issuances >= p.tenants as u64, "expiry never re-issued");
        assert!(s.issuances <= p.tenants as u64 * 30, "cache never held");
        assert!(s.cache_hits > s.issuances * 4, "cache mostly missed");
        // The scaled workload lands at the paper's 10M/day magnitude.
        let target = p.modeled_daily_transfers();
        assert!(
            (s.scaled_daily_transfers / target - 1.0).abs() < 0.15,
            "scaled daily transfers {:.2e} vs target {target:.2e}",
            s.scaled_daily_transfers
        );
        // Full daily curve, peaking in the configured afternoon.
        assert!(s.hours.len() >= 24, "only {} hourly buckets", s.hours.len());
        let peak = s
            .hours
            .iter()
            .max_by(|a, b| a.transfers.partial_cmp(&b.transfers).unwrap())
            .unwrap();
        let peak_hour = (peak.start_s / 3_600) as i64;
        assert!((10..=20).contains(&peak_hour), "peak landed at hour {peak_hour}");
    }

    #[test]
    fn issuer_failure_panics_with_the_tenant_named() {
        let issued = AtomicU64::new(0);
        let res = std::panic::catch_unwind(|| {
            simulate(&SimParams::smoke(1), |t: &str, _| {
                issued.fetch_add(1, Ordering::SeqCst);
                Err::<(String, u64), String>(format!("CA down for {t}"))
            })
        });
        assert!(res.is_err(), "simulate must refuse to run without credentials");
    }
}
