//! E8 — §III/§IV, Fig 3: setup complexity across deployment methods,
//! plus a live measurement of GCMU's time-to-first-transfer.

use crate::experiments::common::{timed, NOW};
use crate::table;
use ig_client::{transfer, ClientSession, TransferOpts};
use ig_gcmu::{procedure, InstallOptions, SetupMethod};
use ig_pki::time::Clock;

/// One comparison row.
pub struct Row {
    /// Method.
    pub method: String,
    /// One-time admin steps.
    pub admin_steps: usize,
    /// Of which manual.
    pub manual_steps: usize,
    /// Per-user admin steps.
    pub per_user_steps: usize,
    /// Estimated minutes to a new user's first transfer.
    pub first_transfer_min: f64,
    /// Error-prone steps across the procedure.
    pub error_opportunities: usize,
    /// Delegation capability (Globus Online hand-off).
    pub delegation: bool,
    /// Data-channel security capability.
    pub dc_security: bool,
}

/// The static comparison from the paper's procedures.
pub fn run() -> Vec<Row> {
    [SetupMethod::ConventionalGsi, SetupMethod::GridFtpLite, SetupMethod::Gcmu]
        .into_iter()
        .map(|m| {
            let p = procedure(m);
            Row {
                method: p.method.clone(),
                admin_steps: p.total_admin_steps(),
                manual_steps: p.manual_admin_steps(),
                per_user_steps: p.per_user_admin_steps.len(),
                first_transfer_min: p.time_to_first_transfer_minutes(),
                error_opportunities: p.error_opportunities(),
                delegation: p.supports_delegation,
                dc_security: p.data_channel_security,
            }
        })
        .collect()
}

/// Live measurement: wall-clock for the whole GCMU "zero to first
/// transfer" path (install, logon, authenticated transfer).
pub fn measured_gcmu_seconds() -> f64 {
    let (_, secs) = timed(|| {
        let ep = InstallOptions::new("e8-live.example.org")
            .account("alice", "pw")
            .clock(Clock::Fixed(NOW))
            .seed(0xE8)
            .install()
            .expect("install");
        let logon = ep.logon("alice", "pw", 3600, 0xE8_1).expect("logon");
        let mut s = ClientSession::connect(ep.gridftp_addr(), ep.client_config(&logon, 0xE8_2))
            .expect("connect");
        s.login().expect("login");
        transfer::put_bytes(&mut s, "/home/alice/first.bin", b"instant", &TransferOpts::default())
            .expect("put");
        let _ = s.quit();
        ep.shutdown();
    });
    secs
}

/// Render the table.
pub fn table() -> String {
    let rows = run();
    let mut t = vec![vec![
        "method".to_string(),
        "admin steps".to_string(),
        "manual".to_string(),
        "per-user admin".to_string(),
        "first transfer".to_string(),
        "error-prone".to_string(),
        "delegation".to_string(),
        "DC security".to_string(),
    ]];
    for r in &rows {
        t.push(vec![
            r.method.clone(),
            r.admin_steps.to_string(),
            r.manual_steps.to_string(),
            r.per_user_steps.to_string(),
            format!("{:.0} min", r.first_transfer_min),
            r.error_opportunities.to_string(),
            if r.delegation { "yes".into() } else { "NO".into() },
            if r.dc_security { "yes".into() } else { "NO".into() },
        ]);
    }
    let live = measured_gcmu_seconds();
    format!(
        "{}\nGCMU measured, zero -> installed -> logged on -> first transfer: {live:.2} s wall clock\n",
        table::render(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcmu_dominates() {
        let _serial = crate::experiments::common::bench_lock();
        let rows = run();
        let conv = &rows[0];
        let lite = &rows[1];
        let gcmu = &rows[2];
        assert_eq!(gcmu.admin_steps, 4);
        assert_eq!(gcmu.manual_steps, 0);
        assert_eq!(gcmu.per_user_steps, 0);
        assert_eq!(gcmu.error_opportunities, 0);
        assert!(conv.first_transfer_min > 100.0 * gcmu.first_transfer_min);
        // GridFTP-Lite is easy but capability-poor (§III-B).
        assert!(!lite.delegation && !lite.dc_security);
        assert!(gcmu.delegation && gcmu.dc_security);
    }

    #[test]
    fn live_gcmu_first_transfer_is_seconds_not_days() {
        let _serial = crate::experiments::common::bench_lock();
        let secs = measured_gcmu_seconds();
        assert!(secs < 60.0, "instant GridFTP took {secs:.1}s");
    }
}
