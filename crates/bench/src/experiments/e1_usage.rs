//! E1 — Fig 1: aggregate usage of the reporting server fleet.
//!
//! Paper anchors: ">5,000 servers", "more than 10 million transfers",
//! "approximately half a petabyte of data every day".

use crate::table;
use ig_gol::usage::{steady_state, synthesize_fleet, FleetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One plotted point (4-week bucket of the Fig 1 series).
pub struct Row {
    /// Week index.
    pub week: u32,
    /// Mean transfers per day in the bucket.
    pub transfers_per_day: f64,
    /// Mean terabytes per day in the bucket.
    pub tb_per_day: f64,
}

/// Generate the series.
pub fn run() -> (Vec<Row>, f64, f64) {
    let mut rng = StdRng::seed_from_u64(0xF16_1);
    let buckets = synthesize_fleet(&mut rng, &FleetParams::default());
    let mut rows = Vec::new();
    for (week, chunk) in buckets.chunks(28).enumerate() {
        let n = chunk.len() as f64;
        let transfers = chunk.iter().map(|b| b.transfers as f64).sum::<f64>() / n;
        let bytes = chunk.iter().map(|b| b.bytes as f64).sum::<f64>() / n;
        rows.push(Row {
            week: week as u32 * 4,
            transfers_per_day: transfers,
            tb_per_day: bytes / 1e12,
        });
    }
    let (t, b) = steady_state(&buckets, 28);
    (rows, t, b)
}

/// Render the table.
pub fn table() -> String {
    let (rows, steady_t, steady_b) = run();
    let mut t = vec![vec![
        "week".to_string(),
        "transfers/day".to_string(),
        "TB/day".to_string(),
        "plot".to_string(),
    ]];
    let max = rows.iter().map(|r| r.transfers_per_day).fold(0.0f64, f64::max);
    for r in &rows {
        let bars = ((r.transfers_per_day / max) * 40.0) as usize;
        t.push(vec![
            format!("{}", r.week),
            format!("{:.2e}", r.transfers_per_day),
            format!("{:.0}", r.tb_per_day),
            "#".repeat(bars),
        ]);
    }
    format!(
        "{}\nsteady state: {:.2e} transfers/day, {:.0} TB/day  (paper: >1e7 transfers/day, ~500 TB/day)\n",
        table::render(&t),
        steady_t,
        steady_b / 1e12
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_hold() {
        let (rows, steady_t, steady_b) = run();
        assert_eq!(rows.len(), 13);
        assert!(steady_t > 7e6);
        assert!(steady_b > 2.5e14 && steady_b < 1e15);
        // Growth across the series.
        assert!(rows.last().expect("rows").transfers_per_day > rows[0].transfers_per_day);
    }

    #[test]
    fn table_renders() {
        let t = table();
        assert!(t.contains("transfers/day"));
        assert!(t.contains("steady state"));
    }
}
