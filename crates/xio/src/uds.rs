//! Unix-domain-socket listener support for the local admin plane.
//!
//! The operator surface (`ig-server::admin`) follows the cooperative
//! local-IPC model: a `SOCK_STREAM` socket at a well-known path, file
//! mode `0600`, and an `SO_PEERCRED` UID check on every accepted
//! connection so only the owning user can speak to the daemon — the
//! filesystem permission is the first gate, the kernel-reported peer
//! credential is the second, and both are enforced *before* any byte of
//! the connection is parsed.
//!
//! Like [`crate::epoll`], this wraps the needed syscalls through minimal
//! `extern "C"` declarations (libc is already linked into every Rust
//! binary) and is compiled on Linux only: `SO_PEERCRED` is a Linux
//! socket option, and the admin plane is gated on the same cfg.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::fs::{FileTypeExt, PermissionsExt};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// Mirror of the kernel's `struct ucred` returned by `SO_PEERCRED`.
#[repr(C)]
#[derive(Clone, Copy)]
struct UCred {
    pid: i32,
    uid: u32,
    gid: u32,
}

const SOL_SOCKET: c_int = 1;
const SO_PEERCRED: c_int = 17;

extern "C" {
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut c_uint,
    ) -> c_int;
    fn umask(mask: c_uint) -> c_uint;
    fn geteuid() -> c_uint;
}

/// The effective UID of this process — the default identity an admin
/// socket trusts.
pub fn process_euid() -> u32 {
    // SAFETY: geteuid takes no arguments and cannot fail.
    unsafe { geteuid() }
}

/// Kernel-verified UID of the peer on a connected unix-domain stream.
pub fn peer_uid(stream: &UnixStream) -> io::Result<u32> {
    let mut cred = UCred { pid: 0, uid: 0, gid: 0 };
    let mut len = std::mem::size_of::<UCred>() as c_uint;
    // SAFETY: optval points at a properly-sized, aligned UCred and len
    // carries its size; the kernel writes at most `len` bytes.
    let rc = unsafe {
        getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_PEERCRED,
            &mut cred as *mut UCred as *mut c_void,
            &mut len,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(cred.uid)
}

/// A private (mode `0600`) unix-domain listener that cleans up its
/// socket file on drop. [`UdsListener::accept`] returns the connected
/// stream together with the kernel-verified peer UID so callers can
/// reject foreign users before reading anything.
#[derive(Debug)]
pub struct UdsListener {
    inner: UnixListener,
    path: PathBuf,
}

impl UdsListener {
    /// Bind a fresh private socket at `path`.
    ///
    /// A stale socket file left by a crashed daemon is unlinked and
    /// replaced; anything else at the path — a regular file, and in
    /// particular a symlink (never followed) — is an error, so a
    /// hostile pre-planted path cannot redirect the bind.
    pub fn bind_private(path: &Path) -> io::Result<UdsListener> {
        match std::fs::symlink_metadata(path) {
            Ok(meta) if meta.file_type().is_socket() => std::fs::remove_file(path)?,
            Ok(meta) => {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("{}: exists and is not a socket ({:?})", path.display(), meta.file_type()),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        // Create the socket file with no group/other bits from the first
        // instant: mask them in the process umask across the bind, then
        // restore. (set_permissions afterwards would leave a window.)
        // SAFETY: umask only swaps the process file-creation mask.
        let old = unsafe { umask(0o177) };
        let bound = UnixListener::bind(path);
        unsafe { umask(old) };
        let inner = bound?;
        // Belt and braces: the mask already guaranteed 0600.
        std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o600))?;
        Ok(UdsListener { inner, path: path.to_path_buf() })
    }

    /// Accept one connection, returning the stream and the peer's
    /// kernel-verified UID.
    pub fn accept(&self) -> io::Result<(UnixStream, u32)> {
        let (stream, _addr) = self.inner.accept()?;
        let uid = peer_uid(&stream)?;
        Ok((stream, uid))
    }

    /// Switch the listener between blocking and nonblocking accepts.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nb)
    }

    /// The filesystem path this listener is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for UdsListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ig-uds-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn socket_file_is_0600_and_cleaned_up() {
        let path = tmp_path("mode");
        {
            let _l = UdsListener::bind_private(&path).unwrap();
            let mode = std::fs::metadata(&path).unwrap().permissions().mode();
            assert_eq!(mode & 0o777, 0o600, "socket must be private, got {:o}", mode);
        }
        assert!(!path.exists(), "socket file must be removed on drop");
    }

    #[test]
    fn peer_uid_matches_self_connect() {
        let path = tmp_path("cred");
        let l = UdsListener::bind_private(&path).unwrap();
        let _client = UnixStream::connect(&path).unwrap();
        let (_stream, uid) = l.accept().unwrap();
        assert_eq!(uid, process_euid(), "loopback connect must carry our own euid");
    }

    #[test]
    fn stale_socket_is_replaced_but_files_are_not() {
        let path = tmp_path("stale");
        drop(UdsListener::bind_private(&path));
        // A crashed daemon leaves the file behind; simulate by binding
        // twice with the first listener leaked out of scope first.
        let first = UdsListener::bind_private(&path).unwrap();
        std::mem::forget(first);
        let second = UdsListener::bind_private(&path).unwrap();
        drop(second);

        let file_path = tmp_path("regular-file");
        std::fs::write(&file_path, b"not a socket").unwrap();
        let err = UdsListener::bind_private(&file_path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        std::fs::remove_file(&file_path).unwrap();
    }

    #[test]
    fn symlink_at_path_is_rejected() {
        let target = tmp_path("symlink-target");
        let link = tmp_path("symlink");
        let _ = std::fs::remove_file(&link);
        std::fs::write(&target, b"x").unwrap();
        std::os::unix::fs::symlink(&target, &link).unwrap();
        let err = UdsListener::bind_private(&link).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists, "symlinks must never be followed");
        std::fs::remove_file(&link).unwrap();
        std::fs::remove_file(&target).unwrap();
    }
}
