//! The `Link` trait and its two base transports.

use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Maximum frame size accepted from the wire (16 MiB + sealing overhead).
pub const MAX_FRAME: usize = 16 * 1024 * 1024 + 64;

/// A blocking, message-oriented, bidirectional transport.
///
/// GridFTP's MODE E data channel is block-structured, so a message
/// abstraction (rather than a byte stream) is the natural driver
/// interface; stream transports add 4-byte length framing underneath.
///
/// The zero-copy data plane uses two extension methods: [`Link::recv_into`]
/// receives into a caller-owned buffer (reused across blocks, so the
/// steady-state receive loop does not allocate) and [`Link::send_vectored`]
/// gathers a message from multiple segments (frame header + payload slice)
/// without concatenating them first. Both have default implementations in
/// terms of `recv`/`send`, so existing transports keep working; transports
/// that can do better (TCP) override them.
pub trait Link: Send {
    /// Send one message.
    fn send(&mut self, data: &[u8]) -> io::Result<()>;
    /// Receive one message; `UnexpectedEof` when the peer closed.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
    /// Close the transport (idempotent).
    fn close(&mut self) -> io::Result<()>;

    /// Receive one message into `buf`, returning its length. `buf` is
    /// cleared first; its capacity is reused, so a steady-state receive
    /// loop over same-sized messages performs no allocations.
    ///
    /// The default implementation delegates to [`Link::recv`] and copies.
    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let msg = self.recv()?;
        buf.clear();
        buf.extend_from_slice(&msg);
        Ok(buf.len())
    }

    /// Send one message gathered from `parts` (they form a single frame
    /// on the wire, exactly as if concatenated).
    ///
    /// The default implementation concatenates into a scratch `Vec` and
    /// delegates to [`Link::send`].
    fn send_vectored(&mut self, parts: &[IoSlice<'_>]) -> io::Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut joined = Vec::with_capacity(total);
        for part in parts {
            joined.extend_from_slice(part);
        }
        self.send(&joined)
    }

    /// Bound how long a single `recv`/`recv_into` may block; a blocked
    /// receive then fails with [`io::ErrorKind::TimedOut`] instead of
    /// hanging on a partitioned peer. `None` restores "wait forever".
    ///
    /// The default implementation ignores the deadline (drivers that
    /// cannot time out simply keep their legacy blocking behaviour);
    /// wrapper drivers must forward it to the transport they stack on.
    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let _ = timeout;
        Ok(())
    }
}

impl<L: Link + ?Sized> Link for Box<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        (**self).send(data)
    }
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        (**self).recv()
    }
    fn close(&mut self) -> io::Result<()> {
        (**self).close()
    }
    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        (**self).recv_into(buf)
    }
    fn send_vectored(&mut self, parts: &[IoSlice<'_>]) -> io::Result<()> {
        (**self).send_vectored(parts)
    }
    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        (**self).set_recv_timeout(timeout)
    }
}

// ---------------------------------------------------------------------------
// In-process pipe
// ---------------------------------------------------------------------------

/// One end of an in-process message pipe.
pub struct PipeLink {
    tx: Option<crossbeam::channel::Sender<Vec<u8>>>,
    rx: crossbeam::channel::Receiver<Vec<u8>>,
    recv_timeout: Option<Duration>,
}

/// Create a connected pair of pipe links. The channel is bounded so a
/// fast sender experiences backpressure like a real socket buffer.
pub fn pipe() -> (PipeLink, PipeLink) {
    let (tx_a, rx_a) = crossbeam::channel::bounded(64);
    let (tx_b, rx_b) = crossbeam::channel::bounded(64);
    (
        PipeLink { tx: Some(tx_a), rx: rx_b, recv_timeout: None },
        PipeLink { tx: Some(tx_b), rx: rx_a, recv_timeout: None },
    )
}

impl Link for PipeLink {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        match &self.tx {
            Some(tx) => tx
                .send(data.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe peer closed")),
            None => Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed locally")),
        }
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        match self.recv_timeout {
            None => self
                .rx
                .recv()
                .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "pipe peer closed")),
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => {
                    io::Error::new(io::ErrorKind::TimedOut, "pipe recv timed out")
                }
                crossbeam::channel::RecvTimeoutError::Disconnected => {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "pipe peer closed")
                }
            }),
        }
    }

    fn close(&mut self) -> io::Result<()> {
        self.tx = None;
        Ok(())
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        // The channel hands over an owned Vec; moving it into `buf` avoids
        // the default implementation's copy.
        *buf = self.recv()?;
        Ok(buf.len())
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.recv_timeout = timeout;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// TCP with length framing
// ---------------------------------------------------------------------------

/// A TCP stream carrying length-framed messages.
pub struct TcpLink {
    stream: TcpStream,
    closed: bool,
}

impl TcpLink {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        // Nagle hurts small control messages badly; GridFTP disables it.
        let _ = stream.set_nodelay(true);
        TcpLink { stream, closed: false }
    }

    /// Connect to an address.
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }

    /// The underlying stream (e.g. for peer-address logging).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Normalize a read-deadline failure: non-blocking sockets report
/// `WouldBlock` on some platforms where others report `TimedOut`.
fn map_timeout(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, "tcp recv timed out")
    } else {
        e
    }
}

impl Link for TcpLink {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        if data.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds maximum", data.len()),
            ));
        }
        self.stream.write_all(&(data.len() as u32).to_be_bytes())?;
        self.stream.write_all(data)?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.recv_into(&mut buf)?;
        Ok(buf)
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf).map_err(map_timeout)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds maximum"),
            ));
        }
        buf.clear();
        buf.resize(len, 0);
        self.stream.read_exact(buf).map_err(map_timeout)?;
        Ok(len)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send_vectored(&mut self, parts: &[IoSlice<'_>]) -> io::Result<()> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if total > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {total} bytes exceeds maximum"),
            ));
        }
        // One frame on the wire: length prefix, then each segment in
        // order, no intermediate concatenation buffer.
        self.stream.write_all(&(total as u32).to_be_bytes())?;
        for part in parts {
            self.stream.write_all(part)?;
        }
        self.stream.flush()
    }

    fn close(&mut self) -> io::Result<()> {
        if !self.closed {
            self.closed = true;
            // Ignore NotConnected: peer may have shut down first.
            match self.stream.shutdown(Shutdown::Both) {
                Err(e) if e.kind() != io::ErrorKind::NotConnected => return Err(e),
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = pipe();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"world");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn pipe_close_gives_eof() {
        let (mut a, mut b) = pipe();
        a.send(b"last").unwrap();
        a.close().unwrap();
        assert_eq!(b.recv().unwrap(), b"last");
        assert_eq!(b.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(a.send(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        // close is idempotent
        a.close().unwrap();
    }

    #[test]
    fn pipe_send_after_peer_drop_fails() {
        let (mut a, b) = pipe();
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut link = TcpLink::new(s);
            let msg = link.recv().unwrap();
            link.send(&msg).unwrap(); // echo
            let empty = link.recv().unwrap();
            assert!(empty.is_empty());
            link.send(b"done").unwrap();
        });
        let mut link = TcpLink::connect(addr).unwrap();
        link.send(b"echo me").unwrap();
        assert_eq!(link.recv().unwrap(), b"echo me");
        link.send(b"").unwrap();
        assert_eq!(link.recv().unwrap(), b"done");
        link.close().unwrap();
        link.close().unwrap(); // idempotent
        server.join().unwrap();
    }

    #[test]
    fn tcp_peer_close_gives_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            drop(s);
        });
        let mut link = TcpLink::connect(addr).unwrap();
        server.join().unwrap();
        assert!(link.recv().is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Claim a bogus gigantic frame.
            s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        });
        let mut link = TcpLink::connect(addr).unwrap();
        t.join().unwrap();
        assert_eq!(link.recv().unwrap_err().kind(), io::ErrorKind::InvalidData);
        let big = vec![0u8; MAX_FRAME + 1];
        assert_eq!(link.send(&big).unwrap_err().kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn pipe_recv_timeout_yields_timed_out() {
        let (_a, mut b) = pipe();
        b.set_recv_timeout(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(b.recv().unwrap_err().kind(), io::ErrorKind::TimedOut);
        // Clearing the deadline restores blocking behaviour; peer close
        // still surfaces as EOF, not a timeout.
        let (a2, mut b2) = pipe();
        b2.set_recv_timeout(Some(Duration::from_millis(20))).unwrap();
        drop(a2);
        assert_eq!(b2.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn tcp_recv_timeout_yields_timed_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut link = TcpLink::connect(addr).unwrap();
        link.set_recv_timeout(Some(Duration::from_millis(30))).unwrap();
        let err = link.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        drop(hold.join().unwrap().unwrap());
    }

    #[test]
    fn boxed_link_works() {
        let (a, mut b) = pipe();
        let mut boxed: Box<dyn Link> = Box::new(a);
        boxed.send(b"via box").unwrap();
        assert_eq!(b.recv().unwrap(), b"via box");
        boxed.close().unwrap();
    }

    #[test]
    fn recv_into_reuses_buffer() {
        let (mut a, mut b) = pipe();
        let mut buf = Vec::new();
        a.send(b"first message").unwrap();
        assert_eq!(b.recv_into(&mut buf).unwrap(), 13);
        assert_eq!(&buf, b"first message");
        // A shorter message must fully replace the previous contents.
        a.send(b"2nd").unwrap();
        assert_eq!(b.recv_into(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"2nd");
    }

    #[test]
    fn send_vectored_matches_concatenated() {
        let (mut a, mut b) = pipe();
        a.send_vectored(&[
            IoSlice::new(b"head"),
            IoSlice::new(b""),
            IoSlice::new(b"-body"),
        ])
        .unwrap();
        assert_eq!(b.recv().unwrap(), b"head-body");
    }

    #[test]
    fn tcp_vectored_and_recv_into_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut link = TcpLink::new(s);
            let mut buf = Vec::new();
            let n = link.recv_into(&mut buf).unwrap();
            assert_eq!(n, buf.len());
            link.send(&buf).unwrap(); // echo
            let n = link.recv_into(&mut buf).unwrap();
            assert_eq!(n, 0);
            assert!(buf.is_empty());
        });
        let mut link = TcpLink::connect(addr).unwrap();
        link.send_vectored(&[IoSlice::new(b"hdr|"), IoSlice::new(b"payload")])
            .unwrap();
        assert_eq!(link.recv().unwrap(), b"hdr|payload");
        link.send_vectored(&[]).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn tcp_vectored_oversize_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let _ = listener.accept();
        });
        let mut link = TcpLink::connect(addr).unwrap();
        let big = vec![0u8; MAX_FRAME];
        let err = link
            .send_vectored(&[IoSlice::new(&big), IoSlice::new(b"x")])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
