//! Deterministic timing helpers for timing-sensitive tests.
//!
//! Two flake patterns kept showing up across the tree:
//!
//! * tests that build `Instant`s by hand (`wheel` deadlines, retry
//!   deadlines) and then race the real clock, and
//! * budget assertions (E13/E14 latency and RSS ceilings) whose single
//!   measurement loses to scheduler noise on a loaded single-core CI
//!   box even though the budget comfortably holds on re-measure.
//!
//! This module centralizes the fixes: a [`ManualClock`] that only moves
//! when the test says so, an [`eventually`] poll-with-deadline that
//! replaces hand-rolled sleep loops, and [`retry_measurement`] for
//! budget assertions that should re-measure (bounded, with backoff)
//! before declaring a regression. Test support only — nothing in the
//! production paths uses this module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A clock that advances only on request. Cloned handles share the same
/// timeline, so a sleep hook on one thread moves time for assertions on
/// another.
#[derive(Clone, Debug)]
pub struct ManualClock {
    base: Instant,
    offset_ns: Arc<AtomicU64>,
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl ManualClock {
    /// A fresh clock anchored at (real) now, with zero offset.
    pub fn new() -> ManualClock {
        ManualClock { base: Instant::now(), offset_ns: Arc::new(AtomicU64::new(0)) }
    }

    /// The current manual time.
    pub fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.offset_ns.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Total manual time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }

    /// The instant `offset` past the clock's origin — for scheduling
    /// absolute deadlines ("the wheel entry due at t=50 ms").
    pub fn at(&self, offset: Duration) -> Instant {
        self.base + offset
    }

    /// [`ManualClock::at`] in milliseconds.
    pub fn at_ms(&self, ms: u64) -> Instant {
        self.at(Duration::from_millis(ms))
    }

    /// A sleep hook for APIs that take one (e.g.
    /// [`crate::retry::RetryPolicy::run_clocked`]): instead of blocking,
    /// it advances this clock.
    pub fn sleeper(&self) -> impl FnMut(Duration) {
        let clock = self.clone();
        move |d| clock.advance(d)
    }

    /// A now hook for the same APIs.
    pub fn now_fn(&self) -> impl Fn() -> Instant {
        let clock = self.clone();
        move || clock.now()
    }
}

/// Poll `cond` every `poll` until it holds; panic with `what` after
/// `timeout`. Replaces the hand-rolled `while !cond { sleep }` loops
/// that either spun forever or carried their own ad-hoc deadlines.
pub fn eventually(timeout: Duration, poll: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for: {what}"
        );
        std::thread::sleep(poll);
    }
}

/// Run a budget measurement up to `rounds` times, passing if any round
/// passes. A measurement returns `Ok(())` within budget or
/// `Err(description)` over it; between rounds the harness backs off
/// (50 ms, 100 ms, 200 ms, ...) to let a transient load spike drain. A
/// genuine regression fails every round and still fails the test — this
/// trades a bounded amount of retry latency for not flaking tier-1 when
/// the CI box is briefly busy.
pub fn retry_measurement(rounds: u32, what: &str, mut measure: impl FnMut() -> Result<(), String>) {
    assert!(rounds > 0);
    let mut last = String::new();
    for round in 0..rounds {
        match measure() {
            Ok(()) => return,
            Err(e) => {
                last = e;
                if round + 1 < rounds {
                    std::thread::sleep(Duration::from_millis(50u64 << round.min(4)));
                }
            }
        }
    }
    panic!("{what}: over budget in all {rounds} rounds; last: {last}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        let t0 = c.now();
        assert_eq!(c.now(), t0);
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now() - t0, Duration::from_millis(250));
        assert_eq!(c.elapsed(), Duration::from_millis(250));
        assert_eq!(c.at_ms(100), t0 + Duration::from_millis(100));
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = ManualClock::new();
        let b = a.clone();
        b.advance(Duration::from_secs(3));
        assert_eq!(a.elapsed(), Duration::from_secs(3));
        let mut sleep = a.sleeper();
        sleep(Duration::from_secs(1));
        assert_eq!(b.elapsed(), Duration::from_secs(4));
        assert_eq!((a.now_fn())(), b.now());
    }

    #[test]
    fn eventually_passes_once_cond_holds() {
        let mut n = 0;
        eventually(Duration::from_secs(5), Duration::from_millis(1), "count to 3", || {
            n += 1;
            n >= 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    #[should_panic(expected = "waiting for: never")]
    fn eventually_panics_on_timeout() {
        eventually(Duration::from_millis(20), Duration::from_millis(1), "never", || false);
    }

    #[test]
    fn retry_measurement_passes_on_a_later_round() {
        let mut round = 0;
        retry_measurement(3, "flaky budget", || {
            round += 1;
            if round < 3 {
                Err(format!("noisy round {round}"))
            } else {
                Ok(())
            }
        });
        assert_eq!(round, 3);
    }

    #[test]
    #[should_panic(expected = "over budget in all 2 rounds")]
    fn retry_measurement_fails_a_real_regression() {
        retry_measurement(2, "real regression", || Err("always over".to_string()));
    }
}
