//! Telemetry driver: counts bytes and messages through a link.
//!
//! This is the per-transfer accounting behind the usage reporting of
//! Fig 1 ("based on reporting from GridFTP servers that choose to enable
//! reporting") and the performance markers GridFTP emits mid-transfer.

use crate::link::Link;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared counters; clone the `Arc` to watch a live transfer.
#[derive(Debug)]
pub struct Counters {
    /// Bytes sent through the link.
    pub bytes_sent: AtomicU64,
    /// Bytes received through the link.
    pub bytes_received: AtomicU64,
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Messages received.
    pub msgs_received: AtomicU64,
    start: Mutex<Instant>,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_received: AtomicU64::new(0),
            start: Mutex::new(Instant::now()),
        }
    }
}

impl Counters {
    /// Fresh shared counters.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Reset counts and the clock.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.msgs_received.store(0, Ordering::Relaxed);
        *self.start.lock() = Instant::now();
    }

    /// Seconds since creation/reset.
    pub fn elapsed_s(&self) -> f64 {
        self.start.lock().elapsed().as_secs_f64()
    }

    /// Mean send throughput since reset, bytes/second.
    pub fn send_throughput(&self) -> f64 {
        let e = self.elapsed_s();
        if e > 0.0 {
            self.bytes_sent.load(Ordering::Relaxed) as f64 / e
        } else {
            0.0
        }
    }
}

/// A counting wrapper around any [`Link`].
pub struct Telemetry<L: Link> {
    inner: L,
    counters: Arc<Counters>,
}

impl<L: Link> Telemetry<L> {
    /// Wrap `inner`, reporting into `counters`.
    pub fn new(inner: L, counters: Arc<Counters>) -> Self {
        Telemetry { inner, counters }
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// Unwrap.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: Link> Link for Telemetry<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.send(data)?;
        self.counters.bytes_sent.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let msg = self.inner.recv()?;
        self.counters
            .bytes_received
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.counters.msgs_received.fetch_add(1, Ordering::Relaxed);
        Ok(msg)
    }

    fn close(&mut self) -> io::Result<()> {
        self.inner.close()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let n = self.inner.recv_into(buf)?;
        self.counters.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
        self.counters.msgs_received.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        self.inner.send_vectored(parts)?;
        let total: u64 = parts.iter().map(|p| p.len() as u64).sum();
        self.counters.bytes_sent.fetch_add(total, Ordering::Relaxed);
        self.counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;

    #[test]
    fn vectored_and_recv_into_counted() {
        let (a, b) = pipe();
        let ca = Counters::new();
        let cb = Counters::new();
        let mut ta = Telemetry::new(a, Arc::clone(&ca));
        let mut tb = Telemetry::new(b, Arc::clone(&cb));
        ta.send_vectored(&[io::IoSlice::new(b"head"), io::IoSlice::new(b"tail!")])
            .unwrap();
        let mut buf = Vec::new();
        assert_eq!(tb.recv_into(&mut buf).unwrap(), 9);
        assert_eq!(ca.bytes_sent.load(Ordering::Relaxed), 9);
        assert_eq!(ca.msgs_sent.load(Ordering::Relaxed), 1);
        assert_eq!(cb.bytes_received.load(Ordering::Relaxed), 9);
        assert_eq!(cb.msgs_received.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn counts_both_directions() {
        let (a, b) = pipe();
        let ca = Counters::new();
        let cb = Counters::new();
        let mut ta = Telemetry::new(a, Arc::clone(&ca));
        let mut tb = Telemetry::new(b, Arc::clone(&cb));
        ta.send(b"12345").unwrap();
        ta.send(b"678").unwrap();
        assert_eq!(tb.recv().unwrap(), b"12345");
        assert_eq!(tb.recv().unwrap(), b"678");
        tb.send(b"x").unwrap();
        assert_eq!(ta.recv().unwrap(), b"x");
        assert_eq!(ca.bytes_sent.load(Ordering::Relaxed), 8);
        assert_eq!(ca.msgs_sent.load(Ordering::Relaxed), 2);
        assert_eq!(ca.bytes_received.load(Ordering::Relaxed), 1);
        assert_eq!(cb.bytes_received.load(Ordering::Relaxed), 8);
        assert_eq!(cb.msgs_received.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn failed_send_not_counted() {
        let (a, b) = pipe();
        drop(b);
        let c = Counters::new();
        let mut t = Telemetry::new(a, Arc::clone(&c));
        assert!(t.send(b"lost").is_err());
        assert_eq!(c.bytes_sent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reset_and_throughput() {
        let (a, mut b) = pipe();
        let c = Counters::new();
        let mut t = Telemetry::new(a, Arc::clone(&c));
        t.send(&vec![0u8; 1000]).unwrap();
        let _ = b.recv().unwrap();
        assert!(c.send_throughput() > 0.0);
        c.reset();
        assert_eq!(c.bytes_sent.load(Ordering::Relaxed), 0);
    }
}
