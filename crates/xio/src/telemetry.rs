//! Telemetry driver: counts bytes and messages through a link.
//!
//! This is the per-transfer accounting behind the usage reporting of
//! Fig 1 ("based on reporting from GridFTP servers that choose to enable
//! reporting") and the performance markers GridFTP emits mid-transfer.

use crate::link::Link;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide epoch so the start instant can live in an atomic as a
/// nanosecond offset instead of behind a `Mutex<Instant>` — `elapsed_s`
/// sits on the hot throughput path.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn nanos_since_epoch() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// Shared counters; clone the `Arc` to watch a live transfer.
#[derive(Debug)]
pub struct Counters {
    /// Bytes sent through the link.
    pub bytes_sent: AtomicU64,
    /// Bytes received through the link.
    pub bytes_received: AtomicU64,
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Messages received.
    pub msgs_received: AtomicU64,
    /// Creation/reset time as nanoseconds past [`process_epoch`].
    start_nanos: AtomicU64,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_received: AtomicU64::new(0),
            start_nanos: AtomicU64::new(nanos_since_epoch()),
        }
    }
}

impl Counters {
    /// Fresh shared counters.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Reset counts and the clock.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.msgs_received.store(0, Ordering::Relaxed);
        self.start_nanos.store(nanos_since_epoch(), Ordering::Relaxed);
    }

    /// Seconds since creation/reset. Lock-free.
    pub fn elapsed_s(&self) -> f64 {
        let start = self.start_nanos.load(Ordering::Relaxed);
        nanos_since_epoch().saturating_sub(start) as f64 / 1e9
    }

    /// Mean send throughput since reset, bytes/second.
    pub fn send_throughput(&self) -> f64 {
        let e = self.elapsed_s();
        if e > 0.0 {
            self.bytes_sent.load(Ordering::Relaxed) as f64 / e
        } else {
            0.0
        }
    }

    /// Mean receive throughput since reset, bytes/second.
    pub fn recv_throughput(&self) -> f64 {
        let e = self.elapsed_s();
        if e > 0.0 {
            self.bytes_received.load(Ordering::Relaxed) as f64 / e
        } else {
            0.0
        }
    }

    /// Publish a snapshot of these counters into an `ig-obs` registry as
    /// `{prefix}.*` gauges, so `SITE STATS`-style consumers read the
    /// same numbers the link accounting produced.
    pub fn export_into(&self, registry: &ig_obs::Registry, prefix: &str) {
        let set = |name: &str, v: f64| registry.set_gauge(&format!("{prefix}.{name}"), v);
        set("bytes_sent", self.bytes_sent.load(Ordering::Relaxed) as f64);
        set("bytes_received", self.bytes_received.load(Ordering::Relaxed) as f64);
        set("msgs_sent", self.msgs_sent.load(Ordering::Relaxed) as f64);
        set("msgs_received", self.msgs_received.load(Ordering::Relaxed) as f64);
        set("send_throughput", self.send_throughput());
        set("recv_throughput", self.recv_throughput());
    }
}

/// A counting wrapper around any [`Link`].
pub struct Telemetry<L: Link> {
    inner: L,
    counters: Arc<Counters>,
}

impl<L: Link> Telemetry<L> {
    /// Wrap `inner`, reporting into `counters`.
    pub fn new(inner: L, counters: Arc<Counters>) -> Self {
        Telemetry { inner, counters }
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// Unwrap.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: Link> Link for Telemetry<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.send(data)?;
        self.counters.bytes_sent.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let msg = self.inner.recv()?;
        self.counters
            .bytes_received
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        self.counters.msgs_received.fetch_add(1, Ordering::Relaxed);
        Ok(msg)
    }

    fn close(&mut self) -> io::Result<()> {
        self.inner.close()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let n = self.inner.recv_into(buf)?;
        self.counters.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
        self.counters.msgs_received.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        self.inner.send_vectored(parts)?;
        let total: u64 = parts.iter().map(|p| p.len() as u64).sum();
        self.counters.bytes_sent.fetch_add(total, Ordering::Relaxed);
        self.counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;

    #[test]
    fn vectored_and_recv_into_counted() {
        let (a, b) = pipe();
        let ca = Counters::new();
        let cb = Counters::new();
        let mut ta = Telemetry::new(a, Arc::clone(&ca));
        let mut tb = Telemetry::new(b, Arc::clone(&cb));
        ta.send_vectored(&[io::IoSlice::new(b"head"), io::IoSlice::new(b"tail!")])
            .unwrap();
        let mut buf = Vec::new();
        assert_eq!(tb.recv_into(&mut buf).unwrap(), 9);
        assert_eq!(ca.bytes_sent.load(Ordering::Relaxed), 9);
        assert_eq!(ca.msgs_sent.load(Ordering::Relaxed), 1);
        assert_eq!(cb.bytes_received.load(Ordering::Relaxed), 9);
        assert_eq!(cb.msgs_received.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn counts_both_directions() {
        let (a, b) = pipe();
        let ca = Counters::new();
        let cb = Counters::new();
        let mut ta = Telemetry::new(a, Arc::clone(&ca));
        let mut tb = Telemetry::new(b, Arc::clone(&cb));
        ta.send(b"12345").unwrap();
        ta.send(b"678").unwrap();
        assert_eq!(tb.recv().unwrap(), b"12345");
        assert_eq!(tb.recv().unwrap(), b"678");
        tb.send(b"x").unwrap();
        assert_eq!(ta.recv().unwrap(), b"x");
        assert_eq!(ca.bytes_sent.load(Ordering::Relaxed), 8);
        assert_eq!(ca.msgs_sent.load(Ordering::Relaxed), 2);
        assert_eq!(ca.bytes_received.load(Ordering::Relaxed), 1);
        assert_eq!(cb.bytes_received.load(Ordering::Relaxed), 8);
        assert_eq!(cb.msgs_received.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn failed_send_not_counted() {
        let (a, b) = pipe();
        drop(b);
        let c = Counters::new();
        let mut t = Telemetry::new(a, Arc::clone(&c));
        assert!(t.send(b"lost").is_err());
        assert_eq!(c.bytes_sent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reset_and_throughput() {
        let (a, mut b) = pipe();
        let c = Counters::new();
        let mut t = Telemetry::new(a, Arc::clone(&c));
        t.send(&vec![0u8; 1000]).unwrap();
        let _ = b.recv().unwrap();
        assert!(c.send_throughput() > 0.0);
        c.reset();
        assert_eq!(c.bytes_sent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn recv_throughput_and_registry_export() {
        let (a, b) = pipe();
        let c = Counters::new();
        let mut ta = Telemetry::new(a, Counters::new());
        let mut tb = Telemetry::new(b, Arc::clone(&c));
        ta.send(&[1u8; 500]).unwrap();
        assert_eq!(tb.recv().unwrap().len(), 500);
        assert!(c.recv_throughput() > 0.0);
        let reg = ig_obs::Registry::new();
        c.export_into(&reg, "link");
        assert_eq!(reg.gauge_value("link.bytes_received"), 500.0);
        assert_eq!(reg.gauge_value("link.msgs_received"), 1.0);
        assert!(reg.gauge_value("link.recv_throughput") > 0.0);
        // Re-export after more traffic: snapshot follows the counters.
        ta.send(&[1u8; 100]).unwrap();
        assert_eq!(tb.recv().unwrap().len(), 100);
        c.export_into(&reg, "link");
        assert_eq!(reg.gauge_value("link.bytes_received"), 600.0);
    }
}
