//! A std-only epoll driver: the readiness backend for the reactor core.
//!
//! GridFTP's event-driven frontends multiplex tens of thousands of
//! mostly-idle control sessions over one thread; the enabling primitive
//! is a readiness queue. This module wraps `epoll(7)` (plus `eventfd(2)`
//! for cross-thread wakeups and `poll(2)` for one-shot writability
//! waits) through minimal `extern "C"` declarations — libc is already
//! linked into every Rust binary, so no new dependency is needed.
//!
//! Only compiled on Linux; the reactor server core is gated on the same
//! cfg and the blocking thread-per-session core remains the portable
//! fallback.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// epoll_event is packed on x86_64 only (kernel ABI quirk).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const POLLOUT: i16 = 0x004;

/// Which readiness kinds a registration asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness event: the registered token plus what fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup — the fd needs attention regardless of interest.
    pub error: bool,
}

/// Thin owning wrapper over an epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest.mask(), data: token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait for readiness, appending into `out`. `None` blocks forever.
    /// Returns the number of events delivered. EINTR retries.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let rc =
                unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), buf.len() as c_int, ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for e in &buf[..n] {
            let bits = e.events;
            out.push(Event {
                token: e.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An `eventfd(2)` wakeup handle: any thread may [`WakeFd::wake`] the
/// reactor; the reactor registers the fd for readability and
/// [`WakeFd::drain`]s it on delivery.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    pub fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Signal the reactor. Safe from any thread; saturation (EAGAIN on a
    /// full counter) still leaves the fd readable, so it is ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, &one as *const u64 as *const c_void, 8) };
    }

    /// Consume all pending wakeups.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        loop {
            let rc = unsafe { read(self.fd, &mut buf as *mut u64 as *mut c_void, 8) };
            if rc <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// Safety: the fd is only ever written (wake) or read (drain); both are
// atomic syscalls on an eventfd.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

/// Block the *calling* thread until `fd` is writable or `timeout`
/// elapses. Used by pool workers that share a reactor-owned nonblocking
/// socket: a short stall waits here instead of spinning.
///
/// Returns `true` if writable, `false` on timeout.
pub fn wait_writable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    let mut pfd = PollFd { fd, events: POLLOUT, revents: 0 };
    let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
    loop {
        let rc = unsafe { poll(&mut pfd, 1, ms) };
        if rc > 0 {
            return Ok(true);
        }
        if rc == 0 {
            return Ok(false);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wakefd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw_fd(), 7, Interest::READ).unwrap();

        // Nothing pending: a short wait times out.
        let mut evs = Vec::new();
        assert_eq!(ep.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(), 0);

        wake.wake();
        wake.wake();
        let n = ep.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);
        wake.drain();

        // Drained: back to quiescent.
        evs.clear();
        assert_eq!(ep.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn tcp_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, Interest::BOTH).unwrap();

        // A fresh socket is writable immediately.
        let mut evs = Vec::new();
        ep.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 42 && e.writable));

        // Narrow to read interest; nothing to read yet.
        ep.modify(server.as_raw_fd(), 42, Interest::READ).unwrap();
        evs.clear();
        assert_eq!(ep.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        evs.clear();
        ep.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        ep.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn wait_writable_reports_timeout_and_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        // Loopback socket with an empty send buffer: writable at once.
        assert!(wait_writable(client.as_raw_fd(), Duration::from_secs(1)).unwrap());
    }
}
