//! The unified retry/timeout/backoff policy.
//!
//! The paper's robustness story (§VI, Fig 6) is that a failed transfer is
//! transparently restarted from the last checkpoint. Every layer that
//! retries — the client dialing a control channel, a third-party transfer
//! resuming from a restart marker, the hosted service re-authenticating
//! with stored short-term credentials — consumes one [`RetryPolicy`]
//! instead of a hand-rolled loop, so attempt budgets, per-attempt I/O
//! deadlines and backoff jitter are configured (and tested) in one place.
//!
//! Jitter is *seeded*: `backoff(attempt)` is a pure function of
//! `(policy.seed, attempt)`, so a failing schedule replays exactly.

use std::time::{Duration, Instant};

/// Exponential backoff with seeded jitter plus per-attempt and overall
/// deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); `1` means "no retries".
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a seeded
    /// factor drawn from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// I/O deadline applied to each attempt (control-channel reads,
    /// data-channel idle). `None` = wait forever (legacy behaviour).
    pub attempt_timeout: Option<Duration>,
    /// Budget for the whole operation including backoff sleeps.
    pub overall_deadline: Option<Duration>,
    /// Seed for the jitter schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(10),
            multiplier: 2.0,
            jitter: 0.1,
            attempt_timeout: Some(Duration::from_secs(30)),
            overall_deadline: None,
            seed: 0,
        }
    }
}

/// Why a retried operation ultimately gave up.
#[derive(Debug)]
pub enum RetryError<E> {
    /// Every attempt failed; `last` is the final error.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's error.
        last: E,
    },
    /// The overall deadline expired before the attempt budget did.
    DeadlineExceeded {
        /// Attempts made before the deadline cut in.
        attempts: u32,
        /// The last attempt's error, if any attempt ran.
        last: Option<E>,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            RetryError::DeadlineExceeded { attempts, last: Some(e) } => {
                write!(f, "deadline exceeded after {attempts} attempt(s): {e}")
            }
            RetryError::DeadlineExceeded { attempts, last: None } => {
                write!(f, "deadline exceeded after {attempts} attempt(s)")
            }
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for RetryError<E> {}

impl<E> RetryError<E> {
    /// The last underlying error, if one exists.
    pub fn last(&self) -> Option<&E> {
        match self {
            RetryError::Exhausted { last, .. } => Some(last),
            RetryError::DeadlineExceeded { last, .. } => last.as_ref(),
        }
    }

    /// Consume the error, yielding the last underlying error if any.
    pub fn into_last(self) -> Option<E> {
        match self {
            RetryError::Exhausted { last, .. } => Some(last),
            RetryError::DeadlineExceeded { last, .. } => last,
        }
    }

    /// Attempts made before giving up.
    pub fn attempts(&self) -> u32 {
        match self {
            RetryError::Exhausted { attempts, .. }
            | RetryError::DeadlineExceeded { attempts, .. } => *attempts,
        }
    }
}

/// SplitMix64 — the deterministic scrambler behind jitter and the chaos
/// layer's per-link seeds. Small, public-domain, and allocation-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A single attempt with no deadlines — the legacy "just try once"
    /// behaviour callers had before the policy existed.
    pub fn once() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            attempt_timeout: None,
            overall_deadline: None,
            seed: 0,
        }
    }

    /// `attempts` immediate retries (zero backoff) with no deadlines —
    /// what the hosted service's `max_retries` knob historically meant.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            attempt_timeout: None,
            overall_deadline: None,
            seed: 0,
        }
    }

    /// A tight policy for tests: zero backoff, short per-attempt I/O
    /// deadline, so chaotic peers yield typed timeouts instead of hangs.
    pub fn fast_test(attempts: u32, attempt_timeout: Duration) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            attempt_timeout: Some(attempt_timeout),
            overall_deadline: None,
            seed: 0,
        }
    }

    /// Builder: seed for the jitter schedule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: per-attempt I/O deadline.
    pub fn with_attempt_timeout(mut self, t: Option<Duration>) -> Self {
        self.attempt_timeout = t;
        self
    }

    /// Builder: overall deadline.
    pub fn with_overall_deadline(mut self, t: Option<Duration>) -> Self {
        self.overall_deadline = t;
        self
    }

    /// The backoff to sleep after `attempt` (1-based) failed.
    /// Deterministic in `(seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        // Seeded jitter in [1 - jitter, 1 + jitter].
        let unit = splitmix64(self.seed ^ u64::from(attempt)) as f64 / u64::MAX as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// [`Self::run`] with per-attempt trace events: `retry.attempt`
    /// before each try, `retry.ok`/`retry.err` after, all tagged with
    /// `op` so a chaos trace shows exactly which layer retried and why.
    /// Also bumps the `xio.retry_attempts` counter.
    pub fn run_with_obs<T, E: std::fmt::Display>(
        &self,
        obs: &ig_obs::Obs,
        label: &str,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, RetryError<E>> {
        self.run(|attempt| {
            obs.event(
                "retry.attempt",
                vec![ig_obs::kv("op", label), ig_obs::kv("attempt", attempt)],
            );
            obs.metrics().add("xio.retry_attempts", 1);
            let out = op(attempt);
            match &out {
                Ok(_) => obs.event(
                    "retry.ok",
                    vec![ig_obs::kv("op", label), ig_obs::kv("attempt", attempt)],
                ),
                Err(e) => obs.event(
                    "retry.err",
                    vec![
                        ig_obs::kv("op", label),
                        ig_obs::kv("attempt", attempt),
                        ig_obs::kv("error", e.to_string()),
                    ],
                ),
            }
            out
        })
    }

    /// Run `op` under this policy. `op` receives the 1-based attempt
    /// number; backoff sleeps happen between failed attempts, clamped so
    /// the overall deadline is never slept past.
    pub fn run<T, E>(&self, op: impl FnMut(u32) -> Result<T, E>) -> Result<T, RetryError<E>> {
        self.run_clocked(Instant::now, |d| std::thread::sleep(d), op)
    }

    /// [`Self::run`] with injectable time: `now` supplies the clock and
    /// `sleep` performs the backoff waits. Production callers go through
    /// [`Self::run`] (real clock, real sleeps); deterministic tests pass
    /// a [`crate::test_support::ManualClock`]'s hooks so deadline and
    /// backoff schedules replay exactly with zero wall-clock waiting.
    pub fn run_clocked<T, E>(
        &self,
        now: impl Fn() -> Instant,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, RetryError<E>> {
        let start = now();
        let mut attempt = 0u32;
        loop {
            if let Some(deadline) = self.overall_deadline {
                if now().saturating_duration_since(start) >= deadline {
                    return Err(RetryError::DeadlineExceeded { attempts: attempt, last: None });
                }
            }
            attempt += 1;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= self.max_attempts {
                        return Err(RetryError::Exhausted { attempts: attempt, last: e });
                    }
                    let backoff = self.backoff(attempt);
                    if let Some(deadline) = self.overall_deadline {
                        if now().saturating_duration_since(start) + backoff >= deadline {
                            return Err(RetryError::DeadlineExceeded {
                                attempts: attempt,
                                last: Some(e),
                            });
                        }
                    }
                    if !backoff.is_zero() {
                        sleep(backoff);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy { seed: 42, ..RetryPolicy::default() };
        let a1 = p.backoff(1);
        let a2 = p.backoff(2);
        let a3 = p.backoff(3);
        // Replays exactly.
        assert_eq!(a1, p.backoff(1));
        assert_eq!(a3, p.backoff(3));
        // Grows roughly exponentially despite jitter (jitter is ±10%).
        assert!(a2 > a1, "{a2:?} vs {a1:?}");
        assert!(a3 > a2, "{a3:?} vs {a2:?}");
        // Different seeds give different jitter.
        let q = RetryPolicy { seed: 43, ..RetryPolicy::default() };
        assert_ne!(p.backoff(1), q.backoff(1));
    }

    #[test]
    fn backoff_caps_at_max() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(250),
            multiplier: 10.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(5), Duration::from_millis(250));
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy::immediate(5);
        let mut calls = 0u32;
        let out: Result<u32, RetryError<&str>> = p.run(|attempt| {
            calls += 1;
            if attempt < 3 {
                Err("boom")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_exhausts_attempts() {
        let p = RetryPolicy::immediate(2);
        let err = p.run(|_| Err::<(), _>("nope")).unwrap_err();
        assert_eq!(err.attempts(), 2);
        assert_eq!(*err.last().unwrap(), "nope");
        assert!(err.to_string().contains("2 attempt"));
    }

    #[test]
    fn overall_deadline_stops_the_loop() {
        // Manual clock: the schedule is exact, not a wall-clock race.
        // 20ms backoff against a 60ms deadline admits attempts at t=0,
        // 20, 40; the sleep after the third would land on the deadline,
        // so the loop stops at exactly 3 attempts.
        let p = RetryPolicy {
            max_attempts: 1000,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            multiplier: 1.0,
            jitter: 0.0,
            attempt_timeout: None,
            overall_deadline: Some(Duration::from_millis(60)),
            seed: 0,
        };
        let clock = crate::test_support::ManualClock::new();
        let err = p
            .run_clocked(clock.now_fn(), clock.sleeper(), |_| Err::<(), _>("always"))
            .unwrap_err();
        assert!(matches!(err, RetryError::DeadlineExceeded { attempts: 3, last: Some("always") }));
        assert_eq!(clock.elapsed(), Duration::from_millis(40), "two sleeps happened");
    }

    #[test]
    fn expired_deadline_refuses_to_start() {
        // A zero budget means not even the first attempt runs.
        let p = RetryPolicy::default().with_overall_deadline(Some(Duration::ZERO));
        let clock = crate::test_support::ManualClock::new();
        let err = p
            .run_clocked(clock.now_fn(), clock.sleeper(), |_| Err::<(), _>("unreachable"))
            .unwrap_err();
        assert!(matches!(err, RetryError::DeadlineExceeded { attempts: 0, last: None }));
    }

    #[test]
    fn once_is_a_single_attempt() {
        let p = RetryPolicy::once();
        let mut calls = 0;
        let _ = p.run(|_| {
            calls += 1;
            Err::<(), _>(())
        });
        assert_eq!(calls, 1);
        assert_eq!(p.backoff(1), Duration::ZERO);
    }

    #[test]
    fn run_with_obs_traces_attempts() {
        let p = RetryPolicy::immediate(3);
        let obs = ig_obs::Obs::new("retry-test");
        let out: Result<u32, RetryError<&str>> = p.run_with_obs(&obs, "dial", |attempt| {
            if attempt < 2 {
                Err("refused")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(obs.count_events("retry.attempt"), 2);
        assert_eq!(obs.count_events("retry.err"), 1);
        assert_eq!(obs.count_events("retry.ok"), 1);
        assert_eq!(obs.metrics().counter_value("xio.retry_attempts"), 2);
        let trace = obs.export_stable();
        assert!(trace.contains("\"op\":\"dial\""), "{trace}");
        assert!(trace.contains("\"error\":\"refused\""), "{trace}");
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the scrambler: chaos schedules and jitter depend on it.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
