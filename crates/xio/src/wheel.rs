//! A hashed deadline wheel: O(1) schedule/cancel for the reactor's
//! idle- and stall-timeout population.
//!
//! With tens of thousands of sessions each carrying a control-idle
//! deadline, a heap would pay O(log n) per rearm; the wheel pays O(1)
//! amortized by hashing deadlines into coarse tick slots and lazily
//! discarding cancelled entries via generation counters. Timeouts fire
//! at tick granularity — fine for second-scale idle policies.

use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Slot {
    token: u64,
    generation: u64,
    tick: u64,
}

/// A hashed timing wheel keyed by opaque `u64` tokens.
pub struct DeadlineWheel {
    tick: Duration,
    slots: Vec<Vec<Slot>>,
    /// Next absolute tick to sweep.
    cursor: u64,
    start: Instant,
    /// token -> generation of its live (most recent) schedule.
    live: HashMap<u64, u64>,
    generation: u64,
}

impl DeadlineWheel {
    pub fn new(tick: Duration, slots: usize) -> DeadlineWheel {
        DeadlineWheel::new_at(tick, slots, Instant::now())
    }

    /// [`DeadlineWheel::new`] with an explicit time origin, so tests can
    /// anchor the wheel to a deterministic clock (e.g.
    /// [`crate::test_support::ManualClock`]) instead of racing
    /// `Instant::now()`.
    pub fn new_at(tick: Duration, slots: usize, start: Instant) -> DeadlineWheel {
        assert!(!tick.is_zero() && slots > 0);
        DeadlineWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            start,
            live: HashMap::new(),
            generation: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.start).as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Arm (or rearm) `token` to fire at `deadline`. A later schedule
    /// supersedes any earlier one for the same token.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        self.generation += 1;
        let tick = self.tick_of(deadline).max(self.cursor);
        let idx = (tick % self.slots.len() as u64) as usize;
        self.slots[idx].push(Slot { token, generation: self.generation, tick });
        self.live.insert(token, self.generation);
    }

    /// Disarm `token`. O(1): the stale slot entry is skipped at sweep.
    pub fn cancel(&mut self, token: u64) {
        self.live.remove(&token);
    }

    /// Any timers armed?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Poll timeout hint for the event loop: `None` when no timers are
    /// armed (sleep forever), otherwise one tick (the wheel fires at
    /// tick granularity, so finer sleeps buy nothing).
    pub fn next_timeout(&self) -> Option<Duration> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.tick)
        }
    }

    /// Sweep every slot whose tick has passed, appending expired tokens
    /// to `out`. Entries superseded by a rearm or cancel are dropped
    /// silently; entries hashed into a swept slot but due in a later
    /// rotation are put back.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        let now_tick = self.tick_of(now);
        if self.live.is_empty() {
            // Nothing armed: skip the cursor forward so a long idle
            // stretch never causes a catch-up sweep.
            self.cursor = self.cursor.max(now_tick);
            return;
        }
        // Bound the sweep to one full rotation: beyond that every slot
        // has already been visited once.
        let last = now_tick.min(self.cursor + self.slots.len() as u64 - 1);
        while self.cursor <= last {
            let idx = (self.cursor % self.slots.len() as u64) as usize;
            let entries = std::mem::take(&mut self.slots[idx]);
            for e in entries {
                if self.live.get(&e.token) != Some(&e.generation) {
                    continue; // cancelled or rearmed
                }
                if e.tick <= now_tick {
                    self.live.remove(&e.token);
                    out.push(e.token);
                } else {
                    self.slots[idx].push(e); // due a rotation later
                }
            }
            self.cursor += 1;
        }
        // After a full rotation every due entry has fired; safe to jump.
        self.cursor = self.cursor.max(now_tick + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::ManualClock;

    const TICK: Duration = Duration::from_millis(10);

    /// A wheel anchored to a manual clock: deadlines are built with
    /// `clock.at_ms` against the same origin, so no test depends on how
    /// fast wall time moves between construction and scheduling.
    fn clocked(slots: usize) -> (DeadlineWheel, ManualClock) {
        let clock = ManualClock::new();
        (DeadlineWheel::new_at(TICK, slots, clock.now()), clock)
    }

    #[test]
    fn fires_after_deadline_not_before() {
        let (mut w, c) = clocked(64);
        w.schedule(1, c.at_ms(50));
        let mut out = Vec::new();
        w.expire(c.at_ms(30), &mut out);
        assert!(out.is_empty());
        w.expire(c.at_ms(80), &mut out);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_suppresses_fire() {
        let (mut w, c) = clocked(64);
        w.schedule(1, c.at_ms(20));
        w.schedule(2, c.at_ms(20));
        w.cancel(1);
        let mut out = Vec::new();
        w.expire(c.at_ms(100), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn rearm_supersedes_earlier_deadline() {
        let (mut w, c) = clocked(64);
        w.schedule(1, c.at_ms(20));
        w.schedule(1, c.at_ms(200)); // pushed out
        let mut out = Vec::new();
        w.expire(c.at_ms(100), &mut out);
        assert!(out.is_empty(), "superseded deadline must not fire");
        w.expire(c.at_ms(300), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn deadline_beyond_one_rotation_waits_for_its_turn() {
        let (mut w, c) = clocked(8); // rotation = 80ms
        w.schedule(1, c.at_ms(250));
        let mut out = Vec::new();
        w.expire(c.at_ms(100), &mut out);
        w.expire(c.at_ms(200), &mut out);
        assert!(out.is_empty());
        w.expire(c.at_ms(260), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn idle_stretch_skips_catch_up() {
        let (mut w, c) = clocked(8);
        let mut out = Vec::new();
        // A long quiet period with nothing armed...
        w.expire(c.at_ms(10_000), &mut out);
        // ...must not make a later timer sweep thousands of ticks.
        w.schedule(1, c.at_ms(10_050));
        w.expire(c.at_ms(10_100), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn timeout_hint_tracks_armed_state() {
        let (mut w, c) = clocked(8);
        assert!(w.next_timeout().is_none());
        w.schedule(9, c.at_ms(30));
        assert_eq!(w.next_timeout(), Some(TICK));
        w.cancel(9);
        assert!(w.next_timeout().is_none());
    }
}
