//! Reliable-UDP data driver (MODE E over datagrams).
//!
//! GridFTP's striped TCP wins on clean fast paths, but on lossy high-BDP
//! routes a loss-agnostic, rate-based sender recovers the bandwidth that
//! Reno's `sqrt(3/2p)` law throws away. This module provides that second
//! transport: a blocking [`Link`] over `std::net::UdpSocket` with
//!
//! * a 20-byte datagram header (magic / kind / flags / seq / len / FNV-1a
//!   checksum) — corrupt datagrams are dropped and recovered like losses;
//! * cumulative ACKs plus NAK-triggered retransmit with an RTO backstop;
//! * a sender window driven by any [`ig_netsim::CongestionControl`]
//!   (Reno / CUBIC / BBR — BBR also paces via a token bucket);
//! * a bounded receive reordering buffer and frame reassembly, so the
//!   byte stream a [`Link`] consumer sees is identical to TCP's;
//! * an optional [`DatagramChaos`] stage that deterministically drops,
//!   duplicates, reorders or bit-flips *first transmissions* (never
//!   retransmits), so recovery is exercised under seeded replay;
//! * obs counters `udp.retransmits` / `udp.naks` / `udp.corrupt_drops` /
//!   `udp.chaos_faults` and the gauge `udp.pacing_rate_bps`.
//!
//! ## Wire format
//!
//! ```text
//! 0        4      5      6              14      16         20
//! | magic  | kind | flag |     seq      |  len  | checksum | payload...
//! |  u32   |  u8  |  u8  |     u64      |  u16  |   u32    |
//! ```
//!
//! All integers big-endian. `checksum` is FNV-1a/32 over the header (with
//! the checksum field zeroed) followed by the payload. `seq` numbers
//! DATA datagrams; for ACK it carries the cumulative next-expected seq,
//! for HELLO/HELLO_ACK the connection token, for FIN the end-of-stream
//! fence (one past the last DATA seq).
//!
//! ## Handshake
//!
//! The listener owns one well-known socket. A client sends
//! `HELLO(token)` there; the listener binds a fresh per-connection
//! socket, `connect()`s it to the client, and answers from the
//! *listener* socket with `HELLO_ACK(token, payload = child port)`.
//! Retried HELLOs for a token it has already granted get the same port
//! again, so a lost HELLO_ACK never spawns a second connection.

use crate::link::{Link, MAX_FRAME};
use crate::retry::splitmix64;
use ig_netsim::cc::{CcAlgo, CongestionControl};
use ig_obs::{Counter, Gauge, Obs};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// "IGU1" — first field of every datagram.
pub const UDP_MAGIC: u32 = 0x4947_5531;
/// Fixed header size in bytes.
pub const UDP_HEADER_LEN: usize = 20;
/// Default datagram payload size: fits a 1500-byte MTU with headroom for
/// IP/UDP headers and tunnel overhead.
pub const UDP_DEFAULT_MSS: usize = 1200;

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_NAK: u8 = 3;
const KIND_HELLO: u8 = 4;
const KIND_HELLO_ACK: u8 = 5;
const KIND_FIN: u8 = 6;
const KIND_FIN_ACK: u8 = 7;

/// Set on the last DATA datagram of a frame.
const FLAG_FRAME_END: u8 = 0x01;

/// At most this many seqs per NAK datagram (64 x 8 B fits any MTU).
const MAX_NAK_SEQS: usize = 64;
/// A NAK for the same seq is not repeated within this interval.
const RENAK_AFTER: Duration = Duration::from_millis(30);
/// Out-of-order datagrams buffered before the link declares the peer
/// insane (typed `InvalidData`).
const MAX_REORDER: usize = 16 * 1024;
/// Hard ceiling on the sender window in segments, independent of the
/// congestion controller (bounds receiver gap scans and memory).
const MAX_WINDOW_SEGMENTS: f64 = 4096.0;
/// RTO retransmit batch size per pump.
const MAX_RTO_BURST: usize = 32;
/// A chaos-held (reordered) datagram is flushed after this long even if
/// no later datagram displaces it.
const HOLD_FLUSH_AFTER: Duration = Duration::from_millis(25);
/// RTT estimate used before the first sample.
const DEFAULT_RTT: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

fn fnv1a(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for part in parts {
        for &b in *part {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Encode one datagram. `payload.len()` must fit in u16.
fn encode_datagram(kind: u8, flags: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut buf = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
    buf.extend_from_slice(&UDP_MAGIC.to_be_bytes());
    buf.push(kind);
    buf.push(flags);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    buf.extend_from_slice(&[0u8; 4]); // checksum placeholder
    buf.extend_from_slice(payload);
    let sum = fnv1a(&[&buf[..16], &[0u8; 4], payload]);
    buf[16..20].copy_from_slice(&sum.to_be_bytes());
    buf
}

struct Decoded<'a> {
    kind: u8,
    flags: u8,
    seq: u64,
    payload: &'a [u8],
}

/// Decode and verify one datagram; `None` if malformed or corrupt.
fn decode_datagram(raw: &[u8]) -> Option<Decoded<'_>> {
    if raw.len() < UDP_HEADER_LEN {
        return None;
    }
    if u32::from_be_bytes(raw[0..4].try_into().ok()?) != UDP_MAGIC {
        return None;
    }
    let kind = raw[4];
    let flags = raw[5];
    let seq = u64::from_be_bytes(raw[6..14].try_into().ok()?);
    let len = u16::from_be_bytes(raw[14..16].try_into().ok()?) as usize;
    if raw.len() != UDP_HEADER_LEN + len {
        return None;
    }
    let stored = u32::from_be_bytes(raw[16..20].try_into().ok()?);
    let payload = &raw[UDP_HEADER_LEN..];
    if fnv1a(&[&raw[..16], &[0u8; 4], payload]) != stored {
        return None;
    }
    Some(Decoded { kind, flags, seq, payload })
}

// ---------------------------------------------------------------------------
// Transport selection
// ---------------------------------------------------------------------------

/// Which driver carries a data channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataTransport {
    /// Stream-mode TCP (the historical default).
    #[default]
    Tcp,
    /// Reliable-UDP MODE E ([`UdpLink`]).
    Udp,
}

impl DataTransport {
    /// Canonical lowercase label (used in `OPTS DATA` and configs).
    pub fn label(self) -> &'static str {
        match self {
            DataTransport::Tcp => "tcp",
            DataTransport::Udp => "udp",
        }
    }

    /// Parse a label, case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tcp" => Some(DataTransport::Tcp),
            "udp" => Some(DataTransport::Udp),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic datagram chaos
// ---------------------------------------------------------------------------

/// Fault decided for one first-transmission DATA datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Deliver normally.
    Pass,
    /// Silently discard (recovered by NAK/RTO).
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Hold back and deliver after the next datagram.
    Reorder,
    /// Flip one bit (receiver's checksum rejects it).
    BitFlip,
}

/// Seeded, per-datagram fault injection for [`UdpLink`].
///
/// The decision for transmission index `i` is a pure function of
/// `(seed, i)`, so a replay with the same seed injects the identical
/// fault pattern — the recovery path, retransmit counts and delivered
/// bytes are reproducible. Faults apply only to first transmissions of
/// DATA datagrams; control traffic and retransmits are exempt so every
/// injected fault is recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DatagramChaos {
    /// Replay seed.
    pub seed: u64,
    /// Probability of dropping a datagram.
    pub drop: f64,
    /// Probability of duplicating a datagram.
    pub duplicate: f64,
    /// Probability of reordering a datagram behind its successor.
    pub reorder: f64,
    /// Probability of flipping one bit.
    pub bitflip: f64,
}

impl DatagramChaos {
    /// Uniform fault mix at probability `p` each, seeded.
    pub fn uniform(seed: u64, p: f64) -> Self {
        DatagramChaos { seed, drop: p, duplicate: p, reorder: p, bitflip: p }
    }

    /// The fault for first-transmission index `index` (pure, replayable).
    pub fn fault_for(&self, index: u64) -> ChaosFault {
        let h = splitmix64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.drop;
        if draw < edge {
            return ChaosFault::Drop;
        }
        edge += self.duplicate;
        if draw < edge {
            return ChaosFault::Duplicate;
        }
        edge += self.reorder;
        if draw < edge {
            return ChaosFault::Reorder;
        }
        edge += self.bitflip;
        if draw < edge {
            return ChaosFault::BitFlip;
        }
        ChaosFault::Pass
    }

    /// Which bit of an `len`-byte datagram a BitFlip at `index` corrupts.
    pub fn flip_bit(&self, index: u64, len: usize) -> usize {
        debug_assert!(len > 0);
        (splitmix64(self.seed ^ index ^ 0xB17F) % (len as u64 * 8)) as usize
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables for one UDP data channel.
#[derive(Clone)]
pub struct UdpConfig {
    /// Payload bytes per DATA datagram.
    pub mss: usize,
    /// Congestion controller for the sender window (default BBR — the
    /// pairing the crossover policy selects this transport for).
    pub cc: CcAlgo,
    /// Optional window cap in bytes (like `TcpParams::window_cap_bytes`).
    pub window_cap_bytes: Option<u64>,
    /// Send a cumulative ACK at least every N received DATA datagrams.
    pub ack_every: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Duration,
    /// Give up (typed `TimedOut`) after this long without ACK progress.
    pub stall_timeout: Duration,
    /// Overall HELLO/HELLO_ACK handshake budget.
    pub handshake_timeout: Duration,
    /// Deterministic fault injection on first DATA transmissions.
    pub chaos: Option<DatagramChaos>,
    /// Metrics sink for `udp.*` counters and the pacing gauge.
    pub obs: Option<Arc<Obs>>,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            mss: UDP_DEFAULT_MSS,
            cc: CcAlgo::Bbr,
            window_cap_bytes: None,
            ack_every: 8,
            min_rto: Duration::from_millis(20),
            stall_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(2),
            chaos: None,
            obs: None,
        }
    }
}

impl std::fmt::Debug for UdpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpConfig")
            .field("mss", &self.mss)
            .field("cc", &self.cc)
            .field("window_cap_bytes", &self.window_cap_bytes)
            .field("ack_every", &self.ack_every)
            .field("min_rto", &self.min_rto)
            .field("stall_timeout", &self.stall_timeout)
            .field("handshake_timeout", &self.handshake_timeout)
            .field("chaos", &self.chaos)
            .field("obs", &self.obs.is_some())
            .finish()
    }
}

impl UdpConfig {
    /// Select the congestion controller.
    pub fn with_cc(mut self, cc: CcAlgo) -> Self {
        self.cc = cc;
        self
    }

    /// Override the datagram payload size.
    pub fn with_mss(mut self, mss: usize) -> Self {
        assert!(mss > 0 && mss <= u16::MAX as usize - UDP_HEADER_LEN);
        self.mss = mss;
        self
    }

    /// Cap the sender window in bytes.
    pub fn with_window_cap(mut self, bytes: u64) -> Self {
        self.window_cap_bytes = Some(bytes);
        self
    }

    /// Inject deterministic datagram faults.
    pub fn with_chaos(mut self, chaos: DatagramChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Attach a metrics sink.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Override the no-progress deadline.
    pub fn with_stall_timeout(mut self, t: Duration) -> Self {
        self.stall_timeout = t;
        self
    }

    fn cap_segments(&self) -> f64 {
        self.window_cap_bytes
            .map(|b| (b as f64 / self.mss as f64).max(1.0))
            .unwrap_or(MAX_WINDOW_SEGMENTS)
            .min(MAX_WINDOW_SEGMENTS)
    }
}

struct UdpMetrics {
    retransmits: Arc<Counter>,
    naks: Arc<Counter>,
    corrupt_drops: Arc<Counter>,
    chaos_faults: Arc<Counter>,
    pacing_rate_bps: Arc<Gauge>,
}

impl UdpMetrics {
    fn new(obs: &Obs) -> Self {
        let m = obs.metrics();
        UdpMetrics {
            retransmits: m.counter("udp.retransmits"),
            naks: m.counter("udp.naks"),
            corrupt_drops: m.counter("udp.corrupt_drops"),
            chaos_faults: m.counter("udp.chaos_faults"),
            pacing_rate_bps: m.gauge("udp.pacing_rate_bps"),
        }
    }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

/// Passive side of the UDP handshake: one well-known socket that hands
/// each accepted connection its own `connect()`ed child socket.
pub struct UdpListener {
    sock: UdpSocket,
    cfg: UdpConfig,
    /// token -> child port already granted (dedups HELLO retries).
    /// Mutex so `accept` can take `&self` (listeners are held in shared
    /// vecs by the server session).
    granted: std::sync::Mutex<HashMap<u64, u16>>,
}

impl UdpListener {
    /// Bind the listener socket.
    pub fn bind(addr: SocketAddr, cfg: UdpConfig) -> io::Result<Self> {
        let sock = UdpSocket::bind(addr)?;
        Ok(UdpListener { sock, cfg, granted: std::sync::Mutex::new(HashMap::new()) })
    }

    /// The bound address clients should HELLO.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Wait up to `timeout` for one new connection.
    pub fn accept(&self, timeout: Duration) -> io::Result<UdpLink> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 2048];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "udp accept: no HELLO before deadline",
                ));
            }
            self.sock
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let (n, from) = match self.sock.recv_from(&mut buf) {
                Ok(v) => v,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let Some(dg) = decode_datagram(&buf[..n]) else { continue };
            if dg.kind != KIND_HELLO {
                continue;
            }
            let token = dg.seq;
            let already = self.granted.lock().expect("granted lock").get(&token).copied();
            if let Some(port) = already {
                // Retry of a HELLO we already answered: repeat the grant,
                // don't spawn a second connection.
                let ack = encode_datagram(KIND_HELLO_ACK, 0, token, &port.to_be_bytes());
                let _ = self.sock.send_to(&ack, from);
                continue;
            }
            let local_ip = self.sock.local_addr()?.ip();
            let child = UdpSocket::bind(SocketAddr::new(local_ip, 0))?;
            child.connect(from)?;
            let port = child.local_addr()?.port();
            self.granted.lock().expect("granted lock").insert(token, port);
            let ack = encode_datagram(KIND_HELLO_ACK, 0, token, &port.to_be_bytes());
            self.sock.send_to(&ack, from)?;
            return Ok(UdpLink::established(child, self.cfg.clone()));
        }
    }
}

impl std::fmt::Debug for UdpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpListener")
            .field("addr", &self.sock.local_addr().ok())
            .field("granted", &self.granted.lock().map(|g| g.len()).unwrap_or(0))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The link
// ---------------------------------------------------------------------------

struct Inflight {
    /// Fully encoded datagram, reusable for retransmission.
    buf: Vec<u8>,
    /// Payload bytes (what the window accounts).
    len: usize,
    sent_at: Instant,
    retx: u32,
}

/// Reliable-UDP [`Link`]: framed, ordered, congestion-controlled.
pub struct UdpLink {
    sock: UdpSocket,
    cfg: UdpConfig,
    cc: Box<dyn CongestionControl>,
    cap_segments: f64,
    metrics: Option<UdpMetrics>,

    // --- sender state ---
    next_seq: u64,
    inflight: BTreeMap<u64, Inflight>,
    inflight_bytes: usize,
    cum_acked: u64,
    srtt: Option<Duration>,
    /// Delivered payload bytes since the last controller tick.
    acked_since_tick: f64,
    last_cc_tick: Instant,
    /// `cc.on_loss` fires at most once until everything outstanding at
    /// the previous loss is acked (one multiplicative decrease per
    /// window, as TCP does).
    loss_epoch_end: u64,
    pace_tokens: f64,
    pace_refill_at: Instant,
    chaos_tx_index: u64,
    /// Datagram held back by a Reorder fault, and when it was held.
    held: Option<(Vec<u8>, Instant)>,
    fin_acked: bool,

    // --- receiver state ---
    rx_next: u64,
    rx_buffer: BTreeMap<u64, (u8, Vec<u8>)>,
    rx_frame: Vec<u8>,
    ready: VecDeque<Vec<u8>>,
    rx_since_ack: u32,
    last_ack_at: Instant,
    nak_sent_at: HashMap<u64, Instant>,
    /// FIN fence from the peer: EOF once `rx_next` reaches it.
    peer_fin: Option<u64>,

    closed: bool,
    recv_timeout: Option<Duration>,
}

static TOKEN_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_token(addr: &SocketAddr) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    let ctr = TOKEN_COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(nanos ^ ctr.rotate_left(32) ^ u64::from(addr.port()) ^ (u64::from(std::process::id()) << 40))
}

impl UdpLink {
    /// Active open: HELLO `addr`, follow the port grant, return the
    /// established link.
    pub fn connect(addr: SocketAddr, cfg: UdpConfig) -> io::Result<Self> {
        let bind: SocketAddr = if addr.is_ipv4() {
            "0.0.0.0:0".parse().expect("literal addr")
        } else {
            "[::]:0".parse().expect("literal addr")
        };
        let sock = UdpSocket::bind(bind)?;
        let token = fresh_token(&addr);
        let hello = encode_datagram(KIND_HELLO, 0, token, &[]);
        let attempts = 5u32;
        let per_attempt = cfg.handshake_timeout / attempts;
        let mut buf = [0u8; 2048];
        for _ in 0..attempts {
            sock.send_to(&hello, addr)?;
            let deadline = Instant::now() + per_attempt;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                sock.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
                let (n, from) = match sock.recv_from(&mut buf) {
                    Ok(v) => v,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::Interrupted
                            || e.kind() == io::ErrorKind::ConnectionRefused
                            || e.kind() == io::ErrorKind::ConnectionReset =>
                    {
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                if from.ip() != addr.ip() {
                    continue;
                }
                let Some(dg) = decode_datagram(&buf[..n]) else { continue };
                if dg.kind == KIND_HELLO_ACK && dg.seq == token && dg.payload.len() == 2 {
                    let port = u16::from_be_bytes([dg.payload[0], dg.payload[1]]);
                    sock.connect(SocketAddr::new(addr.ip(), port))?;
                    return Ok(UdpLink::established(sock, cfg));
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("udp handshake with {addr} timed out"),
        ))
    }

    fn established(sock: UdpSocket, cfg: UdpConfig) -> Self {
        let now = Instant::now();
        let cc = cfg.cc.build(10.0);
        let cap_segments = cfg.cap_segments();
        let metrics = cfg.obs.as_deref().map(UdpMetrics::new);
        UdpLink {
            sock,
            cc,
            cap_segments,
            metrics,
            cfg,
            next_seq: 0,
            inflight: BTreeMap::new(),
            inflight_bytes: 0,
            cum_acked: 0,
            srtt: None,
            acked_since_tick: 0.0,
            last_cc_tick: now,
            loss_epoch_end: 0,
            pace_tokens: 0.0,
            pace_refill_at: now,
            chaos_tx_index: 0,
            held: None,
            fin_acked: false,
            rx_next: 0,
            rx_buffer: BTreeMap::new(),
            rx_frame: Vec::new(),
            ready: VecDeque::new(),
            rx_since_ack: 0,
            last_ack_at: now,
            nak_sent_at: HashMap::new(),
            peer_fin: None,
            closed: false,
            recv_timeout: None,
        }
    }

    /// The local address of this connection's socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Retransmissions performed so far (also exported as
    /// `udp.retransmits` when obs is attached).
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    fn ensure_open(&self) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "udp link closed"));
        }
        Ok(())
    }

    fn rtt_estimate(&self) -> Duration {
        self.srtt.unwrap_or(DEFAULT_RTT)
    }

    fn rto(&self) -> Duration {
        (self.rtt_estimate() * 3).clamp(self.cfg.min_rto, Duration::from_secs(1))
    }

    fn window_bytes(&self) -> usize {
        let segs = self.cc.cwnd().min(self.cap_segments).min(MAX_WINDOW_SEGMENTS).max(1.0);
        (segs * self.cfg.mss as f64) as usize
    }

    // --- socket pumping -----------------------------------------------------

    /// Process every datagram already queued on the socket.
    fn drain_incoming(&mut self) -> io::Result<()> {
        self.sock.set_nonblocking(true)?;
        let mut buf = [0u8; 2048];
        let result = loop {
            match self.sock.recv(&mut buf) {
                Ok(n) => {
                    if let Err(e) = self.process_raw(&buf[..n]) {
                        break Err(e);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionRefused
                        || e.kind() == io::ErrorKind::ConnectionReset =>
                {
                    // ICMP unreachable from a peer that is gone or not yet
                    // up; reliability (RTO) decides whether that is fatal.
                    break Ok(());
                }
                Err(e) => break Err(e),
            }
        };
        self.sock.set_nonblocking(false)?;
        result
    }

    /// Block up to `wait` for one datagram, process it if it arrives.
    fn wait_one(&mut self, wait: Duration) -> io::Result<()> {
        self.sock
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        let mut buf = [0u8; 2048];
        match self.sock.recv(&mut buf) {
            Ok(n) => self.process_raw(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted
                    || e.kind() == io::ErrorKind::ConnectionRefused
                    || e.kind() == io::ErrorKind::ConnectionReset =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    // --- datagram processing ------------------------------------------------

    fn process_raw(&mut self, raw: &[u8]) -> io::Result<()> {
        let Some(dg) = decode_datagram(raw) else {
            if let Some(m) = &self.metrics {
                m.corrupt_drops.inc();
            }
            return Ok(());
        };
        let (kind, flags, seq) = (dg.kind, dg.flags, dg.seq);
        // Borrowck: copy the payload out before touching &mut self state.
        let payload = dg.payload.to_vec();
        match kind {
            KIND_DATA => self.on_data(seq, flags, payload),
            KIND_ACK => {
                self.advance_cum(seq);
                Ok(())
            }
            KIND_NAK => {
                self.on_nak(&payload);
                Ok(())
            }
            KIND_FIN => {
                self.peer_fin = Some(seq);
                let ack = encode_datagram(KIND_FIN_ACK, 0, seq, &[]);
                let _ = self.sock.send(&ack);
                Ok(())
            }
            KIND_FIN_ACK => {
                self.fin_acked = true;
                Ok(())
            }
            // Stray handshake traffic on an established link: ignore.
            _ => Ok(()),
        }
    }

    fn on_data(&mut self, seq: u64, flags: u8, payload: Vec<u8>) -> io::Result<()> {
        if seq < self.rx_next {
            // Duplicate of something delivered: the peer may have missed
            // our ACK — re-ack immediately.
            self.send_ack()?;
            return Ok(());
        }
        if seq == self.rx_next {
            self.rx_next += 1;
            self.deliver(flags, payload);
            // Drain whatever became contiguous.
            while let Some(entry) = self.rx_buffer.remove(&self.rx_next) {
                self.rx_next += 1;
                self.deliver(entry.0, entry.1);
            }
            self.nak_sent_at.retain(|&s, _| s >= self.rx_next);
        } else {
            if self.rx_buffer.len() >= MAX_REORDER {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("udp reorder buffer overflow ({MAX_REORDER} datagrams)"),
                ));
            }
            self.rx_buffer.entry(seq).or_insert((flags, payload));
            self.send_naks()?;
        }
        self.rx_since_ack += 1;
        if self.rx_since_ack >= self.cfg.ack_every || !self.ready.is_empty() {
            self.send_ack()?;
        }
        Ok(())
    }

    fn deliver(&mut self, flags: u8, payload: Vec<u8>) {
        self.rx_frame.extend_from_slice(&payload);
        if flags & FLAG_FRAME_END != 0 {
            self.ready.push_back(std::mem::take(&mut self.rx_frame));
        }
    }

    fn send_ack(&mut self) -> io::Result<()> {
        let ack = encode_datagram(KIND_ACK, 0, self.rx_next, &[]);
        // ACK loss is recovered by dup-DATA re-acks and the quiescent
        // flush; a transient send failure is not fatal.
        let _ = self.sock.send(&ack);
        self.rx_since_ack = 0;
        self.last_ack_at = Instant::now();
        Ok(())
    }

    /// NAK the holes below the highest buffered seq (rate-limited).
    fn send_naks(&mut self) -> io::Result<()> {
        let Some((&max_buffered, _)) = self.rx_buffer.last_key_value() else {
            return Ok(());
        };
        let now = Instant::now();
        let mut missing = Vec::new();
        for s in self.rx_next..max_buffered {
            if missing.len() >= MAX_NAK_SEQS {
                break;
            }
            if self.rx_buffer.contains_key(&s) {
                continue;
            }
            let fresh = self.nak_sent_at.get(&s).is_none_or(|t| now.duration_since(*t) > RENAK_AFTER);
            if fresh {
                self.nak_sent_at.insert(s, now);
                missing.push(s);
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.naks.add(missing.len() as u64);
        }
        let mut payload = Vec::with_capacity(missing.len() * 8);
        for s in &missing {
            payload.extend_from_slice(&s.to_be_bytes());
        }
        let nak = encode_datagram(KIND_NAK, 0, 0, &payload);
        let _ = self.sock.send(&nak);
        Ok(())
    }

    fn on_nak(&mut self, payload: &[u8]) {
        let mut hit = false;
        for chunk in payload.chunks_exact(8) {
            let seq = u64::from_be_bytes(chunk.try_into().expect("chunks_exact(8)"));
            if self.inflight.contains_key(&seq) {
                hit = true;
                self.retransmit(seq);
            }
        }
        if hit {
            self.register_loss();
        }
    }

    fn retransmit(&mut self, seq: u64) {
        let now = Instant::now();
        if let Some(entry) = self.inflight.get_mut(&seq) {
            entry.retx += 1;
            entry.sent_at = now;
            let buf = entry.buf.clone();
            // Retransmits bypass chaos: every injected fault is recoverable.
            let _ = self.sock.send(&buf);
            if let Some(m) = &self.metrics {
                m.retransmits.inc();
            }
        }
    }

    /// One multiplicative decrease per loss epoch (mirrors TCP's
    /// once-per-window halving).
    fn register_loss(&mut self) {
        if self.cum_acked >= self.loss_epoch_end {
            self.cc.on_loss();
            self.loss_epoch_end = self.next_seq;
        }
    }

    fn advance_cum(&mut self, cum: u64) {
        if cum <= self.cum_acked {
            return;
        }
        let now = Instant::now();
        while let Some((&s, _)) = self.inflight.first_key_value() {
            if s >= cum {
                break;
            }
            let entry = self.inflight.remove(&s).expect("first key exists");
            self.inflight_bytes -= entry.len;
            self.acked_since_tick += entry.len as f64;
            if entry.retx == 0 {
                // Karn's rule: only unambiguous (never-retransmitted)
                // datagrams contribute RTT samples.
                let sample = now.duration_since(entry.sent_at);
                self.srtt = Some(match self.srtt {
                    None => sample,
                    Some(s) => s.mul_f64(0.875) + sample.mul_f64(0.125),
                });
            }
        }
        self.cum_acked = cum;
        self.cc_tick(now);
    }

    /// Feed the controller one ack-clocked round: the bytes delivered
    /// since the last tick over the elapsed wall interval. BBR reads the
    /// ratio as its bandwidth sample; Reno/CUBIC just see one round.
    fn cc_tick(&mut self, now: Instant) {
        let rtt = self.rtt_estimate();
        let elapsed = now.duration_since(self.last_cc_tick);
        if elapsed < rtt {
            return;
        }
        let segments = self.acked_since_tick / self.cfg.mss as f64;
        self.cc
            .on_rtt_delivered(segments, elapsed.as_secs_f64(), self.cap_segments);
        self.acked_since_tick = 0.0;
        self.last_cc_tick = now;
        if let Some(m) = &self.metrics {
            m.pacing_rate_bps
                .set(self.cc.pacing_bps(self.cfg.mss as u32).unwrap_or(0.0));
        }
    }

    // --- timers -------------------------------------------------------------

    fn pump_timers(&mut self) -> io::Result<()> {
        let now = Instant::now();
        // RTO backstop for datagrams whose NAKs (or whose every copy) died.
        let rto = self.rto();
        let expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, d)| now.duration_since(d.sent_at) >= rto)
            .map(|(&s, _)| s)
            .take(MAX_RTO_BURST)
            .collect();
        if !expired.is_empty() {
            self.register_loss();
            for seq in expired {
                self.retransmit(seq);
            }
        }
        // Flush a chaos-held datagram that nothing has displaced.
        if let Some((_, held_at)) = &self.held {
            if now.duration_since(*held_at) >= HOLD_FLUSH_AFTER {
                let (buf, _) = self.held.take().expect("checked above");
                let _ = self.sock.send(&buf);
            }
        }
        // Quiescent ACK flush: don't sit on receipt state just because
        // the ack_every quota wasn't reached.
        if self.rx_since_ack > 0 && now.duration_since(self.last_ack_at) > Duration::from_millis(5)
        {
            self.send_ack()?;
        }
        Ok(())
    }

    // --- pacing -------------------------------------------------------------

    /// Token-bucket pacing from the controller's rate (None = unpaced,
    /// window-limited only). Returns how long to wait before `bytes` may
    /// go out, or None if they may go now.
    fn pace_delay(&mut self, bytes: usize) -> Option<Duration> {
        let bps = match self.cc.pacing_bps(self.cfg.mss as u32) {
            Some(b) if b > 0.0 => b,
            _ => return None,
        };
        if let Some(m) = &self.metrics {
            m.pacing_rate_bps.set(bps);
        }
        let rate = bps / 8.0; // bytes per second
        let now = Instant::now();
        self.pace_tokens += now.duration_since(self.pace_refill_at).as_secs_f64() * rate;
        self.pace_refill_at = now;
        let burst = (rate * 0.005).max((self.cfg.mss * 8) as f64);
        if self.pace_tokens > burst {
            self.pace_tokens = burst;
        }
        if self.pace_tokens >= bytes as f64 {
            self.pace_tokens -= bytes as f64;
            None
        } else {
            let wait = (bytes as f64 - self.pace_tokens) / rate;
            Some(Duration::from_secs_f64(wait.clamp(0.0005, 0.05)))
        }
    }

    // --- transmit path ------------------------------------------------------

    /// First transmission of a DATA datagram, through the chaos stage.
    fn transmit_new(&mut self, encoded: Vec<u8>) {
        let fault = match self.cfg.chaos {
            Some(c) => {
                let idx = self.chaos_tx_index;
                self.chaos_tx_index += 1;
                let f = c.fault_for(idx);
                if f != ChaosFault::Pass {
                    if let Some(m) = &self.metrics {
                        m.chaos_faults.inc();
                    }
                }
                (f, idx, c)
            }
            None => {
                let _ = self.sock.send(&encoded);
                return;
            }
        };
        let (fault, idx, chaos) = fault;
        match fault {
            ChaosFault::Pass => {
                let _ = self.sock.send(&encoded);
            }
            ChaosFault::Drop => {}
            ChaosFault::Duplicate => {
                let _ = self.sock.send(&encoded);
                let _ = self.sock.send(&encoded);
            }
            ChaosFault::Reorder => {
                // Hold this one back; if a previous datagram is already
                // held, release it first so at most one is ever in limbo.
                if let Some((prev, _)) = self.held.take() {
                    let _ = self.sock.send(&prev);
                }
                self.held = Some((encoded, Instant::now()));
                return; // held datagram must not be followed by a flush
            }
            ChaosFault::BitFlip => {
                let mut corrupted = encoded.clone();
                let bit = chaos.flip_bit(idx, corrupted.len());
                corrupted[bit / 8] ^= 1 << (bit % 8);
                let _ = self.sock.send(&corrupted);
            }
        }
        // A non-reorder transmission displaces any held datagram.
        if let Some((prev, _)) = self.held.take() {
            let _ = self.sock.send(&prev);
        }
    }

    /// Admit one chunk into the window (blocking) and transmit it.
    fn send_chunk(&mut self, chunk: &[u8], flags: u8) -> io::Result<()> {
        let mut last_acked = self.cum_acked;
        let mut last_progress = Instant::now();
        loop {
            self.drain_incoming()?;
            self.pump_timers()?;
            if self.cum_acked > last_acked {
                last_acked = self.cum_acked;
                last_progress = Instant::now();
            }
            if self.inflight_bytes + chunk.len() <= self.window_bytes() {
                match self.pace_delay(UDP_HEADER_LEN + chunk.len()) {
                    None => break,
                    Some(d) => {
                        self.wait_one(d)?;
                        continue;
                    }
                }
            }
            if !self.inflight.is_empty()
                && last_progress.elapsed() > self.cfg.stall_timeout
            {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "udp send stalled: no ACK progress for {:?} ({} datagrams inflight)",
                        self.cfg.stall_timeout,
                        self.inflight.len()
                    ),
                ));
            }
            self.wait_one(Duration::from_millis(2))?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let encoded = encode_datagram(KIND_DATA, flags, seq, chunk);
        self.inflight.insert(
            seq,
            Inflight { buf: encoded.clone(), len: chunk.len(), sent_at: Instant::now(), retx: 0 },
        );
        self.inflight_bytes += chunk.len();
        self.transmit_new(encoded);
        Ok(())
    }

    /// Wait until everything inflight is acked (used by close).
    fn flush(&mut self) -> io::Result<()> {
        let mut last_acked = self.cum_acked;
        let mut last_progress = Instant::now();
        while !self.inflight.is_empty() {
            self.drain_incoming()?;
            self.pump_timers()?;
            if self.cum_acked > last_acked {
                last_acked = self.cum_acked;
                last_progress = Instant::now();
            }
            if self.inflight.is_empty() {
                break;
            }
            if last_progress.elapsed() > self.cfg.stall_timeout {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "udp close: unacked data at stall deadline",
                ));
            }
            self.wait_one(Duration::from_millis(5))?;
        }
        Ok(())
    }
}

impl Link for UdpLink {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.ensure_open()?;
        if frame.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}", frame.len()),
            ));
        }
        let mss = self.cfg.mss;
        let n_chunks = frame.len().div_ceil(mss).max(1);
        for i in 0..n_chunks {
            let start = i * mss;
            let end = (start + mss).min(frame.len());
            let flags = if i == n_chunks - 1 { FLAG_FRAME_END } else { 0 };
            self.send_chunk(&frame[start..end], flags)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.ensure_open()?;
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(f) = self.ready.pop_front() {
                return Ok(f);
            }
            if let Some(fence) = self.peer_fin {
                if self.rx_next >= fence {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "udp peer closed the link",
                    ));
                }
            }
            self.drain_incoming()?;
            self.pump_timers()?;
            if !self.ready.is_empty() {
                continue;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "udp recv timed out",
                    ));
                }
            }
            self.wait_one(Duration::from_millis(10))?;
        }
    }

    fn close(&mut self) -> io::Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        // Release anything chaos is still holding, then drain the window.
        if let Some((buf, _)) = self.held.take() {
            let _ = self.sock.send(&buf);
        }
        self.flush()?;
        // FIN dance, best effort: the fence tells the peer where the
        // stream ends; 8 tries x 40 ms bounds shutdown latency.
        let fence = self.next_seq;
        for _ in 0..8 {
            if self.fin_acked {
                break;
            }
            let fin = encode_datagram(KIND_FIN, 0, fence, &[]);
            let _ = self.sock.send(&fin);
            let _ = self.wait_one(Duration::from_millis(40));
            let _ = self.drain_incoming();
        }
        Ok(())
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.recv_timeout = timeout;
        Ok(())
    }
}

impl std::fmt::Debug for UdpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpLink")
            .field("local", &self.sock.local_addr().ok())
            .field("peer", &self.sock.peer_addr().ok())
            .field("cc", &self.cc.name())
            .field("next_seq", &self.next_seq)
            .field("inflight", &self.inflight.len())
            .field("rx_next", &self.rx_next)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn listener(cfg: UdpConfig) -> (UdpListener, SocketAddr) {
        let l = UdpListener::bind("127.0.0.1:0".parse().unwrap(), cfg).unwrap();
        let addr = l.local_addr().unwrap();
        (l, addr)
    }

    fn pattern(len: usize, salt: u64) -> Vec<u8> {
        (0..len).map(|i| (splitmix64(salt ^ i as u64 / 7) >> ((i % 8) * 8)) as u8).collect()
    }

    #[test]
    fn header_roundtrip() {
        let payload = b"MODE E over datagrams";
        let raw = encode_datagram(KIND_DATA, FLAG_FRAME_END, 0x0123_4567_89ab_cdef, payload);
        assert_eq!(raw.len(), UDP_HEADER_LEN + payload.len());
        let dg = decode_datagram(&raw).expect("roundtrip");
        assert_eq!(dg.kind, KIND_DATA);
        assert_eq!(dg.flags, FLAG_FRAME_END);
        assert_eq!(dg.seq, 0x0123_4567_89ab_cdef);
        assert_eq!(dg.payload, payload);
    }

    #[test]
    fn checksum_rejects_any_single_bit_flip_in_header() {
        let raw = encode_datagram(KIND_DATA, 0, 42, b"payload");
        for bit in 0..raw.len() * 8 {
            let mut bad = raw.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_datagram(&bad).is_none(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn decode_rejects_truncation_and_padding() {
        let raw = encode_datagram(KIND_DATA, 0, 7, b"abc");
        assert!(decode_datagram(&raw[..raw.len() - 1]).is_none());
        let mut padded = raw.clone();
        padded.push(0);
        assert!(decode_datagram(&padded).is_none());
        assert!(decode_datagram(&[]).is_none());
    }

    #[test]
    fn chaos_schedule_is_pure_and_seed_sensitive() {
        let c = DatagramChaos::uniform(0xC0FFEE, 0.05);
        let a: Vec<ChaosFault> = (0..500).map(|i| c.fault_for(i)).collect();
        let b: Vec<ChaosFault> = (0..500).map(|i| c.fault_for(i)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        let other = DatagramChaos::uniform(0xDECAF, 0.05);
        let d: Vec<ChaosFault> = (0..500).map(|i| other.fault_for(i)).collect();
        assert_ne!(a, d, "different seeds should differ");
        let faults = a.iter().filter(|f| **f != ChaosFault::Pass).count();
        // 4 x 5% over 500 draws: expect ~100, allow wide slack.
        assert!((30..300).contains(&faults), "fault count {faults} implausible");
    }

    /// Start an echo peer: accepts one link, echoes `frames` frames back.
    fn spawn_echo(l: UdpListener, frames: usize) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let mut link = l.accept(Duration::from_secs(5)).unwrap();
            for _ in 0..frames {
                let f = link.recv().unwrap();
                link.send(&f).unwrap();
            }
            link.close().unwrap();
        })
    }

    /// Start a sink peer: accepts one link, receives until EOF, returns
    /// all frames.
    fn spawn_sink(l: UdpListener) -> thread::JoinHandle<Vec<Vec<u8>>> {
        thread::spawn(move || {
            let mut link = l.accept(Duration::from_secs(5)).unwrap();
            let mut got = Vec::new();
            loop {
                match link.recv() {
                    Ok(f) => got.push(f),
                    Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                    Err(e) => panic!("sink recv: {e}"),
                }
            }
            let _ = link.close();
            got
        })
    }

    #[test]
    fn loopback_frames_roundtrip_all_sizes() {
        let (l, addr) = listener(UdpConfig::default());
        let h = spawn_echo(l, 4);
        let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
        for frame in [
            Vec::new(),                 // empty frame still delimits
            b"x".to_vec(),              // single byte
            pattern(UDP_DEFAULT_MSS, 1), // exactly one datagram
            pattern(300 * 1024, 2),     // hundreds of datagrams
        ] {
            c.send(&frame).unwrap();
            assert_eq!(c.recv().unwrap(), frame);
        }
        c.close().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn eof_after_peer_close() {
        let (l, addr) = listener(UdpConfig::default());
        let h = spawn_sink(l);
        let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
        let payload = pattern(10_000, 3);
        c.send(&payload).unwrap();
        c.close().unwrap();
        let got = h.join().unwrap();
        assert_eq!(got, vec![payload]);
    }

    #[test]
    fn recv_timeout_is_typed() {
        let (l, addr) = listener(UdpConfig::default());
        // Keep the acceptor alive but silent.
        let h = thread::spawn(move || {
            let link = l.accept(Duration::from_secs(5)).unwrap();
            thread::sleep(Duration::from_millis(400));
            drop(link);
        });
        let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
        c.set_recv_timeout(Some(Duration::from_millis(80))).unwrap();
        let err = c.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        h.join().unwrap();
    }

    #[test]
    fn oversize_frame_rejected() {
        let (l, addr) = listener(UdpConfig::default());
        let h = thread::spawn(move || {
            let _link = l.accept(Duration::from_secs(5)).unwrap();
            thread::sleep(Duration::from_millis(100));
        });
        let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
        let err = c.send(&vec![0u8; MAX_FRAME + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        h.join().unwrap();
    }

    #[test]
    fn handshake_times_out_against_dead_port() {
        // Bind-then-drop: nothing listens there afterwards.
        let dead = {
            let s = UdpSocket::bind("127.0.0.1:0").unwrap();
            s.local_addr().unwrap()
        };
        let cfg = UdpConfig {
            handshake_timeout: Duration::from_millis(200),
            ..UdpConfig::default()
        };
        let err = UdpLink::connect(dead, cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    fn chaos_transfer(chaos: DatagramChaos, bytes: usize) -> (Vec<Vec<u8>>, u64, u64) {
        let obs = Obs::new("udp-chaos-test");
        let (l, addr) = listener(UdpConfig::default());
        let h = spawn_sink(l);
        let cfg = UdpConfig::default()
            .with_chaos(chaos)
            .with_obs(obs.clone())
            .with_stall_timeout(Duration::from_secs(20));
        let mut c = UdpLink::connect(addr, cfg).unwrap();
        let payload = pattern(bytes, chaos.seed);
        c.send(&payload).unwrap();
        c.close().unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], payload, "payload corrupted in flight");
        let m = obs.metrics();
        (got, m.counter_value("udp.chaos_faults"), m.counter_value("udp.retransmits"))
    }

    #[test]
    fn recovers_from_drops() {
        let chaos = DatagramChaos { seed: 0xD409, drop: 0.05, ..DatagramChaos::default() };
        let (_, faults, retx) = chaos_transfer(chaos, 200 * 1024);
        assert!(faults > 0, "chaos never fired");
        assert!(retx > 0, "drops must force retransmits");
    }

    #[test]
    fn recovers_from_bitflips() {
        let chaos = DatagramChaos { seed: 0xF11b, bitflip: 0.05, ..DatagramChaos::default() };
        let (_, faults, retx) = chaos_transfer(chaos, 200 * 1024);
        assert!(faults > 0, "chaos never fired");
        assert!(retx > 0, "corrupt datagrams must force retransmits");
    }

    #[test]
    fn recovers_from_reorder_and_duplicates() {
        let chaos = DatagramChaos {
            seed: 0x07D3,
            duplicate: 0.08,
            reorder: 0.08,
            ..DatagramChaos::default()
        };
        let (_, faults, _) = chaos_transfer(chaos, 200 * 1024);
        assert!(faults > 0, "chaos never fired");
    }

    #[test]
    fn recovers_from_the_full_fault_mix() {
        let chaos = DatagramChaos::uniform(0xA11, 0.02);
        let (_, faults, _) = chaos_transfer(chaos, 300 * 1024);
        assert!(faults > 0, "chaos never fired");
    }

    #[test]
    fn recovers_even_when_every_first_transmission_drops() {
        // drop = 1.0 kills every first copy; the RTO backstop (which
        // bypasses chaos) must still deliver everything.
        let chaos = DatagramChaos { seed: 2, drop: 1.0, ..DatagramChaos::default() };
        let (_, faults, retx) = chaos_transfer(chaos, 48 * 1024);
        assert!(faults >= 40, "every datagram should fault, got {faults}");
        assert!(retx >= faults, "each dropped datagram needs a retransmit");
    }

    #[test]
    fn unresponsive_peer_fails_typed() {
        let (l, addr) = listener(UdpConfig::default());
        let h = thread::spawn(move || {
            let _link = l.accept(Duration::from_secs(5)).unwrap();
            // Never polls: no ACKs ever come back.
            thread::sleep(Duration::from_secs(2));
        });
        let cfg = UdpConfig::default().with_stall_timeout(Duration::from_millis(300));
        let mut c = UdpLink::connect(addr, cfg).unwrap();
        // Either admission control stalls mid-send or close() fails to
        // flush; both must surface TimedOut, not hang or succeed.
        let r = c.send(&pattern(256 * 1024, 9)).and_then(|_| c.close());
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::TimedOut);
        h.join().unwrap();
    }

    #[test]
    fn seeded_chaos_replay_is_reproducible() {
        let chaos = DatagramChaos::uniform(0x5EED, 0.03);
        let (a, fa, _) = chaos_transfer(chaos, 100 * 1024);
        let (b, fb, _) = chaos_transfer(chaos, 100 * 1024);
        assert_eq!(a, b, "delivered bytes must be identical under replay");
        assert_eq!(fa, fb, "fault schedule must be identical under replay");
    }

    #[test]
    fn bidirectional_interleaved_traffic() {
        let (l, addr) = listener(UdpConfig::default());
        let h = spawn_echo(l, 6);
        let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
        for i in 0..6usize {
            let frame = pattern(1 + i * 7000, i as u64);
            c.send(&frame).unwrap();
            assert_eq!(c.recv().unwrap(), frame, "echo {i} mismatch");
        }
        c.close().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn all_controllers_carry_traffic() {
        for algo in [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Bbr] {
            let cfg = UdpConfig::default().with_cc(algo);
            let (l, addr) = listener(cfg.clone());
            let h = spawn_sink(l);
            let mut c = UdpLink::connect(addr, cfg).unwrap();
            let payload = pattern(150 * 1024, algo as u64);
            c.send(&payload).unwrap();
            c.close().unwrap();
            assert_eq!(h.join().unwrap(), vec![payload], "{} failed", algo.label());
        }
    }

    #[test]
    fn listener_serves_multiple_connections() {
        let (l, addr) = listener(UdpConfig::default());
        let h = thread::spawn(move || {
            for _ in 0..2 {
                let mut link = l.accept(Duration::from_secs(5)).unwrap();
                let f = link.recv().unwrap();
                link.send(&f).unwrap();
                link.close().unwrap();
            }
        });
        for i in 0..2u64 {
            let mut c = UdpLink::connect(addr, UdpConfig::default()).unwrap();
            let frame = pattern(20_000, i);
            c.send(&frame).unwrap();
            assert_eq!(c.recv().unwrap(), frame);
            c.close().unwrap();
        }
        h.join().unwrap();
    }

    #[test]
    fn window_cap_respected_on_the_wire() {
        // A tiny window still completes (slowly): admission control must
        // never exceed it, and the transfer must still finish.
        let cfg = UdpConfig::default().with_window_cap(4 * 1200);
        let (l, addr) = listener(UdpConfig::default());
        let h = spawn_sink(l);
        let mut c = UdpLink::connect(addr, cfg).unwrap();
        let payload = pattern(60 * 1024, 0xCA9);
        c.send(&payload).unwrap();
        c.close().unwrap();
        assert_eq!(h.join().unwrap(), vec![payload]);
    }

    #[test]
    fn transport_labels_parse() {
        assert_eq!(DataTransport::parse("udp"), Some(DataTransport::Udp));
        assert_eq!(DataTransport::parse(" TCP "), Some(DataTransport::Tcp));
        assert_eq!(DataTransport::parse("carrier-pigeon"), None);
        assert_eq!(DataTransport::Udp.label(), "udp");
        assert_eq!(DataTransport::default(), DataTransport::Tcp);
    }
}
