//! Observability driver: per-message latency histograms for any link.
//!
//! Where [`crate::telemetry::Telemetry`] counts bytes, [`ObsLink`] times
//! them: every `send`/`recv` records its duration into log-linear
//! histograms in an [`ig_obs::Obs`] registry (`{label}.send_ns`,
//! `{label}.recv_ns`) plus byte counters — this is how DTP block latency
//! reaches `SITE STATS` without threading timing code through the
//! sender/receiver. Push it onto the stack like any other XIO driver.
//!
//! Link open/close emit *unstable* trace events (they happen on worker
//! threads at wall-clock-dependent points, so they stay out of the
//! replay-stable export).

use crate::link::Link;
use ig_obs::{kv, Histogram, Obs};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// A timing wrapper around any [`Link`], reporting into an [`Obs`] hub.
pub struct ObsLink<L: Link> {
    inner: L,
    obs: Arc<Obs>,
    label: String,
    send_ns: Arc<Histogram>,
    recv_ns: Arc<Histogram>,
    bytes_sent: Arc<ig_obs::Counter>,
    bytes_received: Arc<ig_obs::Counter>,
}

impl<L: Link> ObsLink<L> {
    /// Wrap `inner`; metrics land under `{label}.*` in `obs`'s registry.
    /// Metric handles are resolved once here, so the per-message cost is
    /// two `Instant::now()` calls and a few relaxed atomics.
    pub fn new(inner: L, obs: Arc<Obs>, label: &str) -> Self {
        let send_ns = obs.metrics().histogram(&format!("{label}.send_ns"));
        let recv_ns = obs.metrics().histogram(&format!("{label}.recv_ns"));
        let bytes_sent = obs.metrics().counter(&format!("{label}.bytes_sent"));
        let bytes_received = obs.metrics().counter(&format!("{label}.bytes_received"));
        obs.event_unstable("link.open", vec![kv("label", label)]);
        ObsLink {
            inner,
            obs,
            label: label.to_string(),
            send_ns,
            recv_ns,
            bytes_sent,
            bytes_received,
        }
    }

    /// Unwrap.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: Link> Link for ObsLink<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        let t0 = Instant::now();
        self.inner.send(data)?;
        self.send_ns.record(t0.elapsed().as_nanos() as u64);
        self.bytes_sent.add(data.len() as u64);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let t0 = Instant::now();
        let msg = self.inner.recv()?;
        self.recv_ns.record(t0.elapsed().as_nanos() as u64);
        self.bytes_received.add(msg.len() as u64);
        Ok(msg)
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let t0 = Instant::now();
        let n = self.inner.recv_into(buf)?;
        self.recv_ns.record(t0.elapsed().as_nanos() as u64);
        self.bytes_received.add(n as u64);
        Ok(n)
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        let t0 = Instant::now();
        self.inner.send_vectored(parts)?;
        self.send_ns.record(t0.elapsed().as_nanos() as u64);
        let total: u64 = parts.iter().map(|p| p.len() as u64).sum();
        self.bytes_sent.add(total);
        Ok(())
    }

    fn close(&mut self) -> io::Result<()> {
        self.obs.event_unstable("link.close", vec![kv("label", self.label.as_str())]);
        self.inner.close()
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;

    #[test]
    fn times_and_counts_both_directions() {
        let (a, b) = pipe();
        let obs = Obs::new("xio-test");
        let mut la = ObsLink::new(a, Arc::clone(&obs), "dtp");
        let mut lb = ObsLink::new(b, Arc::clone(&obs), "dtp");
        la.send(&[9u8; 300]).unwrap();
        la.send_vectored(&[io::IoSlice::new(b"ab"), io::IoSlice::new(b"cd")]).unwrap();
        assert_eq!(lb.recv().unwrap().len(), 300);
        let mut buf = Vec::new();
        assert_eq!(lb.recv_into(&mut buf).unwrap(), 4);
        lb.close().unwrap();

        let m = obs.metrics();
        assert_eq!(m.counter_value("dtp.bytes_sent"), 304);
        assert_eq!(m.counter_value("dtp.bytes_received"), 304);
        assert_eq!(m.histogram("dtp.send_ns").count(), 2);
        assert_eq!(m.histogram("dtp.recv_ns").count(), 2);
        assert!(m.histogram("dtp.recv_ns").quantile(0.5) > 0);
        // Lifecycle events are unstable: present in the full export,
        // absent from the replay-stable one.
        assert!(obs.export_full().contains("link.open"));
        assert!(obs.export_full().contains("link.close"));
        assert!(!obs.export_stable().contains("link.open"));
    }

    #[test]
    fn failed_io_records_nothing() {
        let (a, b) = pipe();
        drop(b);
        let obs = Obs::new("xio-test");
        let mut l = ObsLink::new(a, Arc::clone(&obs), "x");
        assert!(l.send(b"lost").is_err());
        assert_eq!(obs.metrics().counter_value("x.bytes_sent"), 0);
        assert_eq!(obs.metrics().histogram("x.send_ns").count(), 0);
    }
}
