//! The GSI security context as an XIO driver.
//!
//! `secure_connect`/`secure_accept` run the handshake token pump over any
//! [`Link`] and return a [`SecureLink`] that seals every message at the
//! configured protection level. Pushing this driver onto a data channel
//! is what DCAU does; *which* credential/trust store it is configured
//! with is what DCSC changes (§V).

use crate::link::Link;
use ig_gsi::context::{Established, GsiConfig, SecureContext};
use ig_gsi::handshake::{Acceptor, Initiator, Step};
use ig_gsi::{GsiError, ProtectionLevel};
use rand::Rng;
use std::io;

fn gsi_io(e: GsiError) -> io::Error {
    match e {
        GsiError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// A sealed link: every message is a GSI record.
///
/// Sealing and opening reuse two internal scratch buffers, so once a
/// transfer reaches steady state no per-message allocations happen in
/// this driver: outgoing records are sealed into `send_buf` (encrypting
/// in place for `Private`), incoming records are received into `recv_buf`
/// and decrypted in place there.
pub struct SecureLink<L: Link> {
    inner: L,
    ctx: SecureContext,
    /// Reused output buffer for sealed outgoing records.
    send_buf: Vec<u8>,
    /// Reused input buffer incoming records are opened inside.
    recv_buf: Vec<u8>,
    /// Protection applied to outgoing messages (`PROT` level).
    pub send_level: ProtectionLevel,
    /// Minimum protection accepted on incoming messages.
    pub min_recv_level: ProtectionLevel,
}

impl<L: Link> SecureLink<L> {
    fn from_established(inner: L, est: Established, level: ProtectionLevel) -> Self {
        SecureLink {
            inner,
            ctx: SecureContext::from_established(est),
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
            send_level: level,
            min_recv_level: ProtectionLevel::Clear,
        }
    }

    /// The authenticated peer, if any.
    pub fn peer(&self) -> Option<&ig_pki::validate::ValidatedIdentity> {
        self.ctx.peer()
    }

    /// Change the outgoing protection level (the `PROT` command).
    pub fn set_level(&mut self, level: ProtectionLevel) {
        self.send_level = level;
    }

    /// Require a minimum level on received records.
    pub fn require_recv_level(&mut self, level: ProtectionLevel) {
        self.min_recv_level = level;
    }

    /// Access the security context (for delegation message exchanges).
    pub fn context_mut(&mut self) -> &mut SecureContext {
        &mut self.ctx
    }

    /// Unwrap into the raw link and context.
    pub fn into_parts(self) -> (L, SecureContext) {
        (self.inner, self.ctx)
    }
}

impl<L: Link> Link for SecureLink<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        self.ctx.seal_into(self.send_level, data, &mut self.send_buf);
        self.inner.send(&self.send_buf)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.recv_into(&mut buf)?;
        Ok(buf)
    }

    fn close(&mut self) -> io::Result<()> {
        self.inner.close()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.inner.recv_into(&mut self.recv_buf)?;
        let payload = self
            .ctx
            .open_in_place_expecting(&mut self.recv_buf, self.min_recv_level)
            .map_err(gsi_io)?;
        buf.clear();
        buf.extend_from_slice(payload);
        Ok(buf.len())
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        // The segments become one sealed record: gather them straight
        // into the seal buffer (no pre-concatenation), then hand the
        // contiguous record to the transport.
        self.ctx
            .seal_parts_into(self.send_level, parts.iter().map(|p| &p[..]), &mut self.send_buf);
        self.inner.send(&self.send_buf)
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

/// Run the initiator handshake over `link`.
pub fn secure_connect<L: Link, R: Rng + ?Sized>(
    mut link: L,
    config: GsiConfig,
    level: ProtectionLevel,
    rng: &mut R,
) -> io::Result<SecureLink<L>> {
    let (mut init, token) = Initiator::start(config, rng);
    link.send(&token)?;
    loop {
        let token = link.recv()?;
        match init.step(&token, rng).map_err(gsi_io)? {
            Step::Send(t) => link.send(&t)?,
            Step::SendAndDone(t, est) => {
                link.send(&t)?;
                return Ok(SecureLink::from_established(link, est, level));
            }
            Step::Done(est) => return Ok(SecureLink::from_established(link, est, level)),
        }
    }
}

/// Run the acceptor handshake over `link`.
pub fn secure_accept<L: Link, R: Rng + ?Sized>(
    mut link: L,
    config: GsiConfig,
    level: ProtectionLevel,
    rng: &mut R,
) -> io::Result<SecureLink<L>> {
    let mut acceptor = Acceptor::new(config).map_err(gsi_io)?;
    loop {
        let token = link.recv()?;
        match acceptor.step(&token, rng).map_err(gsi_io)? {
            Step::Send(t) => link.send(&t)?,
            Step::SendAndDone(t, est) => {
                link.send(&t)?;
                return Ok(SecureLink::from_established(link, est, level));
            }
            Step::Done(est) => return Ok(SecureLink::from_established(link, est, level)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;
    use ig_crypto::rng::seeded;
    use ig_gsi::context::test_support::{ca_and_credential, config_with};

    fn secure_pair(
        level: ProtectionLevel,
    ) -> (SecureLink<crate::link::PipeLink>, SecureLink<crate::link::PipeLink>) {
        let mut rng = seeded(99);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=client");
        let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
        let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);
        let (a, b) = pipe();
        let server = std::thread::spawn(move || {
            let mut rng = seeded(100);
            secure_accept(b, server_cfg, level, &mut rng).unwrap()
        });
        let mut rng2 = seeded(101);
        let client = secure_connect(a, client_cfg, level, &mut rng2).unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn secure_pipe_roundtrip_all_levels() {
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let (mut c, mut s) = secure_pair(level);
            c.send(b"up").unwrap();
            assert_eq!(s.recv().unwrap(), b"up");
            s.send(b"down").unwrap();
            assert_eq!(c.recv().unwrap(), b"down");
            assert_eq!(c.peer().unwrap().identity.to_string(), "/CN=server");
            assert_eq!(s.peer().unwrap().identity.to_string(), "/CN=client");
        }
    }

    #[test]
    fn vectored_send_and_recv_into_sealed() {
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let (mut c, mut s) = secure_pair(level);
            c.send_vectored(&[io::IoSlice::new(b"hdr"), io::IoSlice::new(b"-payload")])
                .unwrap();
            let mut buf = Vec::new();
            assert_eq!(s.recv_into(&mut buf).unwrap(), 11);
            assert_eq!(&buf, b"hdr-payload");
            // Reuse of the sealed-send scratch buffer: a plain send after
            // a vectored one still produces a valid record.
            c.send(b"plain after vectored").unwrap();
            assert_eq!(s.recv().unwrap(), b"plain after vectored");
        }
    }

    #[test]
    fn recv_level_floor_enforced() {
        let (mut c, mut s) = secure_pair(ProtectionLevel::Clear);
        s.require_recv_level(ProtectionLevel::Private);
        c.send(b"too weak").unwrap();
        assert!(s.recv().is_err());
    }

    #[test]
    fn level_switch_midstream() {
        let (mut c, mut s) = secure_pair(ProtectionLevel::Clear);
        c.send(b"clear msg").unwrap();
        assert_eq!(s.recv().unwrap(), b"clear msg");
        c.set_level(ProtectionLevel::Private);
        c.send(b"private msg").unwrap();
        assert_eq!(s.recv().unwrap(), b"private msg");
    }

    #[test]
    fn untrusted_peer_fails_connect() {
        let mut rng = seeded(102);
        let (_ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=client");
        // Client trusts only CA2; server cert is from CA.
        let server_cfg = config_with(Some(server_cred), &[&ca2], false);
        let client_cfg = config_with(Some(client_cred), &[&ca2], false);
        let (a, b) = pipe();
        let server = std::thread::spawn(move || {
            let mut rng = seeded(103);
            secure_accept(b, server_cfg, ProtectionLevel::Clear, &mut rng)
        });
        let mut rng2 = seeded(104);
        let res = secure_connect(a, client_cfg, ProtectionLevel::Clear, &mut rng2);
        assert!(res.is_err());
        // Server side errors too (pipe drops).
        assert!(server.join().unwrap().is_err());
    }

    #[test]
    fn stacks_compose_secure_over_telemetry() {
        use crate::telemetry::{Counters, Telemetry};
        use std::sync::atomic::Ordering;
        let mut rng = seeded(105);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let server_cfg = config_with(Some(server_cred), &[&ca], false);
        let client_cfg = config_with(None, &[&ca], false);
        let (a, b) = pipe();
        let counters = Counters::new();
        let counted = Telemetry::new(a, std::sync::Arc::clone(&counters));
        let server = std::thread::spawn(move || {
            let mut rng = seeded(106);
            let mut s = secure_accept(b, server_cfg, ProtectionLevel::Private, &mut rng).unwrap();
            let m = s.recv().unwrap();
            assert_eq!(m, b"counted and sealed");
        });
        let mut rng2 = seeded(107);
        let mut c = secure_connect(counted, client_cfg, ProtectionLevel::Private, &mut rng2).unwrap();
        c.send(b"counted and sealed").unwrap();
        server.join().unwrap();
        // Telemetry saw the handshake + the sealed record (> plaintext).
        assert!(counters.bytes_sent.load(Ordering::Relaxed) > 18);
        assert!(counters.msgs_sent.load(Ordering::Relaxed) >= 3);
    }
}
