//! Deterministic chaos injection for any [`Link`].
//!
//! The paper's recovery claims (§VI, Fig 6–7) are only testable if we can
//! make networks misbehave *on demand and reproducibly*. [`ChaosLink`]
//! wraps any transport and perturbs its message stream with composable
//! fault kinds — drop, delay, truncate, duplicate, reorder, bit-flip,
//! one-way partition, connection reset — each fired by a trigger
//! evaluated against seeded RNG state and per-link byte/record counters.
//! Given the same seed and the same traffic, the same faults fire at the
//! same places, so a failing chaos schedule replays exactly.
//!
//! A [`ChaosHook`] is the shared factory: it carries the seeded config,
//! an arm/disarm gate (so session setup and authentication run clean and
//! chaos starts exactly at the operation under test), and *global* fire
//! budgets shared by every link it wraps — a fault spec with
//! `max_fires = 1` fires once across the whole transfer, so the retry
//! attempt gets a clean network and the recovery path is exercised.

use crate::link::Link;
use crate::retry::splitmix64;
use ig_obs::{kv, Obs};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a firing fault does to the message stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard the message.
    Drop,
    /// Hold the message back; it is flushed only when the link closes
    /// (a maximally late arrival — by then the receiver has usually
    /// moved on, so this models loss-by-lateness).
    Delay,
    /// Cut the message to a seeded shorter prefix.
    Truncate,
    /// Deliver the message twice.
    Duplicate,
    /// Swap the message with the next one on the link.
    Reorder,
    /// Flip one seeded bit at byte offset >= `skip_prefix` (lets tests
    /// aim at MODE E payloads rather than framing headers).
    BitFlip {
        /// First byte eligible for flipping.
        skip_prefix: usize,
    },
    /// Black-hole this direction from now on: sends are swallowed (or
    /// receives stall) while the opposite direction keeps working —
    /// the classic half-open partition that hangs naive peers.
    PartitionOneWay,
    /// Close the underlying transport and fail with `ConnectionReset`.
    Reset,
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// On the `n`-th message (0-based) in the spec's direction,
    /// counted from when the hook was armed.
    OnRecord(u64),
    /// On the first message that pushes the cumulative payload bytes
    /// in the spec's direction past `n`.
    AfterBytes(u64),
    /// Independently on each message with probability `p`, drawn from
    /// the link's seeded RNG (deterministic given seed + traffic).
    Probability(f64),
}

/// Which direction of the wrapped link the fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Outgoing messages (`send`/`send_vectored`).
    Send,
    /// Incoming messages (`recv`/`recv_into`).
    Recv,
}

/// One composable fault: kind + direction + trigger + global budget.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// Which direction it happens to.
    pub direction: Direction,
    /// When it happens.
    pub trigger: Trigger,
    /// Max fires across *all* links wrapped by the same hook
    /// (0 = unlimited). `1` models a transient fault a retry survives.
    pub max_fires: u64,
}

impl FaultSpec {
    /// A send-direction fault that fires once globally.
    pub fn send(kind: FaultKind, trigger: Trigger) -> Self {
        FaultSpec { kind, direction: Direction::Send, trigger, max_fires: 1 }
    }

    /// A recv-direction fault that fires once globally.
    pub fn recv(kind: FaultKind, trigger: Trigger) -> Self {
        FaultSpec { kind, direction: Direction::Recv, trigger, max_fires: 1 }
    }

    /// Builder: remove the fire budget (fires on every trigger match).
    pub fn unlimited(mut self) -> Self {
        self.max_fires = 0;
        self
    }

    /// Builder: set the global fire budget.
    pub fn fires(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

/// A seeded fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; per-link RNG streams are derived from it, so the
    /// whole schedule replays from this one number.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

impl ChaosConfig {
    /// A schedule with one fault.
    pub fn single(seed: u64, fault: FaultSpec) -> Self {
        ChaosConfig { seed, faults: vec![fault] }
    }
}

/// Shared factory and accounting for [`ChaosLink`]s.
///
/// Wrap every connection of a transfer through the same hook: links get
/// distinct deterministic RNG streams (`splitmix64(seed ^ link_index)`),
/// and fault fire budgets are enforced globally so "fails once, retry
/// succeeds" holds even though the retry opens brand-new connections.
#[derive(Debug)]
pub struct ChaosHook {
    config: ChaosConfig,
    armed: AtomicBool,
    next_link: AtomicU64,
    fired: Vec<AtomicU64>,
    /// Optional trace sink: every fired fault — *including* soft kinds
    /// like `Delay` that surface nowhere else — emits a `chaos.fault`
    /// event here with its trigger, seed, link and record position.
    obs: Mutex<Option<Arc<Obs>>>,
}

impl ChaosHook {
    /// A hook that injects faults immediately.
    pub fn new(config: ChaosConfig) -> Arc<Self> {
        Self::build(config, true)
    }

    /// A hook that passes traffic through untouched until [`Self::arm`]
    /// is called — lets authentication handshakes run clean so chaos
    /// starts exactly at the operation under test.
    pub fn disarmed(config: ChaosConfig) -> Arc<Self> {
        Self::build(config, false)
    }

    fn build(config: ChaosConfig, armed: bool) -> Arc<Self> {
        let fired = config.faults.iter().map(|_| AtomicU64::new(0)).collect();
        Arc::new(ChaosHook {
            config,
            armed: AtomicBool::new(armed),
            next_link: AtomicU64::new(0),
            fired,
            obs: Mutex::new(None),
        })
    }

    /// Route fault-fired events into `obs` (call before wrapping links).
    pub fn set_obs(&self, obs: &Arc<Obs>) {
        *self.obs.lock() = Some(Arc::clone(obs));
    }

    /// Emit the replay-stable `chaos.fault` trace event for one fire.
    fn emit_fault(&self, link: u64, record: u64, dir: Direction, spec: &FaultSpec) {
        if let Some(obs) = self.obs.lock().clone() {
            obs.event(
                "chaos.fault",
                vec![
                    kv("kind", format!("{:?}", spec.kind)),
                    kv("direction", format!("{dir:?}")),
                    kv("trigger", format!("{:?}", spec.trigger)),
                    kv("seed", self.config.seed),
                    kv("link", link),
                    kv("record", record),
                ],
            );
            obs.metrics().add("chaos.faults_fired", 1);
        }
    }

    /// Start injecting faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop injecting faults (spent budgets stay spent).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Is the hook currently injecting?
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// How many times spec `index` has fired, across all links.
    pub fn fires_of(&self, index: usize) -> u64 {
        self.fired.get(index).map_or(0, |c| c.load(Ordering::SeqCst))
    }

    /// Total fires across all specs and links.
    pub fn total_fires(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }

    /// Wrap a boxed link in a [`ChaosLink`] driven by this hook.
    pub fn wrap(self: &Arc<Self>, inner: Box<dyn Link>) -> Box<dyn Link> {
        Box::new(ChaosLink::new(inner, Arc::clone(self)))
    }

    /// Claim one fire of spec `index`; `false` means its budget is spent
    /// (first-crosser semantics under contention, like `FaultInjector`).
    fn try_fire(&self, index: usize) -> bool {
        let max = self.config.faults[index].max_fires;
        if max == 0 {
            self.fired[index].fetch_add(1, Ordering::SeqCst);
            return true;
        }
        self.fired[index]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                if v < max {
                    Some(v + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }
}

/// Per-direction traffic counters and in-flight perturbation state.
#[derive(Default)]
struct DirState {
    records: u64,
    bytes: u64,
    partitioned: bool,
    /// `Delay`ed messages, flushed at close (send side only).
    delayed: VecDeque<Vec<u8>>,
    /// A `Reorder`ed message waiting to swap with the next one.
    held: Option<Vec<u8>>,
    /// Messages ready to hand to the caller ahead of the transport
    /// (recv side: duplicates and released reorders).
    ready: VecDeque<Vec<u8>>,
}

/// A [`Link`] wrapper that perturbs traffic per its hook's schedule.
pub struct ChaosLink<L: Link> {
    inner: L,
    hook: Arc<ChaosHook>,
    index: u64,
    rng: StdRng,
    send: DirState,
    recv: DirState,
    reset: bool,
}

impl<L: Link> ChaosLink<L> {
    /// Wrap `inner`; the link gets the hook's next deterministic RNG
    /// stream.
    pub fn new(inner: L, hook: Arc<ChaosHook>) -> Self {
        let index = hook.next_link.fetch_add(1, Ordering::SeqCst);
        let rng = StdRng::seed_from_u64(splitmix64(hook.config.seed ^ index.wrapping_mul(0x9E37)));
        ChaosLink {
            inner,
            hook,
            index,
            rng,
            send: DirState::default(),
            recv: DirState::default(),
            reset: false,
        }
    }

    /// Which faults fire on the message about to cross in `dir`?
    /// Also advances that direction's counters.
    fn firing(&mut self, dir: Direction, len: usize) -> Vec<FaultKind> {
        let state = match dir {
            Direction::Send => &mut self.send,
            Direction::Recv => &mut self.recv,
        };
        let record = state.records;
        let bytes_before = state.bytes;
        state.records += 1;
        state.bytes += len as u64;

        let mut fired = Vec::new();
        if !self.hook.is_armed() {
            return fired;
        }
        for i in 0..self.hook.config.faults.len() {
            let spec = &self.hook.config.faults[i];
            if spec.direction != dir {
                continue;
            }
            let kind = spec.kind;
            let hit = match spec.trigger {
                Trigger::OnRecord(n) => record == n,
                Trigger::AfterBytes(n) => {
                    bytes_before <= n && bytes_before + len as u64 > n
                }
                // Always draw, so the RNG stream depends only on traffic,
                // not on which earlier faults happened to fire.
                Trigger::Probability(p) => self.rng.gen::<f64>() < p,
            };
            if hit && self.hook.try_fire(i) {
                self.hook.emit_fault(self.index, record, dir, spec);
                fired.push(kind);
            }
        }
        fired
    }

    fn reset_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection reset")
    }

    fn do_reset(&mut self) -> io::Error {
        self.reset = true;
        let _ = self.inner.close();
        Self::reset_error()
    }

    /// Apply payload mutations (truncate / bit-flip) from the seeded RNG.
    fn mutate(rng: &mut StdRng, msg: &mut Vec<u8>, kind: FaultKind) {
        match kind {
            FaultKind::Truncate => {
                if !msg.is_empty() {
                    let keep = rng.gen_range(0..msg.len());
                    msg.truncate(keep);
                }
            }
            FaultKind::BitFlip { skip_prefix } => {
                if msg.is_empty() {
                    return;
                }
                let lo = skip_prefix.min(msg.len() - 1);
                let byte = rng.gen_range(lo..msg.len());
                let bit = rng.gen_range(0..8u8);
                msg[byte] ^= 1 << bit;
            }
            _ => {}
        }
    }

    fn chaos_send(&mut self, data: &[u8]) -> io::Result<()> {
        if self.reset {
            return Err(Self::reset_error());
        }
        let fired = self.firing(Direction::Send, data.len());
        if fired.contains(&FaultKind::Reset) {
            return Err(self.do_reset());
        }
        if fired.contains(&FaultKind::PartitionOneWay) {
            self.send.partitioned = true;
        }
        if self.send.partitioned {
            // Black hole: the caller believes the send succeeded.
            return Ok(());
        }

        let mut msg = data.to_vec();
        for kind in &fired {
            Self::mutate(&mut self.rng, &mut msg, *kind);
        }
        if fired.contains(&FaultKind::Drop) {
            return Ok(());
        }
        if fired.contains(&FaultKind::Delay) {
            self.send.delayed.push_back(msg);
            return Ok(());
        }
        if fired.contains(&FaultKind::Reorder) {
            // Hold this message; it goes out right after the next one.
            self.send.held = Some(msg);
            return Ok(());
        }
        self.inner.send(&msg)?;
        if fired.contains(&FaultKind::Duplicate) {
            self.inner.send(&msg)?;
        }
        if let Some(held) = self.send.held.take() {
            self.inner.send(&held)?;
        }
        Ok(())
    }

    fn chaos_recv(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if let Some(msg) = self.recv.ready.pop_front() {
                return Ok(msg);
            }
            if self.reset {
                return Err(Self::reset_error());
            }
            if self.recv.partitioned {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "chaos: one-way partition on receive path",
                ));
            }
            let mut msg = match self.inner.recv() {
                Ok(m) => m,
                Err(e) => {
                    // A maximally-delayed message surfaces at stream end,
                    // after the peer has stopped caring.
                    if let Some(late) = self.recv.delayed.pop_front() {
                        return Ok(late);
                    }
                    return Err(e);
                }
            };
            let fired = self.firing(Direction::Recv, msg.len());
            if fired.contains(&FaultKind::Reset) {
                return Err(self.do_reset());
            }
            if fired.contains(&FaultKind::PartitionOneWay) {
                self.recv.partitioned = true;
                continue; // the message vanishes into the partition
            }
            for kind in &fired {
                Self::mutate(&mut self.rng, &mut msg, *kind);
            }
            if fired.contains(&FaultKind::Drop) {
                continue;
            }
            if fired.contains(&FaultKind::Delay) {
                self.recv.delayed.push_back(msg);
                continue;
            }
            if fired.contains(&FaultKind::Reorder) {
                // Hold; delivered right after the next message.
                self.recv.held = Some(msg);
                continue;
            }
            if fired.contains(&FaultKind::Duplicate) {
                self.recv.ready.push_back(msg.clone());
            }
            if let Some(held) = self.recv.held.take() {
                self.recv.ready.push_back(held);
            }
            return Ok(msg);
        }
    }
}

impl<L: Link> Link for ChaosLink<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        self.chaos_send(data)
    }

    // send_vectored: the trait default concatenates and calls `send`,
    // which is exactly what we need — every byte passes through chaos.

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.chaos_recv()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        *buf = self.chaos_recv()?;
        Ok(buf.len())
    }

    fn close(&mut self) -> io::Result<()> {
        // Flush maximally-delayed sends just before teardown; whether the
        // peer still reads them is the peer's problem.
        if !self.reset && !self.send.partitioned {
            while let Some(late) = self.send.delayed.pop_front() {
                let _ = self.inner.send(&late);
            }
            if let Some(held) = self.send.held.take() {
                let _ = self.inner.send(&held);
            }
        }
        self.inner.close()
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;
    use std::io::IoSlice;

    fn wrapped(spec: FaultSpec, seed: u64) -> (Box<dyn Link>, crate::link::PipeLink, Arc<ChaosHook>) {
        let (a, b) = pipe();
        let hook = ChaosHook::new(ChaosConfig::single(seed, spec));
        (hook.wrap(Box::new(a)), b, hook)
    }

    #[test]
    fn drop_discards_exactly_one_record() {
        let spec = FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(1));
        let (mut a, mut b, hook) = wrapped(spec, 7);
        a.send(b"zero").unwrap();
        a.send(b"one").unwrap(); // dropped
        a.send(b"two").unwrap();
        assert_eq!(b.recv().unwrap(), b"zero");
        assert_eq!(b.recv().unwrap(), b"two");
        assert_eq!(hook.total_fires(), 1);
    }

    #[test]
    fn duplicate_sends_twice() {
        let spec = FaultSpec::send(FaultKind::Duplicate, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        a.send(b"dup").unwrap();
        a.send(b"next").unwrap();
        assert_eq!(b.recv().unwrap(), b"dup");
        assert_eq!(b.recv().unwrap(), b"dup");
        assert_eq!(b.recv().unwrap(), b"next");
    }

    #[test]
    fn reorder_swaps_adjacent_records() {
        let spec = FaultSpec::send(FaultKind::Reorder, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        a.send(b"first").unwrap();
        a.send(b"second").unwrap();
        assert_eq!(b.recv().unwrap(), b"second");
        assert_eq!(b.recv().unwrap(), b"first");
    }

    #[test]
    fn delay_flushes_at_close() {
        let spec = FaultSpec::send(FaultKind::Delay, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        a.send(b"late").unwrap();
        a.send(b"ontime").unwrap();
        assert_eq!(b.recv().unwrap(), b"ontime");
        a.close().unwrap();
        assert_eq!(b.recv().unwrap(), b"late");
    }

    #[test]
    fn truncate_shortens_deterministically() {
        let spec = FaultSpec::send(FaultKind::Truncate, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec.clone(), 99);
        a.send(&[7u8; 64]).unwrap();
        let got = b.recv().unwrap();
        assert!(got.len() < 64);
        // Same seed → same cut.
        let (mut a2, mut b2, _) = wrapped(spec, 99);
        a2.send(&[7u8; 64]).unwrap();
        assert_eq!(b2.recv().unwrap(), got);
    }

    #[test]
    fn bitflip_respects_skip_prefix() {
        let spec = FaultSpec::send(
            FaultKind::BitFlip { skip_prefix: 8 },
            Trigger::OnRecord(0),
        );
        let (mut a, mut b, _) = wrapped(spec, 3);
        a.send(&[0u8; 32]).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(&got[..8], &[0u8; 8], "prefix must be untouched");
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
    }

    #[test]
    fn partition_blackholes_sends_but_not_recv() {
        let spec = FaultSpec::send(FaultKind::PartitionOneWay, Trigger::OnRecord(1));
        let (mut a, mut b, _) = wrapped(spec, 7);
        a.send(b"through").unwrap();
        a.send(b"gone").unwrap(); // partition starts here
        a.send(b"also gone").unwrap();
        assert_eq!(b.recv().unwrap(), b"through");
        // Opposite direction still works.
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn recv_partition_times_out_instead_of_hanging() {
        let spec = FaultSpec::recv(FaultKind::PartitionOneWay, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        b.send(b"swallowed").unwrap();
        let err = a.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn reset_kills_the_connection() {
        let spec = FaultSpec::send(FaultKind::Reset, Trigger::AfterBytes(10));
        let (mut a, mut b, hook) = wrapped(spec, 7);
        a.send(&[0u8; 8]).unwrap();
        let err = a.send(&[0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Subsequent sends keep failing; the peer sees EOF.
        assert!(a.send(b"x").is_err());
        assert_eq!(b.recv().unwrap().len(), 8);
        assert!(b.recv().is_err());
        assert_eq!(hook.total_fires(), 1);
    }

    #[test]
    fn recv_direction_faults_apply() {
        let spec = FaultSpec::recv(FaultKind::Drop, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        b.send(b"dropped").unwrap();
        b.send(b"kept").unwrap();
        assert_eq!(a.recv().unwrap(), b"kept");
        // Duplicate on recv.
        let spec = FaultSpec::recv(FaultKind::Duplicate, Trigger::OnRecord(0));
        let (mut a, mut b, _) = wrapped(spec, 7);
        b.send(b"twice").unwrap();
        b.send(b"once").unwrap();
        assert_eq!(a.recv().unwrap(), b"twice");
        assert_eq!(a.recv().unwrap(), b"twice");
        assert_eq!(a.recv().unwrap(), b"once");
    }

    #[test]
    fn global_budget_spans_links() {
        // One hook, two links: the single-fire budget is shared, so the
        // "retry" link sees clean traffic.
        let spec = FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(0));
        let hook = ChaosHook::new(ChaosConfig::single(7, spec));
        let (a1, mut b1) = pipe();
        let mut l1 = hook.wrap(Box::new(a1));
        l1.send(b"eaten").unwrap();
        let (a2, mut b2) = pipe();
        let mut l2 = hook.wrap(Box::new(a2));
        l2.send(b"survives").unwrap();
        assert_eq!(b2.recv().unwrap(), b"survives");
        l1.send(b"now clean").unwrap();
        assert_eq!(b1.recv().unwrap(), b"now clean");
        assert_eq!(hook.total_fires(), 1);
    }

    #[test]
    fn disarmed_hook_passes_through_until_armed() {
        let spec = FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(0)).unlimited();
        let hook = ChaosHook::disarmed(ChaosConfig::single(7, spec));
        let (a, mut b) = pipe();
        let mut l = hook.wrap(Box::new(a));
        l.send(b"handshake").unwrap();
        assert_eq!(b.recv().unwrap(), b"handshake");
        assert_eq!(hook.total_fires(), 0);
        hook.arm();
        // Counters only advance while armed, so OnRecord(0) is the first
        // armed message — but the handshake message already advanced the
        // counter. Use a fresh link, as real callers do per attempt.
        let (a2, mut b2) = pipe();
        let mut l2 = hook.wrap(Box::new(a2));
        l2.send(b"gone").unwrap();
        l2.send(b"kept").unwrap();
        assert_eq!(b2.recv().unwrap(), b"kept");
    }

    #[test]
    fn probability_schedule_replays_exactly() {
        let spec =
            FaultSpec::send(FaultKind::Drop, Trigger::Probability(0.3)).unlimited();
        let run = |seed: u64| {
            let hook = ChaosHook::new(ChaosConfig::single(seed, spec.clone()));
            let (a, mut b) = pipe();
            let mut l = hook.wrap(Box::new(a));
            for i in 0..50u8 {
                l.send(&[i]).unwrap();
            }
            l.close().unwrap();
            let mut got = Vec::new();
            while let Ok(m) = b.recv() {
                got.push(m[0]);
            }
            got
        };
        let first = run(1234);
        assert_eq!(first, run(1234), "same seed must replay byte-identically");
        assert!(first.len() < 50, "some records should drop");
        assert_ne!(first, run(4321), "different seed, different schedule");
    }

    #[test]
    fn vectored_sends_pass_through_chaos() {
        let spec = FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(0));
        let (mut a, mut b, hook) = wrapped(spec, 7);
        a.send_vectored(&[IoSlice::new(b"head"), IoSlice::new(b"tail")]).unwrap();
        a.send_vectored(&[IoSlice::new(b"second")]).unwrap();
        assert_eq!(b.recv().unwrap(), b"second");
        assert_eq!(hook.total_fires(), 1);
    }

    #[test]
    fn after_bytes_triggers_on_first_crossing() {
        let spec = FaultSpec::send(FaultKind::Drop, Trigger::AfterBytes(100));
        let (mut a, mut b, hook) = wrapped(spec, 7);
        a.send(&[1u8; 100]).unwrap(); // exactly at the boundary: no fire
        assert_eq!(hook.total_fires(), 0);
        a.send(&[2u8; 1]).unwrap(); // crosses: dropped
        a.send(&[3u8; 1]).unwrap();
        assert_eq!(b.recv().unwrap().len(), 100);
        assert_eq!(b.recv().unwrap(), &[3u8]);
        assert_eq!(hook.total_fires(), 1);
    }

    #[test]
    fn every_fired_fault_emits_a_trace_event_including_delay() {
        // Delay is the softest fault — the payload still arrives, just
        // maximally late — so without the trace event it is invisible.
        let spec = FaultSpec::send(FaultKind::Delay, Trigger::OnRecord(0));
        let hook = ChaosHook::new(ChaosConfig::single(7, spec));
        let obs = Obs::new("chaos-test");
        hook.set_obs(&obs);
        let (a, mut b) = pipe();
        let mut l = hook.wrap(Box::new(a));
        l.send(b"late").unwrap();
        l.send(b"ontime").unwrap();
        assert_eq!(b.recv().unwrap(), b"ontime");
        assert_eq!(hook.total_fires(), 1);
        assert_eq!(obs.count_events("chaos.fault"), 1);
        let trace = obs.export_stable();
        assert!(trace.contains("\"kind\":\"Delay\""), "{trace}");
        assert!(trace.contains("\"seed\":7"), "{trace}");
        assert!(trace.contains("\"record\":0"), "{trace}");
        assert_eq!(obs.metrics().counter_value("chaos.faults_fired"), 1);
    }

    #[test]
    fn fault_events_match_fires_across_kinds() {
        for kind in [FaultKind::Drop, FaultKind::Delay, FaultKind::Duplicate, FaultKind::Reorder] {
            let spec = FaultSpec::send(kind, Trigger::OnRecord(1));
            let hook = ChaosHook::new(ChaosConfig::single(11, spec));
            let obs = Obs::new("chaos-test");
            hook.set_obs(&obs);
            let (a, _b) = pipe();
            let mut l = hook.wrap(Box::new(a));
            for _ in 0..4 {
                l.send(b"m").unwrap();
            }
            assert_eq!(
                hook.total_fires() as usize,
                obs.count_events("chaos.fault"),
                "fires and trace events must agree for {kind:?}"
            );
        }
    }

    #[test]
    fn zero_byte_budget_fires_immediately() {
        // Regression twin of the FaultInjector after_bytes == 0 case.
        let spec = FaultSpec::send(FaultKind::Reset, Trigger::AfterBytes(0));
        let (mut a, _b, _hook) = wrapped(spec, 7);
        assert_eq!(a.send(&[1]).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }
}
