//! Token-bucket rate limiting driver.
//!
//! Experiment E5 (striping) needs per-DTP-node bandwidth limits so that
//! adding stripes actually adds capacity, as on a real cluster where each
//! data mover has its own NIC.

use crate::link::Link;
use std::io;
use std::time::{Duration, Instant};

/// A rate-limiting wrapper around any [`Link`].
pub struct Throttle<L: Link> {
    inner: L,
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: Instant,
}

impl<L: Link> Throttle<L> {
    /// Limit `inner` to `rate_bytes_per_sec`, allowing bursts of
    /// `burst_bytes` (burst also bounds the largest single message that
    /// can pass without waiting multiple refill cycles).
    pub fn new(inner: L, rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "rate must be positive");
        assert!(burst_bytes > 0.0, "burst must be positive");
        Throttle {
            inner,
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes,
            last_refill: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
    }

    fn acquire(&mut self, bytes: usize) {
        let mut need = bytes as f64;
        loop {
            self.refill();
            if self.tokens >= need {
                self.tokens -= need;
                return;
            }
            // Large messages may exceed the burst: consume what's there
            // and wait for the rest in bounded chunks.
            let take = self.tokens.max(0.0);
            self.tokens -= take;
            need -= take;
            let wait_s = (need.min(self.burst_bytes) / self.rate_bytes_per_sec).max(0.0005);
            std::thread::sleep(Duration::from_secs_f64(wait_s));
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_sec
    }

    /// Unwrap the inner link.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: Link> Link for Throttle<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        self.acquire(data.len());
        self.inner.send(data)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let msg = self.inner.recv()?;
        // Pace the receive path too: delaying the next recv backpressures
        // the sender, modelling an ingress-limited NIC.
        self.acquire(msg.len());
        Ok(msg)
    }

    fn close(&mut self) -> io::Result<()> {
        self.inner.close()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let n = self.inner.recv_into(buf)?;
        self.acquire(n);
        Ok(n)
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        self.acquire(parts.iter().map(|p| p.len()).sum());
        self.inner.send_vectored(parts)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::pipe;

    #[test]
    fn throttle_enforces_rate() {
        let (a, mut b) = pipe();
        // 1 MB/s, 64 KB burst.
        let mut t = Throttle::new(a, 1_000_000.0, 65_536.0);
        let reader = std::thread::spawn(move || {
            let mut total = 0usize;
            while let Ok(m) = b.recv() {
                total += m.len();
            }
            total
        });
        let payload = vec![0u8; 32 * 1024];
        let start = Instant::now();
        // 512 KB total; at 1 MB/s should take >= ~0.4s (minus the burst).
        for _ in 0..16 {
            t.send(&payload).unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        t.close().unwrap();
        assert_eq!(reader.join().unwrap(), 512 * 1024);
        assert!(elapsed >= 0.35, "sent too fast: {elapsed}s");
        assert!(elapsed < 2.0, "sent too slow: {elapsed}s");
    }

    #[test]
    fn message_larger_than_burst_passes() {
        let (a, mut b) = pipe();
        let mut t = Throttle::new(a, 10_000_000.0, 4096.0);
        let big = vec![1u8; 64 * 1024];
        t.send(&big).unwrap();
        assert_eq!(b.recv().unwrap().len(), 64 * 1024);
    }

    #[test]
    fn recv_is_throttled_too() {
        let (a, mut b) = pipe();
        // 100 KB/s with a 1 KB burst: 20 KB inbound needs ~0.19 s.
        let mut t = Throttle::new(a, 100_000.0, 1_000.0);
        b.send(&vec![0u8; 10_000]).unwrap();
        b.send(&vec![0u8; 10_000]).unwrap();
        let start = Instant::now();
        assert_eq!(t.recv().unwrap().len(), 10_000);
        assert_eq!(t.recv().unwrap().len(), 10_000);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.15, "recv not paced: {elapsed}s");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let (a, _b) = pipe();
        let _ = Throttle::new(a, 0.0, 10.0);
    }
}
