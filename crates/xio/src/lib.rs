//! # ig-xio — an XIO-style extensible I/O driver stack
//!
//! Globus GridFTP's "extensible I/O interface allows GridFTP to target
//! high-performance wide-area communication protocols" (§II-A, citing the
//! Globus XIO paper). This crate reproduces the architecture: a
//! message-oriented [`link::Link`] trait plus stackable drivers —
//!
//! * [`link::pipe`] — an in-process transport pair carrying real bytes
//!   (tests and the in-process simulator);
//! * [`link::TcpLink`] — length-framed TCP (real data channels);
//! * [`throttle::Throttle`] — token-bucket rate limiting (models per-NIC
//!   limits in the striping experiment E5);
//! * [`telemetry::Telemetry`] — byte/message counters and throughput
//!   (the usage-reporting hooks behind Fig 1);
//! * [`obs::ObsLink`] — per-message latency histograms and byte counters
//!   into an `ig-obs` registry (DTP block latency for `SITE STATS`);
//! * [`secure::SecureLink`] — a GSI security context as a driver, so a
//!   data channel gains DCAU + `PROT` protection by pushing one more
//!   driver onto the stack, exactly the XIO composition model;
//! * [`chaos::ChaosLink`] — seeded, deterministic fault injection (drop,
//!   delay, truncate, duplicate, reorder, bit-flip, one-way partition,
//!   reset) so recovery paths are testable and failures replay exactly;
//! * [`retry::RetryPolicy`] — the shared retry/timeout/backoff policy
//!   every retrying layer (client dial, third-party transfer, hosted
//!   service) consumes instead of hand-rolled loops;
//! * [`test_support`] — the deterministic [`test_support::ManualClock`]
//!   and bounded-retry measurement helpers the timing-sensitive tests
//!   across the workspace share (not used by production paths);
//! * [`epoll`] (Linux) + [`nb::NbFramed`] + [`wheel::DeadlineWheel`] —
//!   the readiness, nonblocking-framing, and timer primitives behind
//!   the server's event-driven reactor core (`ServerConfig::core`).

#![deny(rust_2018_idioms)]

pub mod chaos;
#[cfg(target_os = "linux")]
pub mod epoll;
pub mod link;
pub mod nb;
pub mod obs;
pub mod retry;
pub mod secure;
pub mod telemetry;
pub mod test_support;
pub mod udp;
#[cfg(target_os = "linux")]
pub mod uds;
pub mod throttle;
pub mod wheel;

pub use chaos::{ChaosConfig, ChaosHook, ChaosLink, Direction, FaultKind, FaultSpec, Trigger};
#[cfg(target_os = "linux")]
pub use epoll::{wait_writable, Epoll, Event, Interest, WakeFd};
pub use link::{pipe, Link, PipeLink, TcpLink};
pub use nb::{FrameBuf, NbFramed};
pub use wheel::DeadlineWheel;
pub use obs::ObsLink;
pub use retry::{splitmix64, RetryError, RetryPolicy};
pub use secure::{secure_accept, secure_connect, SecureLink};
pub use telemetry::{Counters, Telemetry};
pub use throttle::Throttle;
pub use udp::{ChaosFault, DataTransport, DatagramChaos, UdpConfig, UdpLink, UdpListener};
#[cfg(target_os = "linux")]
pub use uds::UdsListener;
