//! Nonblocking framed transport for the reactor core.
//!
//! [`FrameBuf`] is a pure incremental decoder for the wire format
//! [`crate::link::TcpLink`] speaks (4-byte big-endian length prefix +
//! payload, frames capped at [`crate::link::MAX_FRAME`]): bytes go in
//! via [`FrameBuf::push`] in whatever chunks the kernel delivers, whole
//! frames come out via [`FrameBuf::next_frame`]. The decode is
//! chunking-invariant — any split of the same byte stream yields the
//! same frame sequence — which is what the reactor's differential tests
//! hold it to.
//!
//! [`NbFramed`] couples a `FrameBuf` with a nonblocking `TcpStream` and
//! an outbound staging buffer, giving the reactor the four verbs it
//! needs: `fill` (drain the kernel on readable), `next_frame`,
//! `queue_frame`, and `flush` (on writable).

use crate::link::MAX_FRAME;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Incremental decoder for length-prefixed frames.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append raw bytes from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: keeps steady-state capacity at one
        // frame rather than the whole session history.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame, if one has fully arrived.
    ///
    /// `Err` means the peer announced a frame larger than `MAX_FRAME` —
    /// a protocol violation; the connection should be dropped.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds cap"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }

    /// Encode `data` in the same wire format (length prefix + payload).
    pub fn encode(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + data.len());
        out.extend_from_slice(&(data.len() as u32).to_be_bytes());
        out.extend_from_slice(data);
        out
    }
}

/// A nonblocking, length-framed TCP connection.
pub struct NbFramed {
    stream: TcpStream,
    inbuf: FrameBuf,
    out: VecDeque<u8>,
    eof: bool,
}

impl NbFramed {
    /// Take ownership of an accepted stream, switching it to
    /// nonblocking mode (a file-description flag: it applies to every
    /// dup of this socket).
    pub fn new(stream: TcpStream) -> io::Result<NbFramed> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(NbFramed { stream, inbuf: FrameBuf::new(), out: VecDeque::new(), eof: false })
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Read until the kernel runs dry (`WouldBlock`) or EOF.
    /// Hard I/O errors propagate; EOF is remembered, not an error.
    pub fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.inbuf.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Did the peer close its write side?
    pub fn saw_eof(&self) -> bool {
        self.eof
    }

    /// Next fully-buffered inbound frame.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inbuf.next_frame()
    }

    /// Stage a frame (prefix + payload) for transmission.
    pub fn queue_frame(&mut self, data: &[u8]) {
        self.out.extend(&(data.len() as u32).to_be_bytes());
        self.out.extend(data);
    }

    /// Push staged bytes into the socket. Returns `true` once the
    /// staging buffer is empty.
    pub fn flush(&mut self) -> io::Result<bool> {
        while !self.out.is_empty() {
            let (head, _) = self.out.as_slices();
            match self.stream.write(head) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket wrote 0"))
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Are staged bytes waiting on socket writability?
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames_to_wire(frames: &[Vec<u8>]) -> Vec<u8> {
        let mut wire = Vec::new();
        for f in frames {
            wire.extend_from_slice(&FrameBuf::encode(f));
        }
        wire
    }

    fn decode_with_cuts(wire: &[u8], cuts: &[usize]) -> (Vec<Vec<u8>>, usize) {
        let mut points: Vec<usize> = cuts.to_vec();
        points.push(0);
        points.push(wire.len());
        points.sort_unstable();
        points.dedup();
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for w in points.windows(2) {
            fb.push(&wire[w[0]..w[1]]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        (got, fb.pending())
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut fb = FrameBuf::new();
        fb.push(&FrameBuf::encode(b"hello"));
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"hello");
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut fb = FrameBuf::new();
        fb.push(&u32::MAX.to_be_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn empty_frame_is_legal() {
        let mut fb = FrameBuf::new();
        fb.push(&FrameBuf::encode(b""));
        assert_eq!(fb.next_frame().unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let wire = frames_to_wire(&[b"alpha".to_vec(), b"beta".to_vec()]);
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            fb.push(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    /// Every split point of a two-frame wire yields the same decode —
    /// exhaustive over single cuts; the proptest in
    /// `tests/properties.rs` covers arbitrary multi-cut splits.
    #[test]
    fn every_single_split_decodes_identically() {
        let frames = vec![b"USER alice".to_vec(), vec![], b"NOOP".to_vec()];
        let wire = frames_to_wire(&frames);
        for cut in 0..=wire.len() {
            let (got, left) = decode_with_cuts(&wire, &[cut]);
            assert_eq!(got, frames, "split at {cut}");
            assert_eq!(left, 0);
        }
    }

    /// Seeded multi-cut fuzz (splitmix64, std-only so it runs in the
    /// offline harness too): random frames, random cut sets.
    #[test]
    fn random_multi_splits_decode_identically() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for _ in 0..200 {
            let nframes = (next() % 6) as usize;
            let frames: Vec<Vec<u8>> = (0..nframes)
                .map(|_| {
                    let len = (next() % 120) as usize;
                    (0..len).map(|_| next() as u8).collect()
                })
                .collect();
            let wire = frames_to_wire(&frames);
            let ncuts = (next() % 10) as usize;
            let cuts: Vec<usize> =
                (0..ncuts).map(|_| (next() as usize) % (wire.len() + 1)).collect();
            let (got, left) = decode_with_cuts(&wire, &cuts);
            assert_eq!(got, frames);
            assert_eq!(left, 0);
        }
    }
}
