//! Property tests for the XIO driver stack: message integrity and
//! ordering through arbitrary driver compositions.

use ig_xio::{pipe, Counters, Link, Telemetry, Throttle};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipe_preserves_messages_in_order(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..20),
    ) {
        let (mut a, mut b) = pipe();
        let sent = msgs.clone();
        let writer = std::thread::spawn(move || {
            for m in &sent {
                a.send(m).unwrap();
            }
            a.close().unwrap();
        });
        let mut got = Vec::new();
        while let Ok(m) = b.recv() {
            got.push(m);
        }
        writer.join().unwrap();
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn telemetry_counts_exactly(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..15),
    ) {
        let (a, mut b) = pipe();
        let counters = Counters::new();
        let mut t = Telemetry::new(a, Arc::clone(&counters));
        let total: u64 = msgs.iter().map(|m| m.len() as u64).sum();
        let reader = std::thread::spawn(move || {
            let mut n = 0u64;
            while let Ok(m) = b.recv() {
                n += m.len() as u64;
            }
            n
        });
        for m in &msgs {
            t.send(m).unwrap();
        }
        t.close().unwrap();
        prop_assert_eq!(reader.join().unwrap(), total);
        prop_assert_eq!(counters.bytes_sent.load(Ordering::Relaxed), total);
        prop_assert_eq!(counters.msgs_sent.load(Ordering::Relaxed), msgs.len() as u64);
    }

    #[test]
    fn throttle_preserves_content(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..8),
    ) {
        // A generous rate so the test is fast; content must be untouched.
        let (a, mut b) = pipe();
        let mut t = Throttle::new(a, 50e6, 1e6);
        let sent = msgs.clone();
        let writer = std::thread::spawn(move || {
            for m in &sent {
                t.send(m).unwrap();
            }
            t.close().unwrap();
        });
        let mut got = Vec::new();
        while let Ok(m) = b.recv() {
            got.push(m);
        }
        writer.join().unwrap();
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn stacked_drivers_compose(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..150), 1..10),
    ) {
        // Telemetry over throttle over pipe — arbitrary stacking is the
        // whole point of the XIO model.
        let (a, mut b) = pipe();
        let counters = Counters::new();
        let mut stack = Telemetry::new(Throttle::new(a, 100e6, 1e6), Arc::clone(&counters));
        let sent = msgs.clone();
        let writer = std::thread::spawn(move || {
            for m in &sent {
                stack.send(m).unwrap();
            }
            stack.close().unwrap();
        });
        let mut got = Vec::new();
        while let Ok(m) = b.recv() {
            got.push(m);
        }
        writer.join().unwrap();
        prop_assert_eq!(&got, &msgs);
        prop_assert_eq!(
            counters.msgs_sent.load(Ordering::Relaxed),
            msgs.len() as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `FrameBuf` decode is invariant under how the byte stream is cut
    /// into read chunks — the property the reactor core's partial-read
    /// path stands on (`nb.rs` holds the exhaustive single-cut case).
    #[test]
    fn framebuf_decode_is_chunking_invariant(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..8),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        use ig_xio::FrameBuf;
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&FrameBuf::encode(f));
        }
        let mut points: Vec<usize> = cuts.iter().map(|i| i.index(wire.len() + 1)).collect();
        points.push(0);
        points.push(wire.len());
        points.sort_unstable();
        points.dedup();

        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for w in points.windows(2) {
            fb.push(&wire[w[0]..w[1]]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(fb.pending(), 0);
    }
}
