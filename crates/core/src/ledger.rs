//! The §III installation procedures as data — experiment E8's source.
//!
//! Step lists are transcribed from the paper: conventional installation
//! steps (a)–(d) (§III-A item 1), security configuration steps (e)–(h)
//! (item 2), per-user work (item 3), plus the GridFTP-Lite and GCMU
//! procedures of §III-B and §IV-D/E. Estimated times are coarse
//! order-of-magnitude figures for the *manual* steps ("obtaining an X.509
//! certificate from a well-known certificate authority alone is a complex
//! and time-consuming process ... out-of-band vetting", §IV).

use serde::{Deserialize, Serialize};

/// One setup step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// What the step is.
    pub name: String,
    /// Does a human have to act (vs. scripted)?
    pub manual: bool,
    /// Rough wall-clock estimate in minutes.
    pub est_minutes: f64,
    /// Is this a known failure source (the paper calls out gridmap
    /// maintenance and certificate handling)?
    pub error_prone: bool,
}

impl Step {
    fn new(name: &str, manual: bool, est_minutes: f64, error_prone: bool) -> Self {
        Step { name: name.into(), manual, est_minutes, error_prone }
    }
}

/// A full procedure for one deployment method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    /// Method name.
    pub method: String,
    /// One-time admin steps.
    pub admin_steps: Vec<Step>,
    /// Admin steps required *per user* (the gridmap tax).
    pub per_user_admin_steps: Vec<Step>,
    /// Steps each user performs before their first transfer.
    pub user_steps: Vec<Step>,
    /// Can transfers be handed off to agents like Globus Online
    /// (requires delegation — SSH cannot, §III-B)?
    pub supports_delegation: bool,
    /// Is the data channel authenticated/protectable?
    pub data_channel_security: bool,
    /// Does striped operation have secure internal channels?
    pub secure_striping: bool,
}

/// Deployment methods compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetupMethod {
    /// §III-A: conventional GSI installation.
    ConventionalGsi,
    /// §III-B-1: SSH-based GridFTP-Lite.
    GridFtpLite,
    /// §IV: Globus Connect Multi User.
    Gcmu,
}

/// The procedure for a method.
pub fn procedure(method: SetupMethod) -> Procedure {
    match method {
        SetupMethod::ConventionalGsi => Procedure {
            method: "Conventional GSI".into(),
            admin_steps: vec![
                // §III-A item 1, steps (a)-(d).
                Step::new("(a) download Globus", false, 2.0, false),
                Step::new("(b) untar the Globus tar file", false, 1.0, false),
                Step::new("(c) run configure", false, 5.0, false),
                Step::new("(d) run make and make install", false, 15.0, false),
                // item 2, steps (e)-(h).
                Step::new("(e) obtain X.509 host certificate from well-known CA", true, 2880.0, true),
                Step::new("(f) install the X.509 host certificate", true, 10.0, true),
                Step::new("(g) configure trusted certificates directory", true, 15.0, true),
                Step::new("(h) set up gridmap authorization", true, 10.0, true),
            ],
            per_user_admin_steps: vec![Step::new(
                "add user's DN to the gridmap file",
                true,
                5.0,
                true, // "a frequent source of errors and complaints"
            )],
            user_steps: vec![
                Step::new("obtain X.509 user certificate from well-known CA", true, 2880.0, true),
                Step::new("install user certificate (openssl format juggling)", true, 20.0, true),
                Step::new("configure trusted certificates directory", true, 15.0, true),
                Step::new("send DN to server admin for mapping", true, 5.0, true),
            ],
            supports_delegation: true,
            data_channel_security: true,
            secure_striping: true,
        },
        SetupMethod::GridFtpLite => Procedure {
            method: "GridFTP-Lite (SSH)".into(),
            admin_steps: vec![
                Step::new("(a) download Globus", false, 2.0, false),
                Step::new("(b) untar", false, 1.0, false),
                Step::new("(c) run configure", false, 5.0, false),
                Step::new("(d) run make and make install", false, 15.0, false),
            ],
            per_user_admin_steps: vec![], // SSH accounts already exist
            user_steps: vec![Step::new("ssh to start the server on demand", false, 1.0, false)],
            supports_delegation: false, // "SSH does not support delegation"
            data_channel_security: false, // "the data channel has no security"
            secure_striping: false, // "no security ... between control node and data mover"
        },
        SetupMethod::Gcmu => Procedure {
            method: "GCMU".into(),
            admin_steps: vec![
                // §IV-D: exactly four commands.
                Step::new("wget globusconnect-multiuser-latest.tgz", false, 1.0, false),
                Step::new("tar -xvzf globusconnect-multiuser-latest.tgz", false, 0.5, false),
                Step::new("cd gcmu*", false, 0.1, false),
                Step::new("sudo ./install", false, 2.0, false),
            ],
            per_user_admin_steps: vec![], // no gridmap, no per-user work
            user_steps: vec![
                // §IV-E: install client, myproxy-logon with site password.
                Step::new("install GCMU client tools", false, 3.0, false),
                Step::new("myproxy-logon -b -T -s <server> (site password)", false, 1.0, false),
            ],
            supports_delegation: true,
            data_channel_security: true,
            secure_striping: true,
        },
    }
}

impl Procedure {
    /// Count of manual steps (admin one-time).
    pub fn manual_admin_steps(&self) -> usize {
        self.admin_steps.iter().filter(|s| s.manual).count()
    }

    /// Total one-time admin steps.
    pub fn total_admin_steps(&self) -> usize {
        self.admin_steps.len()
    }

    /// Estimated one-time admin minutes.
    pub fn admin_minutes(&self) -> f64 {
        self.admin_steps.iter().map(|s| s.est_minutes).sum()
    }

    /// Estimated minutes until a new user can transfer (user steps plus
    /// per-user admin steps).
    pub fn time_to_first_transfer_minutes(&self) -> f64 {
        self.user_steps.iter().map(|s| s.est_minutes).sum::<f64>()
            + self.per_user_admin_steps.iter().map(|s| s.est_minutes).sum::<f64>()
    }

    /// Count of error-prone steps across the whole procedure.
    pub fn error_opportunities(&self) -> usize {
        self.admin_steps
            .iter()
            .chain(&self.per_user_admin_steps)
            .chain(&self.user_steps)
            .filter(|s| s.error_prone)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcmu_is_four_commands_and_zero_per_user_admin() {
        let gcmu = procedure(SetupMethod::Gcmu);
        assert_eq!(gcmu.total_admin_steps(), 4, "§IV-D: four commands");
        assert_eq!(gcmu.manual_admin_steps(), 0);
        assert!(gcmu.per_user_admin_steps.is_empty());
        assert_eq!(gcmu.error_opportunities(), 0);
    }

    #[test]
    fn conventional_is_heavier_on_every_axis() {
        let conv = procedure(SetupMethod::ConventionalGsi);
        let gcmu = procedure(SetupMethod::Gcmu);
        assert!(conv.total_admin_steps() > gcmu.total_admin_steps());
        assert!(conv.manual_admin_steps() >= 4);
        assert!(conv.admin_minutes() > 10.0 * gcmu.admin_minutes());
        assert!(
            conv.time_to_first_transfer_minutes()
                > 100.0 * gcmu.time_to_first_transfer_minutes()
        );
        assert!(conv.error_opportunities() >= 8);
    }

    #[test]
    fn gridftp_lite_tradeoffs_match_the_paper() {
        let lite = procedure(SetupMethod::GridFtpLite);
        // Easy to set up...
        assert_eq!(lite.manual_admin_steps(), 0);
        assert!(lite.per_user_admin_steps.is_empty());
        // ...but §III-B's three major limitations hold:
        assert!(!lite.data_channel_security);
        assert!(!lite.supports_delegation);
        assert!(!lite.secure_striping);
        // GCMU keeps all three capabilities.
        let gcmu = procedure(SetupMethod::Gcmu);
        assert!(gcmu.data_channel_security && gcmu.supports_delegation && gcmu.secure_striping);
    }

    #[test]
    fn procedures_serialize_for_reports() {
        let p = procedure(SetupMethod::Gcmu);
        let json = serde_json::to_string(&p).unwrap();
        let back: Procedure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
