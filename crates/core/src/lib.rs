//! # ig-gcmu — Globus Connect Multi User
//!
//! The paper's primary contribution (§IV): a packaging of a GridFTP
//! server, a MyProxy Online CA and a custom authorization callout that
//! makes secure GridFTP "instant":
//!
//! * [`installer`] — the programmatic equivalent of the four-command
//!   server install (`wget … && tar xzf … && cd gcmu* && sudo ./install`):
//!   it creates the online CA, issues the host certificate from it (no
//!   external CA — conventional steps (e)–(g) vanish), wires the GCMU
//!   authorization callout (no gridmap — step (h) vanishes), and starts
//!   both services.
//! * [`ledger`] — the §III installation procedures (conventional GSI,
//!   GridFTP-Lite, GCMU) as data: admin steps, per-user steps, error
//!   opportunities, capability matrix. Experiment E8 prints it.
//! * [`oauth`] — the §VI-B/Fig 7 OAuth server (the paper's future-work
//!   item, implemented): users type their password only on a page served
//!   by the endpoint; third-party agents exchange an authorization code
//!   for the short-term certificate and never see the password.

pub mod error;
pub mod installer;
pub mod ledger;
pub mod oauth;

/// The shared retry/timeout/backoff policy (home crate: `ig-xio`, which
/// sits below every consumer; re-exported here because this crate is the
/// product's core and callers naturally look for policy knobs on it).
pub use ig_xio::retry;

pub use error::GcmuError;
pub use installer::{GcmuEndpoint, InstallOptions};
pub use ig_xio::retry::{RetryError, RetryPolicy};
pub use ledger::{procedure, Procedure, SetupMethod};
pub use oauth::OAuthServer;
