//! The GCMU installer and the running endpoint it produces.
//!
//! §IV-D: "On the server machine, the following four commands are
//! required to download the tarball, untar, and run the install script to
//! get the GridFTP server and MyProxy CA running." [`InstallOptions::install`]
//! is that install script: everything the conventional procedure did by
//! hand — host certificate from a well-known CA, trusted-certificates
//! directory, gridmap maintenance — happens here automatically.

use crate::error::Result;
use crate::oauth::OAuthServer;
use ig_myproxy::ca::OnlineCa;
use ig_myproxy::client::LogonOutput;
use ig_myproxy::pam::{AuthBackend, FileBackend, PamStack};
use ig_myproxy::MyProxyServer;
use ig_pki::time::Clock;
use ig_pki::{Certificate, Credential, TrustStore};
use ig_protocol::HostPort;
use ig_server::{Dsi, GcmuAuthz, GridFtpServer, MemDsi, ServerConfig, UsageReporter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Installation options — the knobs of the `./install` script.
pub struct InstallOptions {
    /// Endpoint hostname.
    pub name: String,
    /// Local accounts `(username, password)` — normally these already
    /// exist in the site's identity system; for the file backend we
    /// provision them here.
    pub accounts: Vec<(String, String)>,
    /// Additional PAM backends (simulated LDAP/NIS/RADIUS/OTP).
    pub extra_pam: Vec<Box<dyn AuthBackend>>,
    /// Storage backend (default: in-memory with a home per account).
    pub dsi: Option<Arc<dyn Dsi>>,
    /// Stripes for the GridFTP server (1 = plain).
    pub stripes: usize,
    /// Per-stripe rate limit (bytes/s).
    pub stripe_rate: Option<f64>,
    /// Disable DCSC (to model a legacy endpoint).
    pub dcsc_enabled: bool,
    /// Also run an OAuth server (the paper's future-work feature).
    pub with_oauth: bool,
    /// Extra trust roots (classic CAs this site also accepts).
    pub extra_trust: Vec<Certificate>,
    /// Clock.
    pub clock: Clock,
    /// Determinism seed.
    pub seed: u64,
    /// RSA key size.
    pub key_bits: usize,
    /// Optional fault injector for the GridFTP data plane (E9).
    pub fault: Option<Arc<ig_server::FaultInjector>>,
}

impl InstallOptions {
    /// Defaults for an endpoint named `name`.
    pub fn new(name: &str) -> Self {
        InstallOptions {
            name: name.to_string(),
            accounts: Vec::new(),
            extra_pam: Vec::new(),
            dsi: None,
            stripes: 1,
            stripe_rate: None,
            dcsc_enabled: true,
            with_oauth: false,
            extra_trust: Vec::new(),
            clock: Clock::System,
            seed: 0x6c_d0,
            key_bits: 512,
            fault: None,
        }
    }

    /// Builder: local accounts.
    pub fn account(mut self, user: &str, password: &str) -> Self {
        self.accounts.push((user.to_string(), password.to_string()));
        self
    }

    /// Builder: clock.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: striped data plane.
    pub fn striped(mut self, stripes: usize, rate: Option<f64>) -> Self {
        self.stripes = stripes;
        self.stripe_rate = rate;
        self
    }

    /// Builder: legacy endpoint (no DCSC).
    pub fn legacy(mut self) -> Self {
        self.dcsc_enabled = false;
        self
    }

    /// Builder: enable the OAuth server.
    pub fn oauth(mut self) -> Self {
        self.with_oauth = true;
        self
    }

    /// Builder: accept an extra (classic) CA.
    pub fn trust_also(mut self, root: Certificate) -> Self {
        self.extra_trust.push(root);
        self
    }

    /// Builder: fault injector.
    pub fn fault(mut self, f: Arc<ig_server::FaultInjector>) -> Self {
        self.fault = Some(f);
        self
    }

    /// Run the install: the programmatic `sudo ./install`.
    pub fn install(self) -> Result<GcmuEndpoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // 1. Create the MyProxy Online CA (replaces "obtain a host
        //    certificate from a well-known CA").
        let ca = Arc::new(OnlineCa::create(&mut rng, &self.name, self.key_bits, self.clock)?);
        // 2. Issue the GridFTP host credential from the local CA.
        let (host_cert, host_key) = ca.issue_host_cert(&mut rng, self.key_bits)?;
        let host_cred = Credential::new(vec![host_cert, ca.root_cert()], host_key)?;
        // 3. Trusted-certificates directory: the local CA plus any
        //    additional CAs the admin opted into.
        let mut trust = TrustStore::new();
        trust.add_root_with_policy(ca.root_cert(), ca.signing_policy());
        for root in &self.extra_trust {
            trust.add_root(root.clone());
        }
        // 4. PAM stack over the local identity system.
        let mut files = FileBackend::new();
        for (user, password) in &self.accounts {
            files.add_user(user, password);
        }
        let mut backends: Vec<Box<dyn AuthBackend>> = vec![Box::new(files)];
        backends.extend(self.extra_pam);
        let pam = Arc::new(PamStack::new(backends));
        // 5. Storage with a home directory per account.
        let dsi: Arc<dyn Dsi> = match self.dsi {
            Some(d) => d,
            None => {
                let mem = MemDsi::new();
                let root = ig_server::UserContext::superuser();
                for (user, _) in &self.accounts {
                    mem.mkdir(&root, &format!("/home/{user}"))?;
                }
                Arc::new(mem)
            }
        };
        // 6. GridFTP server with the GCMU authorization callout —
        //    no gridmap file anywhere.
        let mut server_cfg = ServerConfig::new(
            &self.name,
            host_cred.clone(),
            trust.clone(),
            Arc::new(GcmuAuthz::new(&self.name)),
            Arc::clone(&dsi),
        )
        .with_clock(self.clock)
        .with_stripes(self.stripes, self.stripe_rate);
        server_cfg.dcsc_enabled = self.dcsc_enabled;
        server_cfg.key_bits = self.key_bits;
        if let Some(f) = self.fault {
            server_cfg = server_cfg.with_fault(f);
        }
        let usage = Arc::clone(&server_cfg.usage);
        let gridftp = GridFtpServer::start(server_cfg, self.seed.wrapping_mul(31))?;
        // 7. MyProxy server.
        let myproxy = MyProxyServer::start(
            Arc::clone(&ca),
            Arc::clone(&pam),
            host_cred,
            self.clock,
            self.seed.wrapping_mul(131),
        )?;
        // 8. Optional OAuth server (§VI-B / Fig 7).
        let oauth = if self.with_oauth {
            Some(Arc::new(OAuthServer::new(Arc::clone(&ca), Arc::clone(&pam), self.clock)))
        } else {
            None
        };
        Ok(GcmuEndpoint {
            name: self.name,
            ca,
            gridftp,
            myproxy,
            oauth,
            dsi,
            usage,
            trust,
            clock: self.clock,
        })
    }
}

/// A running GCMU endpoint: GridFTP + MyProxy CA (+ optional OAuth).
pub struct GcmuEndpoint {
    /// Endpoint hostname.
    pub name: String,
    /// The online CA.
    pub ca: Arc<OnlineCa>,
    /// The GridFTP server.
    pub gridftp: Arc<GridFtpServer>,
    /// The MyProxy server.
    pub myproxy: Arc<MyProxyServer>,
    /// The OAuth server, when installed.
    pub oauth: Option<Arc<OAuthServer>>,
    /// Storage.
    pub dsi: Arc<dyn Dsi>,
    /// Usage reporting.
    pub usage: Arc<UsageReporter>,
    /// The endpoint's trust store.
    pub trust: TrustStore,
    /// Clock shared by all components.
    pub clock: Clock,
}

impl GcmuEndpoint {
    /// GridFTP control-channel address.
    pub fn gridftp_addr(&self) -> HostPort {
        self.gridftp.addr()
    }

    /// MyProxy address.
    pub fn myproxy_addr(&self) -> HostPort {
        self.myproxy.addr()
    }

    /// Fig 3 steps 1–3 for a user: `myproxy-logon` with bootstrap trust.
    pub fn logon(
        &self,
        username: &str,
        password: &str,
        lifetime: u64,
        seed: u64,
    ) -> Result<LogonOutput> {
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(ig_myproxy::myproxy_logon(
            self.myproxy_addr(),
            username,
            password,
            lifetime,
            TrustStore::new(),
            true,
            self.clock,
            512,
            &mut rng,
        )?)
    }

    /// Build the client configuration from a logon: trust roots come from
    /// the logon output (nothing was installed by hand).
    pub fn client_config(&self, logon: &LogonOutput, seed: u64) -> ig_client::ClientConfig {
        let mut trust = TrustStore::new();
        for root in &logon.trust_roots {
            trust.add_root_with_policy(root.clone(), logon.signing_policy.clone());
        }
        ig_client::ClientConfig::new(logon.credential.clone(), trust)
            .with_clock(self.clock)
            .with_seed(seed)
    }

    /// Shut everything down.
    pub fn shutdown(&self) {
        self.gridftp.shutdown();
        self.myproxy.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_client::{transfer, ClientSession, TransferOpts};

    const NOW: u64 = 1_700_000_000;

    fn endpoint(seed: u64) -> GcmuEndpoint {
        InstallOptions::new("gcmu1.example.org")
            .account("alice", "alice pw")
            .account("bob", "bob pw")
            .clock(Clock::Fixed(NOW))
            .seed(seed)
            .install()
            .unwrap()
    }

    #[test]
    fn install_and_instant_transfer() {
        // The paper's whole pitch, end to end: install, logon with
        // username/password, transfer. No certificates were requested
        // from any external CA, no gridmap was edited.
        let ep = endpoint(1);
        let logon = ep.logon("alice", "alice pw", 3600, 42).unwrap();
        assert_eq!(
            logon.credential.identity().to_string(),
            "/O=GCMU/OU=gcmu1.example.org/CN=alice"
        );
        let cfg = ep.client_config(&logon, 43);
        let mut session = ClientSession::connect(ep.gridftp_addr(), cfg).unwrap();
        session.login().unwrap();
        let payload = b"instant gridftp!".to_vec();
        transfer::put_bytes(&mut session, "/home/alice/first.bin", &payload, &TransferOpts::default())
            .unwrap();
        let back =
            transfer::get_bytes(&mut session, "/home/alice/first.bin", &TransferOpts::default())
                .unwrap();
        assert_eq!(back, payload);
        session.quit().unwrap();
        assert_eq!(ep.usage.total_transfers(), 2);
        ep.shutdown();
    }

    #[test]
    fn wrong_password_blocks_logon() {
        let ep = endpoint(2);
        assert!(ep.logon("alice", "wrong", 3600, 50).is_err());
        ep.shutdown();
    }

    #[test]
    fn users_are_confined_to_their_homes() {
        let ep = endpoint(3);
        let alice = ep.logon("alice", "alice pw", 3600, 60).unwrap();
        let cfg = ep.client_config(&alice, 61);
        let mut session = ClientSession::connect(ep.gridftp_addr(), cfg).unwrap();
        session.login().unwrap();
        transfer::put_bytes(&mut session, "/home/alice/mine.bin", b"m", &TransferOpts::default())
            .unwrap();
        // Alice cannot write into bob's home (the setuid effect).
        let err = transfer::put_bytes(
            &mut session,
            "/home/bob/evil.bin",
            b"x",
            &TransferOpts::default(),
        );
        assert!(err.is_err());
        session.quit().unwrap();
        ep.shutdown();
    }

    #[test]
    fn foreign_gcmu_certificate_rejected() {
        // A credential from endpoint B does not authorize at endpoint A:
        // §IV — "this certificate will be used to authenticate with this
        // site only".
        let ep_a = endpoint(4);
        let ep_b = InstallOptions::new("gcmu2.example.org")
            .account("alice", "pw-b")
            .clock(Clock::Fixed(NOW))
            .seed(5)
            .install()
            .unwrap();
        let logon_b = ep_b.logon("alice", "pw-b", 3600, 70).unwrap();
        // Use B's credential against A (with B's trust so the *client*
        // accepts A? no — A's host cert is from A's CA, which B's logon
        // did not deliver; build trust that includes both roots to get
        // past server validation and hit the authz rejection).
        let mut trust = TrustStore::new();
        trust.add_root(ep_a.ca.root_cert());
        trust.add_root(ep_b.ca.root_cert());
        let cfg = ig_client::ClientConfig::new(logon_b.credential.clone(), trust)
            .with_clock(Clock::Fixed(NOW))
            .with_seed(71);
        let mut session = ClientSession::connect(ep_a.gridftp_addr(), cfg).unwrap();
        let err = session.login().unwrap_err();
        // A's server does not even trust B's CA on the control channel.
        assert!(err.to_string().contains("535") || err.to_string().contains("Auth"));
        ep_a.shutdown();
        ep_b.shutdown();
    }

    #[test]
    fn expired_short_lived_credential_rejected() {
        let ep = endpoint(6);
        let logon = ep.logon("alice", "alice pw", 600, 80).unwrap();
        // A client whose clock is 2 hours later: the credential is dead.
        let mut trust = TrustStore::new();
        for root in &logon.trust_roots {
            trust.add_root(root.clone());
        }
        let cfg = ig_client::ClientConfig::new(logon.credential.clone(), trust)
            .with_clock(Clock::Fixed(NOW + 7200))
            .with_seed(81);
        // Connect works; login must fail server-side (server clock is
        // fixed at NOW, but the *client's* own cert is checked by the
        // server at NOW... so instead verify expiry directly).
        assert_eq!(logon.credential.remaining_lifetime(NOW + 7200), 0);
        drop(cfg);
        ep.shutdown();
    }
}
