//! The GCMU OAuth server (§VI-B, Fig 7) — implemented future work.
//!
//! "With an OAuth server on GCMU endpoint ... users do not have to enter
//! a username or password on Globus Online. Instead, when users access a
//! GCMU endpoint, they will be redirected to a web page running on the
//! endpoint; when they enter the username/password on that site, Globus
//! Online will get a short-term certificate from the endpoint via the
//! OAuth protocol."
//!
//! The flow is the standard authorization-code grant:
//! 1. agent redirects the user to the endpoint ([`OAuthServer::authorize`]
//!    is the endpoint's login page — the password is a parameter *here*,
//!    at the endpoint, never at the agent);
//! 2. the endpoint returns a single-use authorization code;
//! 3. the agent exchanges code + CSR for a short-lived certificate
//!    ([`OAuthServer::exchange`]).
//!
//! Experiment E10 audits exactly which principals ever observe the
//! password under password-activation vs OAuth-activation.

use crate::error::{GcmuError, Result};
use ig_crypto::encode::hex_encode;
use ig_myproxy::ca::OnlineCa;
use ig_myproxy::pam::PamStack;
use ig_pki::cert::Certificate;
use ig_pki::time::Clock;
use ig_pki::CertificateSigningRequest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Authorization-code lifetime in seconds.
pub const CODE_LIFETIME: u64 = 600;

struct PendingCode {
    username: String,
    client_id: String,
    expires: u64,
}

/// The endpoint-resident OAuth server.
pub struct OAuthServer {
    ca: Arc<OnlineCa>,
    pam: Arc<PamStack>,
    clock: Clock,
    codes: Mutex<HashMap<String, PendingCode>>,
    counter: AtomicU64,
}

impl OAuthServer {
    /// Attach an OAuth front end to the endpoint's CA + PAM.
    pub fn new(ca: Arc<OnlineCa>, pam: Arc<PamStack>, clock: Clock) -> Self {
        OAuthServer { ca, pam, clock, codes: Mutex::new(HashMap::new()), counter: AtomicU64::new(1) }
    }

    /// The endpoint's login page: the user authenticates *here* and the
    /// agent (`client_id`) gets only an opaque code.
    pub fn authorize(&self, username: &str, password: &str, client_id: &str) -> Result<String> {
        self.pam
            .authenticate(username, password)
            .map_err(|e| GcmuError::OAuth(format!("login failed: {e}")))?;
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        let mut material = Vec::new();
        material.extend_from_slice(username.as_bytes());
        material.extend_from_slice(&n.to_be_bytes());
        material.extend_from_slice(client_id.as_bytes());
        let code = hex_encode(&ig_crypto::Sha256::digest(&material)[..16]);
        self.codes.lock().insert(
            code.clone(),
            PendingCode {
                username: username.to_string(),
                client_id: client_id.to_string(),
                expires: self.clock.now() + CODE_LIFETIME,
            },
        );
        Ok(code)
    }

    /// The token endpoint: the agent trades the code (plus a CSR whose
    /// key *it* generated, so it ends up holding the credential) for a
    /// short-lived certificate.
    pub fn exchange(
        &self,
        code: &str,
        client_id: &str,
        csr: &CertificateSigningRequest,
        lifetime: u64,
    ) -> Result<Certificate> {
        let pending = self
            .codes
            .lock()
            .remove(code)
            .ok_or_else(|| GcmuError::OAuth("unknown or already-used code".into()))?;
        if pending.client_id != client_id {
            return Err(GcmuError::OAuth("code was issued to a different client".into()));
        }
        if self.clock.now() >= pending.expires {
            return Err(GcmuError::OAuth("authorization code expired".into()));
        }
        self.ca
            .issue(&pending.username, csr, lifetime)
            .map_err(GcmuError::from)
    }

    /// Outstanding (unredeemed) codes — for tests and monitoring.
    pub fn pending_codes(&self) -> usize {
        self.codes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_myproxy::pam::FileBackend;
    use ig_pki::DistinguishedName;

    const NOW: u64 = 9_000_000;

    fn setup(seed: u64) -> OAuthServer {
        let mut rng = seeded(seed);
        let ca =
            Arc::new(OnlineCa::create(&mut rng, "oauth-ep.example.org", 512, Clock::Fixed(NOW)).unwrap());
        let mut files = FileBackend::new();
        files.add_user("alice", "web pw");
        let pam = Arc::new(PamStack::new(vec![Box::new(files)]));
        OAuthServer::new(ca, pam, Clock::Fixed(NOW))
    }

    fn csr(seed: u64) -> CertificateSigningRequest {
        let kp = ig_crypto::RsaKeyPair::generate(&mut seeded(seed), 512).unwrap();
        CertificateSigningRequest::create(DistinguishedName::from_pairs([("CN", "agent")]), &kp.private)
            .unwrap()
    }

    #[test]
    fn full_flow_issues_certificate() {
        let oauth = setup(1);
        let code = oauth.authorize("alice", "web pw", "globus-online").unwrap();
        assert_eq!(oauth.pending_codes(), 1);
        let cert = oauth.exchange(&code, "globus-online", &csr(2), 3600).unwrap();
        assert_eq!(cert.subject().common_name(), Some("alice"));
        assert_eq!(cert.online_ca_endpoint(), Some("oauth-ep.example.org"));
        assert_eq!(oauth.pending_codes(), 0);
    }

    #[test]
    fn wrong_password_refused_at_the_endpoint() {
        let oauth = setup(3);
        assert!(oauth.authorize("alice", "wrong", "go").is_err());
        assert_eq!(oauth.pending_codes(), 0);
    }

    #[test]
    fn code_is_single_use() {
        let oauth = setup(4);
        let code = oauth.authorize("alice", "web pw", "go").unwrap();
        oauth.exchange(&code, "go", &csr(5), 600).unwrap();
        assert!(oauth.exchange(&code, "go", &csr(6), 600).is_err());
    }

    #[test]
    fn code_bound_to_client() {
        let oauth = setup(7);
        let code = oauth.authorize("alice", "web pw", "globus-online").unwrap();
        let err = oauth.exchange(&code, "evil-agent", &csr(8), 600).unwrap_err();
        assert!(err.to_string().contains("different client"));
        // Stolen + misused codes are burned.
        assert!(oauth.exchange(&code, "globus-online", &csr(9), 600).is_err());
    }

    #[test]
    fn expired_code_rejected() {
        let mut rng = seeded(10);
        let ca =
            Arc::new(OnlineCa::create(&mut rng, "ep", 512, Clock::Fixed(NOW)).unwrap());
        let mut files = FileBackend::new();
        files.add_user("alice", "pw");
        let pam = Arc::new(PamStack::new(vec![Box::new(files)]));
        // Server whose clock jumps between authorize and exchange.
        let oauth = OAuthServer::new(Arc::clone(&ca), Arc::clone(&pam), Clock::Fixed(NOW));
        let code = oauth.authorize("alice", "pw", "go").unwrap();
        let late = OAuthServer::new(ca, pam, Clock::Fixed(NOW + CODE_LIFETIME + 1));
        // Transplant the code into the late server to simulate expiry.
        late.codes.lock().extend(oauth.codes.lock().drain());
        assert!(late.exchange(&code, "go", &csr(11), 600).is_err());
    }

    #[test]
    fn bad_csr_rejected() {
        let oauth = setup(12);
        let code = oauth.authorize("alice", "web pw", "go").unwrap();
        let mut bad = csr(13);
        bad.signature[0] ^= 1;
        assert!(oauth.exchange(&code, "go", &bad, 600).is_err());
    }
}
