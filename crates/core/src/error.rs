//! GCMU error taxonomy.

use std::fmt;

/// Errors from installation and the OAuth flow.
#[derive(Debug)]
pub enum GcmuError {
    /// Installation step failed.
    Install(String),
    /// MyProxy-layer failure.
    MyProxy(ig_myproxy::MyProxyError),
    /// Server-layer failure.
    Server(ig_server::ServerError),
    /// OAuth protocol failure (bad code, expired code, bad client).
    OAuth(String),
    /// PKI failure.
    Pki(ig_pki::PkiError),
    /// Transport failure.
    Io(std::io::Error),
}

impl fmt::Display for GcmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcmuError::Install(m) => write!(f, "install failed: {m}"),
            GcmuError::MyProxy(e) => write!(f, "myproxy: {e}"),
            GcmuError::Server(e) => write!(f, "server: {e}"),
            GcmuError::OAuth(m) => write!(f, "oauth: {m}"),
            GcmuError::Pki(e) => write!(f, "pki: {e}"),
            GcmuError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for GcmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GcmuError::MyProxy(e) => Some(e),
            GcmuError::Server(e) => Some(e),
            GcmuError::Pki(e) => Some(e),
            GcmuError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_myproxy::MyProxyError> for GcmuError {
    fn from(e: ig_myproxy::MyProxyError) -> Self {
        GcmuError::MyProxy(e)
    }
}

impl From<ig_server::ServerError> for GcmuError {
    fn from(e: ig_server::ServerError) -> Self {
        GcmuError::Server(e)
    }
}

impl From<ig_pki::PkiError> for GcmuError {
    fn from(e: ig_pki::PkiError) -> Self {
        GcmuError::Pki(e)
    }
}

impl From<std::io::Error> for GcmuError {
    fn from(e: std::io::Error) -> Self {
        GcmuError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, GcmuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GcmuError::Install("no disk".into()).to_string().contains("no disk"));
        assert!(GcmuError::OAuth("bad code".into()).to_string().contains("bad code"));
    }
}
