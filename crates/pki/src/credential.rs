//! Credentials: a certificate chain plus the matching private key.
//!
//! The PEM-bundle form of a credential is exactly the payload of the
//! paper's `DCSC P` command (§V-A):
//!
//! 1. an X.509 certificate in PEM format,
//! 2. a private key in PEM format,
//! 3. additional X.509 certificates in PEM format, unordered (optional).

use crate::cert::Certificate;
use crate::error::{PkiError, Result};
use ig_crypto::encode::{pem_decode_all, pem_encode};
use ig_crypto::RsaPrivateKey;

/// A usable identity: leaf certificate, any chain certificates, and the
/// private key matching the leaf.
#[derive(Clone)]
pub struct Credential {
    /// Leaf first, then issuers toward (not necessarily including) a root.
    chain: Vec<Certificate>,
    key: RsaPrivateKey,
}

impl std::fmt::Debug for Credential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Credential")
            .field("subject", &self.leaf().subject().to_string())
            .field("chain_len", &self.chain.len())
            .finish_non_exhaustive()
    }
}

impl Credential {
    /// Build a credential, checking the key matches the leaf certificate.
    pub fn new(chain: Vec<Certificate>, key: RsaPrivateKey) -> Result<Self> {
        let leaf = chain
            .first()
            .ok_or_else(|| PkiError::Decode("credential needs at least one certificate".into()))?;
        if leaf.public_key()? != *key.public() {
            return Err(PkiError::Decode(
                "private key does not match leaf certificate".into(),
            ));
        }
        Ok(Credential { chain, key })
    }

    /// Leaf certificate (the identity presented on the wire).
    pub fn leaf(&self) -> &Certificate {
        &self.chain[0]
    }

    /// Full chain, leaf first.
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }

    /// Private key.
    pub fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// The *base* identity: subject of the first non-proxy certificate in
    /// the chain (strips delegation CNs — this is the DN a gridmap or the
    /// GCMU callout maps to a local account).
    pub fn identity(&self) -> &crate::dn::DistinguishedName {
        for cert in &self.chain {
            if cert.proxy_info().is_none() {
                return cert.subject();
            }
        }
        // All-proxy chain (shouldn't happen): fall back to the last cert.
        self.chain.last().expect("chain non-empty").subject()
    }

    /// Remaining lifetime of the leaf at `now` (seconds; 0 when expired).
    pub fn remaining_lifetime(&self, now: u64) -> u64 {
        self.leaf().tbs.validity.remaining(now)
    }

    /// Serialize as the DCSC P PEM bundle: leaf cert, private key, then
    /// the rest of the chain unordered.
    pub fn to_pem_bundle(&self) -> String {
        let mut out = self.leaf().to_pem();
        let key_bytes = self.key.encode();
        out.push_str(&pem_encode("PRIVATE KEY", &key_bytes));
        for cert in &self.chain[1..] {
            out.push_str(&cert.to_pem());
        }
        out
    }

    /// Parse a DCSC P PEM bundle. Per §V-A the first certificate is the
    /// presented one; additional certificates are an unordered pool used
    /// to assemble the chain.
    pub fn from_pem_bundle(bundle: &str) -> Result<Self> {
        let blocks =
            pem_decode_all(bundle).map_err(|e| PkiError::Decode(e.to_string()))?;
        let mut certs: Vec<Certificate> = Vec::new();
        let mut key: Option<RsaPrivateKey> = None;
        for block in blocks {
            match block.label.as_str() {
                "CERTIFICATE" => certs.push(Certificate::from_bytes(&block.data)?),
                "PRIVATE KEY" => {
                    if key.is_some() {
                        return Err(PkiError::Decode("multiple private keys in bundle".into()));
                    }
                    key = Some(RsaPrivateKey::decode(&block.data)?);
                }
                other => {
                    return Err(PkiError::Decode(format!("unexpected PEM block {other:?}")))
                }
            }
        }
        let key = key.ok_or_else(|| PkiError::Decode("no private key in bundle".into()))?;
        if certs.is_empty() {
            return Err(PkiError::Decode("no certificate in bundle".into()));
        }
        // First cert is the leaf; order the rest by issuer-chasing so the
        // chain is leaf→rootward even if the pool was shuffled.
        let leaf = certs.remove(0);
        let mut chain = vec![leaf];
        loop {
            let tail = chain.last().expect("chain non-empty");
            if tail.is_self_signed() {
                break;
            }
            let next = certs
                .iter()
                .position(|c| c.subject() == tail.issuer());
            match next {
                Some(idx) => chain.push(certs.remove(idx)),
                None => break, // incomplete chain is legal; validator decides
            }
        }
        // Any unreferenced leftover certs are appended (still available to
        // the validator as extra roots).
        chain.append(&mut certs);
        Credential::new(chain, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::cert::Validity;
    use crate::dn::DistinguishedName;
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn make() -> (CertificateAuthority, Credential) {
        let mut rng = seeded(20);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=Root"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue(dn("/O=Grid/CN=carol"), &keys.public, Validity::starting_at(0, 7200), vec![])
            .unwrap();
        let cred =
            Credential::new(vec![cert, ca.root_cert().clone()], keys.private).unwrap();
        (ca, cred)
    }

    #[test]
    fn new_checks_key_match() {
        let (ca, cred) = make();
        let wrong_key = RsaKeyPair::generate(&mut seeded(21), 512).unwrap();
        let err = Credential::new(cred.chain().to_vec(), wrong_key.private).unwrap_err();
        assert!(matches!(err, PkiError::Decode(_)));
        assert!(Credential::new(vec![], ca.keypair().private.clone()).is_err());
    }

    #[test]
    fn identity_strips_proxies() {
        let (_, cred) = make();
        assert_eq!(cred.identity().to_string(), "/O=Grid/CN=carol");
        let mut rng = seeded(22);
        let delegated =
            crate::proxy::delegate(&mut rng, &cred, 512, 0, Default::default()).unwrap();
        // Leaf is the proxy but identity is still the user.
        assert_ne!(delegated.leaf().subject().to_string(), "/O=Grid/CN=carol");
        assert_eq!(delegated.identity().to_string(), "/O=Grid/CN=carol");
    }

    #[test]
    fn remaining_lifetime() {
        let (_, cred) = make();
        assert_eq!(cred.remaining_lifetime(0), 7200);
        assert_eq!(cred.remaining_lifetime(7000), 200);
        assert_eq!(cred.remaining_lifetime(8000), 0);
    }

    #[test]
    fn pem_bundle_roundtrip() {
        let (_, cred) = make();
        let bundle = cred.to_pem_bundle();
        assert!(bundle.contains("BEGIN CERTIFICATE"));
        assert!(bundle.contains("BEGIN PRIVATE KEY"));
        let back = Credential::from_pem_bundle(&bundle).unwrap();
        assert_eq!(back.chain(), cred.chain());
        assert_eq!(back.key(), cred.key());
    }

    #[test]
    fn pem_bundle_reorders_shuffled_chain() {
        // §V-A: additional certificates are unordered.
        let (_, cred) = make();
        let mut rng = seeded(23);
        let delegated =
            crate::proxy::delegate(&mut rng, &cred, 512, 0, Default::default()).unwrap();
        // Build a bundle with the pool reversed: leaf, key, root, EEC.
        let mut bundle = delegated.leaf().to_pem();
        bundle.push_str(&ig_crypto::encode::pem_encode(
            "PRIVATE KEY",
            &delegated.key().encode(),
        ));
        bundle.push_str(&delegated.chain()[2].to_pem()); // root first
        bundle.push_str(&delegated.chain()[1].to_pem()); // then EEC
        let back = Credential::from_pem_bundle(&bundle).unwrap();
        assert_eq!(back.chain(), delegated.chain());
    }

    #[test]
    fn bundle_rejects_malformed() {
        let (_, cred) = make();
        assert!(Credential::from_pem_bundle("").is_err());
        // Cert but no key.
        assert!(Credential::from_pem_bundle(&cred.leaf().to_pem()).is_err());
        // Key but no cert.
        let key_only =
            ig_crypto::encode::pem_encode("PRIVATE KEY", &cred.key().encode());
        assert!(Credential::from_pem_bundle(&key_only).is_err());
        // Two keys.
        let mut two_keys = cred.to_pem_bundle();
        two_keys.push_str(&key_only);
        assert!(Credential::from_pem_bundle(&two_keys).is_err());
        // Unknown block label.
        let mut odd = cred.to_pem_bundle();
        odd.push_str(&ig_crypto::encode::pem_encode("WEIRD", b"x"));
        assert!(Credential::from_pem_bundle(&odd).is_err());
    }

    #[test]
    fn debug_omits_key_material() {
        let (_, cred) = make();
        let s = format!("{cred:?}");
        assert!(s.contains("carol"));
        assert!(!s.contains("limbs"));
    }
}
