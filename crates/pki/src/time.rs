//! Time handling: everything validity-related works on plain UNIX seconds
//! so tests and simulations can pin "now" deterministically.

use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds in one hour.
pub const HOUR: u64 = 3600;
/// Seconds in one day.
pub const DAY: u64 = 24 * HOUR;
/// Seconds in one (365-day) year.
pub const YEAR: u64 = 365 * DAY;

/// Current wall-clock time as UNIX seconds.
pub fn now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("system clock before 1970")
        .as_secs()
}

/// A clock that can be real or simulated; servers take one so the whole
/// stack can run against simulated time in tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Use the OS clock.
    System,
    /// Frozen at a fixed instant.
    Fixed(u64),
}

impl Clock {
    /// Current time per this clock.
    pub fn now(&self) -> u64 {
        match self {
            Clock::System => now(),
            Clock::Fixed(t) => *t,
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::System
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_sane() {
        // After 2020-01-01 and before 2100.
        let t = now();
        assert!(t > 1_577_836_800);
        assert!(t < 4_102_444_800);
        assert_eq!(Clock::System.now().max(t), Clock::System.now().max(t));
    }

    #[test]
    fn fixed_clock_is_frozen() {
        let c = Clock::Fixed(1234);
        assert_eq!(c.now(), 1234);
        assert_eq!(c.now(), 1234);
    }

    #[test]
    fn constants() {
        assert_eq!(DAY, 86_400);
        assert_eq!(YEAR, 31_536_000);
    }
}
