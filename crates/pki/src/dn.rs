//! Distinguished names in the OpenSSL one-line format GridFTP admins know:
//! `/O=Grid/OU=Argonne/CN=John Doe`.
//!
//! GCMU's whole trick (§IV-C) is that the MyProxy Online CA "embeds the
//! local username in the distinguished name", and the authorization
//! callout later parses it back out — so DN handling must be exact and
//! round-trippable, including escaping of `/` inside values.

use crate::error::{PkiError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One relative distinguished name component, e.g. `CN=alice`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct Rdn {
    /// Attribute type: `C`, `O`, `OU`, `CN`, ...
    pub attr: String,
    /// Attribute value.
    pub value: String,
}

/// An ordered distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord)]
pub struct DistinguishedName {
    rdns: Vec<Rdn>,
}

impl DistinguishedName {
    /// Empty DN (used transiently while building).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(attr, value)` pairs.
    pub fn from_pairs<I, A, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<String>,
        V: Into<String>,
    {
        DistinguishedName {
            rdns: pairs
                .into_iter()
                .map(|(a, v)| Rdn { attr: a.into(), value: v.into() })
                .collect(),
        }
    }

    /// Parse `/O=Grid/OU=site/CN=user`. A `\/` escapes a slash inside a
    /// value; `\\` escapes a backslash.
    pub fn parse(s: &str) -> Result<Self> {
        if !s.starts_with('/') {
            return Err(PkiError::Decode(format!("DN must start with '/': {s:?}")));
        }
        let mut rdns = Vec::new();
        let mut chars = s.chars().peekable();
        chars.next(); // consume leading '/'
        let mut component = String::new();
        let mut components = Vec::new();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some(esc @ ('/' | '\\')) => component.push(esc),
                    Some(other) => {
                        return Err(PkiError::Decode(format!("bad escape \\{other} in DN")))
                    }
                    None => return Err(PkiError::Decode("trailing backslash in DN".into())),
                },
                '/' => {
                    components.push(std::mem::take(&mut component));
                }
                c => component.push(c),
            }
        }
        components.push(component);
        for comp in components {
            let (attr, value) = comp
                .split_once('=')
                .ok_or_else(|| PkiError::Decode(format!("DN component {comp:?} missing '='")))?;
            if attr.is_empty() {
                return Err(PkiError::Decode(format!("empty attribute in DN component {comp:?}")));
            }
            rdns.push(Rdn { attr: attr.to_string(), value: value.to_string() });
        }
        if rdns.is_empty() {
            return Err(PkiError::Decode("empty DN".into()));
        }
        Ok(DistinguishedName { rdns })
    }

    /// Append a component, returning a new DN (proxy certificates extend
    /// their issuer's subject this way, per RFC 3820).
    pub fn with(&self, attr: &str, value: &str) -> Self {
        let mut rdns = self.rdns.clone();
        rdns.push(Rdn { attr: attr.into(), value: value.into() });
        DistinguishedName { rdns }
    }

    /// Components in order.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.rdns.len()
    }

    /// True when the DN has no components (only possible via `new`).
    pub fn is_empty(&self) -> bool {
        self.rdns.is_empty()
    }

    /// Last `CN` value — GCMU's authorization callout "picks up the local
    /// user id from the certificate subject" through this accessor.
    pub fn common_name(&self) -> Option<&str> {
        self.rdns
            .iter()
            .rev()
            .find(|r| r.attr == "CN")
            .map(|r| r.value.as_str())
    }

    /// First value for an attribute.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.rdns.iter().find(|r| r.attr == attr).map(|r| r.value.as_str())
    }

    /// True if `self` extends `base` by exactly `extra` components — the
    /// RFC 3820 proxy naming rule (`issuer DN + /CN=proxy`).
    pub fn extends(&self, base: &DistinguishedName, extra: usize) -> bool {
        self.rdns.len() == base.rdns.len() + extra && self.rdns.starts_with(&base.rdns)
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rdn in &self.rdns {
            let escaped: String = rdn
                .value
                .chars()
                .flat_map(|c| match c {
                    '/' => vec!['\\', '/'],
                    '\\' => vec!['\\', '\\'],
                    c => vec![c],
                })
                .collect();
            write!(f, "/{}={}", rdn.attr, escaped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let dn = DistinguishedName::parse("/O=Grid/OU=Argonne/CN=John Doe").unwrap();
        assert_eq!(dn.len(), 3);
        assert_eq!(dn.get("O"), Some("Grid"));
        assert_eq!(dn.common_name(), Some("John Doe"));
        assert_eq!(dn.to_string(), "/O=Grid/OU=Argonne/CN=John Doe");
    }

    #[test]
    fn escaped_slash_in_value() {
        let dn = DistinguishedName::from_pairs([("CN", "a/b")]);
        let s = dn.to_string();
        assert_eq!(s, "/CN=a\\/b");
        assert_eq!(DistinguishedName::parse(&s).unwrap(), dn);
        let dn2 = DistinguishedName::from_pairs([("CN", "a\\b")]);
        assert_eq!(DistinguishedName::parse(&dn2.to_string()).unwrap(), dn2);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(DistinguishedName::parse("O=Grid").is_err()); // no leading /
        assert!(DistinguishedName::parse("/OGrid").is_err()); // no '='
        assert!(DistinguishedName::parse("/=v").is_err()); // empty attr
        assert!(DistinguishedName::parse("/CN=x\\").is_err()); // trailing escape
        assert!(DistinguishedName::parse("/CN=x\\n").is_err()); // bad escape
    }

    #[test]
    fn empty_value_is_allowed() {
        // OpenSSL allows empty values; keep that behaviour.
        let dn = DistinguishedName::parse("/CN=").unwrap();
        assert_eq!(dn.common_name(), Some(""));
    }

    #[test]
    fn common_name_takes_last_cn() {
        // A proxy DN has two CNs; the *user* CN is the first, the proxy
        // marker is the last. common_name returns the last — callers that
        // want the base identity strip proxy components first.
        let dn = DistinguishedName::parse("/O=GCMU/CN=alice/CN=proxy").unwrap();
        assert_eq!(dn.common_name(), Some("proxy"));
    }

    #[test]
    fn with_and_extends() {
        let base = DistinguishedName::parse("/O=GCMU/CN=alice").unwrap();
        let proxy = base.with("CN", "proxy");
        assert!(proxy.extends(&base, 1));
        assert!(!proxy.extends(&base, 2));
        assert!(!base.extends(&proxy, 1));
        let unrelated = DistinguishedName::parse("/O=GCMU/CN=bob/CN=proxy").unwrap();
        assert!(!unrelated.extends(&base, 1));
    }

    #[test]
    fn username_with_special_chars_survives() {
        // The GCMU DN embedding must round-trip any local username.
        for user in ["alice", "j.doe", "user-01", "weird/name", "back\\slash"] {
            let dn = DistinguishedName::from_pairs([("O", "GCMU"), ("CN", user)]);
            let parsed = DistinguishedName::parse(&dn.to_string()).unwrap();
            assert_eq!(parsed.common_name(), Some(user));
        }
    }

    #[test]
    fn ordering_is_stable_for_map_keys() {
        let a = DistinguishedName::parse("/CN=a").unwrap();
        let b = DistinguishedName::parse("/CN=b").unwrap();
        assert!(a < b);
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(a.clone(), 1);
        assert_eq!(m.get(&a), Some(&1));
    }
}
