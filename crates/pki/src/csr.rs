//! Certificate signing requests.
//!
//! The paper is explicit that in the MyProxy Online CA flow the client
//! "generates the subscriber's private key locally ... and issues a signed
//! certificate request to the CA" (§IV-A). A CSR here is the requested
//! subject plus the public key, self-signed to prove key possession.

use crate::dn::DistinguishedName;
use crate::error::{PkiError, Result};
use ig_crypto::encode::pem_encode;
use ig_crypto::{RsaPrivateKey, RsaPublicKey};
use serde::{Deserialize, Serialize};

/// The signed body of a CSR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrBody {
    /// Subject the requester wants (the CA may override it — the GCMU
    /// online CA always rewrites it to embed the authenticated username).
    pub subject: DistinguishedName,
    /// Requester's public key (ig-crypto encoding).
    #[serde(with = "crate::cert::hexbytes")]
    pub public_key: Vec<u8>,
}

/// A certificate signing request, self-signed for proof of possession.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertificateSigningRequest {
    /// Request body.
    pub body: CsrBody,
    /// Signature over the body by the key in the body.
    #[serde(with = "crate::cert::hexbytes")]
    pub signature: Vec<u8>,
}

impl CertificateSigningRequest {
    /// Create a CSR for `subject` with the requester's key pair.
    pub fn create(subject: DistinguishedName, key: &RsaPrivateKey) -> Result<Self> {
        let body = CsrBody { subject, public_key: key.public().encode() };
        let bytes = serde_json::to_vec(&body).expect("CSR body serialization cannot fail");
        let signature = key.sign(&bytes)?;
        Ok(CertificateSigningRequest { body, signature })
    }

    /// Verify the proof-of-possession signature and return the public key.
    pub fn verify(&self) -> Result<RsaPublicKey> {
        let key = RsaPublicKey::decode(&self.body.public_key)?;
        let bytes = serde_json::to_vec(&self.body).expect("CSR body serialization cannot fail");
        key.verify(&bytes, &self.signature)
            .map_err(|_| PkiError::BadSignature("CSR proof-of-possession".into()))?;
        Ok(key)
    }

    /// PEM form (`CERTIFICATE REQUEST` label, as OpenSSL uses).
    pub fn to_pem(&self) -> String {
        let body = serde_json::to_vec(self).expect("CSR serialization cannot fail");
        pem_encode("CERTIFICATE REQUEST", &body)
    }

    /// Parse from PEM.
    pub fn from_pem(pem: &str) -> Result<Self> {
        let body = ig_crypto::encode::pem_decode_one(pem, "CERTIFICATE REQUEST")
            .map_err(|e| PkiError::Decode(e.to_string()))?;
        serde_json::from_slice(&body).map_err(|e| PkiError::Decode(format!("bad CSR: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;

    #[test]
    fn create_verify_roundtrip() {
        let kp = RsaKeyPair::generate(&mut seeded(1), 512).unwrap();
        let subject = DistinguishedName::parse("/O=GCMU/CN=alice").unwrap();
        let csr = CertificateSigningRequest::create(subject.clone(), &kp.private).unwrap();
        let key = csr.verify().unwrap();
        assert_eq!(key, kp.public);
        assert_eq!(csr.body.subject, subject);
    }

    #[test]
    fn verify_rejects_key_substitution() {
        // Attacker swaps in their own public key but cannot re-sign.
        let kp = RsaKeyPair::generate(&mut seeded(2), 512).unwrap();
        let attacker = RsaKeyPair::generate(&mut seeded(3), 512).unwrap();
        let subject = DistinguishedName::parse("/CN=victim").unwrap();
        let mut csr = CertificateSigningRequest::create(subject, &kp.private).unwrap();
        csr.body.public_key = attacker.public.encode();
        assert!(csr.verify().is_err());
    }

    #[test]
    fn verify_rejects_subject_tamper() {
        let kp = RsaKeyPair::generate(&mut seeded(4), 512).unwrap();
        let mut csr = CertificateSigningRequest::create(
            DistinguishedName::parse("/CN=alice").unwrap(),
            &kp.private,
        )
        .unwrap();
        csr.body.subject = DistinguishedName::parse("/CN=root").unwrap();
        assert!(csr.verify().is_err());
    }

    #[test]
    fn pem_roundtrip() {
        let kp = RsaKeyPair::generate(&mut seeded(5), 512).unwrap();
        let csr = CertificateSigningRequest::create(
            DistinguishedName::parse("/CN=pem").unwrap(),
            &kp.private,
        )
        .unwrap();
        let pem = csr.to_pem();
        assert!(pem.contains("BEGIN CERTIFICATE REQUEST"));
        assert_eq!(CertificateSigningRequest::from_pem(&pem).unwrap(), csr);
    }
}
