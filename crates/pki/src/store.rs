//! Trust roots and their signing policies — the "trusted certificates
//! directory" of conventional GridFTP installation step (g).
//!
//! A [`TrustStore`] is what each endpoint consults during DCAU. The DCSC
//! command (§V-A) works by building a *temporary* store: "a combination of
//! the server's default CA certificates and signing policies [and] all
//! self-signed certificates given in (1) and (3)" — see
//! [`TrustStore::with_extra_roots`].

use crate::cert::Certificate;
use crate::dn::DistinguishedName;
use crate::policy::SigningPolicy;
use std::collections::BTreeMap;

/// A set of trusted root certificates plus per-CA signing policies.
#[derive(Default, Clone)]
pub struct TrustStore {
    roots: Vec<Certificate>,
    policies: BTreeMap<String, SigningPolicy>,
}

impl TrustStore {
    /// Empty store (trusts nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trust root with no signing policy (i.e. allow-all, matching
    /// GSI behaviour when no `.signing_policy` file exists).
    pub fn add_root(&mut self, root: Certificate) {
        self.roots.push(root);
    }

    /// Add a trust root with an explicit signing policy.
    pub fn add_root_with_policy(&mut self, root: Certificate, policy: SigningPolicy) {
        self.policies.insert(root.subject().to_string(), policy);
        self.roots.push(root);
    }

    /// All roots.
    pub fn roots(&self) -> &[Certificate] {
        &self.roots
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when no roots are installed.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Find a root whose *subject* matches `issuer` (how chain building
    /// locates the anchor for a presented certificate).
    pub fn find_issuer(&self, issuer: &DistinguishedName) -> Option<&Certificate> {
        self.roots.iter().find(|r| r.subject() == issuer)
    }

    /// True if `cert` itself (exact match) is an installed trust anchor.
    pub fn contains(&self, cert: &Certificate) -> bool {
        self.roots.iter().any(|r| r == cert)
    }

    /// The signing policy for a CA DN (allow-all when none is on file —
    /// and per §V-A, DCSC-supplied CAs never get policy files, so they
    /// land on the allow-all default unless the server already had one).
    pub fn policy_for(&self, ca: &DistinguishedName) -> SigningPolicy {
        self.policies
            .get(&ca.to_string())
            .cloned()
            .unwrap_or_else(SigningPolicy::allow_all)
    }

    /// Build the DCSC validation store: this store's roots and policies
    /// plus the self-signed certificates from a DCSC blob as additional
    /// anchors. Existing policies still apply ("the server will still use
    /// and enforce them"); the extra roots get no new policies.
    pub fn with_extra_roots<'a, I: IntoIterator<Item = &'a Certificate>>(
        &self,
        extras: I,
    ) -> TrustStore {
        let mut out = self.clone();
        for cert in extras {
            if cert.is_self_signed() && !out.contains(cert) {
                out.roots.push(cert.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use ig_crypto::rng::seeded;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn ca(seed: u64, name: &str) -> CertificateAuthority {
        CertificateAuthority::create(&mut seeded(seed), dn(name), 512, 0, 1_000_000).unwrap()
    }

    #[test]
    fn add_and_find() {
        let a = ca(1, "/O=CA-A");
        let b = ca(2, "/O=CA-B");
        let mut store = TrustStore::new();
        assert!(store.is_empty());
        store.add_root(a.root_cert().clone());
        assert_eq!(store.len(), 1);
        assert!(store.find_issuer(&dn("/O=CA-A")).is_some());
        assert!(store.find_issuer(&dn("/O=CA-B")).is_none());
        assert!(store.contains(a.root_cert()));
        assert!(!store.contains(b.root_cert()));
    }

    #[test]
    fn default_policy_is_allow_all() {
        let a = ca(3, "/O=CA-A");
        let mut store = TrustStore::new();
        store.add_root(a.root_cert().clone());
        assert!(store.policy_for(&dn("/O=CA-A")).permits(&dn("/CN=anyone")));
    }

    #[test]
    fn explicit_policy_is_enforced() {
        let a = ca(4, "/O=CA-A");
        let mut store = TrustStore::new();
        store.add_root_with_policy(a.root_cert().clone(), SigningPolicy::new(["/O=Site/*"]));
        let p = store.policy_for(&dn("/O=CA-A"));
        assert!(p.permits(&dn("/O=Site/CN=x")));
        assert!(!p.permits(&dn("/O=Evil/CN=x")));
    }

    #[test]
    fn with_extra_roots_adds_only_self_signed() {
        let a = ca(5, "/O=CA-A");
        let mut b = ca(6, "/O=CA-B");
        let store = {
            let mut s = TrustStore::new();
            s.add_root(a.root_cert().clone());
            s
        };
        // A non-self-signed cert must NOT become a trust anchor.
        let k = ig_crypto::RsaKeyPair::generate(&mut seeded(7), 512).unwrap();
        let leaf = b
            .issue(dn("/CN=leaf"), &k.public, crate::cert::Validity::starting_at(0, 10), vec![])
            .unwrap();
        let merged = store.with_extra_roots([b.root_cert(), &leaf]);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(b.root_cert()));
        assert!(!merged.contains(&leaf));
        // Original store unchanged.
        assert_eq!(store.len(), 1);
        // Duplicates are not added twice.
        let merged2 = merged.with_extra_roots([b.root_cert()]);
        assert_eq!(merged2.len(), 2);
    }
}
