//! Certificate chain validation — the heart of DCAU.
//!
//! Given a presented chain (leaf first) and a [`TrustStore`], this module
//! either produces a [`ValidatedIdentity`] or the precise failure the
//! paper's scenarios require:
//!
//! * Fig 4's cross-CA failure → [`PkiError::UntrustedIssuer`];
//! * expired short-lived GCMU certificates → [`PkiError::Expired`];
//! * a proxy signed by the wrong key or with the wrong name →
//!   [`PkiError::ProxyViolation`];
//! * a subject outside the CA's signing policy →
//!   [`PkiError::PolicyViolation`].

use crate::cert::Certificate;
use crate::dn::DistinguishedName;
use crate::error::{PkiError, Result};
use crate::store::TrustStore;

/// The outcome of a successful validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedIdentity {
    /// Subject of the presented leaf (may include proxy components).
    pub subject: DistinguishedName,
    /// Base identity: subject of the first non-proxy certificate.
    pub identity: DistinguishedName,
    /// DN of the trust anchor that anchored the chain.
    pub anchor: DistinguishedName,
    /// If the end-entity certificate was issued by an online CA, the GCMU
    /// endpoint that issued it (drives the GCMU authz callout).
    pub online_ca_endpoint: Option<String>,
}

/// Validate `chain` (leaf first) against `store` at instant `now`.
///
/// Rules implemented:
/// 1. Every certificate must be inside its validity window.
/// 2. Proxy certificates (those carrying `ProxyCertInfo`) must be signed
///    by the key of the *next* certificate in the chain, must extend its
///    subject by exactly one component, and must respect `path_len`
///    limits of the certificates above them.
/// 3. Above the proxies, each certificate must be signed by the next
///    chain certificate (which must be a CA) or by a trust root whose
///    subject matches its issuer.
/// 4. A self-signed leaf that is itself an installed anchor validates
///    directly (the DCSC "random, self-signed certificate" mode, §V).
/// 5. The anchoring root's signing policy must permit every subject it
///    (transitively) signed in this chain.
pub fn validate_chain(
    chain: &[Certificate],
    store: &TrustStore,
    now: u64,
) -> Result<ValidatedIdentity> {
    if chain.is_empty() {
        return Err(PkiError::BrokenChain("empty chain".into()));
    }
    let leaf = &chain[0];
    leaf.check_validity(now)?;

    // Case: self-signed leaf installed as an anchor (DCSC self-signed mode).
    if leaf.is_self_signed() {
        if store.contains(leaf) {
            leaf.verify_signature(&leaf.public_key()?)?;
            return Ok(ValidatedIdentity {
                subject: leaf.subject().clone(),
                identity: leaf.subject().clone(),
                anchor: leaf.subject().clone(),
                online_ca_endpoint: leaf.online_ca_endpoint().map(str::to_string),
            });
        }
        return Err(PkiError::UntrustedIssuer(format!(
            "self-signed certificate {} is not an installed anchor",
            leaf.subject()
        )));
    }

    // Phase 1: walk proxy certificates at the bottom of the chain.
    let mut idx = 0usize;
    let mut proxies_below = 0u32;
    while chain[idx].proxy_info().is_some() {
        let proxy = &chain[idx];
        let signer = chain.get(idx + 1).ok_or_else(|| {
            PkiError::BrokenChain(format!(
                "proxy {} has no issuer certificate in chain",
                proxy.subject()
            ))
        })?;
        signer.check_validity(now)?;
        if !proxy.subject().extends(signer.subject(), 1) {
            return Err(PkiError::ProxyViolation(format!(
                "proxy subject {} does not extend issuer subject {}",
                proxy.subject(),
                signer.subject()
            )));
        }
        if proxy.issuer() != signer.subject() {
            return Err(PkiError::ProxyViolation(format!(
                "proxy issuer field {} does not match signer subject {}",
                proxy.issuer(),
                signer.subject()
            )));
        }
        proxy
            .verify_signature(&signer.public_key()?)
            .map_err(|_| PkiError::ProxyViolation(format!(
                "proxy {} not signed by {}",
                proxy.subject(),
                signer.subject()
            )))?;
        // Depth limit of the signer (if the signer is itself a proxy).
        if let Some(Some(limit)) = signer.proxy_info() {
            if proxies_below + 1 > limit {
                return Err(PkiError::ProxyViolation(format!(
                    "delegation depth {} exceeds signer limit {}",
                    proxies_below + 1,
                    limit
                )));
            }
        }
        proxies_below += 1;
        idx += 1;
    }

    // chain[idx] is now the end-entity certificate.
    let eec = &chain[idx];
    eec.check_validity(now)?;
    if eec.is_ca() && idx == 0 {
        // A bare CA certificate presented as an identity is unusual but
        // legal (host credentials at small sites); fall through.
    }

    // Phase 2: walk CA certificates up to a trust anchor.
    let mut signed_subjects: Vec<DistinguishedName> = vec![eec.subject().clone()];
    let mut current = idx;
    let anchor;
    let mut intermediates = 0u32;
    loop {
        let cert = &chain[current];
        if let Some(root) = store.find_issuer(cert.issuer()) {
            root.check_validity(now)?;
            cert.verify_signature(&root.public_key()?)?;
            anchor = root;
            break;
        }
        match chain.get(current + 1) {
            Some(next) => {
                next.check_validity(now)?;
                if !next.is_ca() {
                    return Err(PkiError::NotACa(next.subject().to_string()));
                }
                if next.subject() != cert.issuer() {
                    return Err(PkiError::BrokenChain(format!(
                        "chain order: {} issued by {}, but next certificate is {}",
                        cert.subject(),
                        cert.issuer(),
                        next.subject()
                    )));
                }
                if let Some(limit) = next.ca_path_len() {
                    if intermediates > limit {
                        return Err(PkiError::BrokenChain(format!(
                            "CA path length {intermediates} exceeds limit {limit} of {}",
                            next.subject()
                        )));
                    }
                }
                cert.verify_signature(&next.public_key()?)?;
                if next.is_self_signed() {
                    // Chain reached an untrusted self-signed root.
                    return Err(PkiError::UntrustedIssuer(format!(
                        "chain terminates at {} which is not a trust anchor",
                        next.subject()
                    )));
                }
                signed_subjects.push(next.subject().clone());
                intermediates += 1;
                current += 1;
            }
            None => {
                return Err(PkiError::UntrustedIssuer(format!(
                    "no trust anchor for issuer {}",
                    cert.issuer()
                )))
            }
        }
    }

    // Phase 3: signing-policy enforcement for the anchoring CA. Real GSI
    // applies the anchor's policy to subjects it directly signs; we apply
    // it to every CA-signed subject in the validated path.
    let policy = store.policy_for(anchor.subject());
    for subject in &signed_subjects {
        if !policy.permits(subject) {
            return Err(PkiError::PolicyViolation {
                ca: anchor.subject().to_string(),
                subject: subject.to_string(),
            });
        }
    }

    Ok(ValidatedIdentity {
        subject: leaf.subject().clone(),
        identity: eec.subject().clone(),
        anchor: anchor.subject().clone(),
        online_ca_endpoint: eec.online_ca_endpoint().map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::cert::Validity;
    use crate::credential::Credential;
    use crate::policy::SigningPolicy;
    use crate::proxy;
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct Fixture {
        #[allow(dead_code)] // anchors the CA's lifetime alongside the store
        ca: CertificateAuthority,
        store: TrustStore,
        cred: Credential,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = seeded(seed);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=CA-A"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue(dn("/O=Grid/CN=alice"), &keys.public, Validity::starting_at(0, 10_000), vec![])
            .unwrap();
        let mut store = TrustStore::new();
        store.add_root(ca.root_cert().clone());
        let cred = Credential::new(vec![cert], keys.private).unwrap();
        Fixture { ca, store, cred }
    }

    #[test]
    fn simple_chain_validates() {
        let f = fixture(1);
        let id = validate_chain(f.cred.chain(), &f.store, 100).unwrap();
        assert_eq!(id.subject.to_string(), "/O=Grid/CN=alice");
        assert_eq!(id.identity, id.subject);
        assert_eq!(id.anchor.to_string(), "/O=CA-A");
        assert!(id.online_ca_endpoint.is_none());
    }

    #[test]
    fn untrusted_issuer_rejected() {
        // The Fig 4 scenario: endpoint B does not trust CA-A.
        let f = fixture(2);
        let empty = TrustStore::new();
        let err = validate_chain(f.cred.chain(), &empty, 100).unwrap_err();
        assert!(matches!(err, PkiError::UntrustedIssuer(_)));
    }

    #[test]
    fn expired_leaf_rejected() {
        let f = fixture(3);
        let err = validate_chain(f.cred.chain(), &f.store, 20_000).unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
    }

    #[test]
    fn not_yet_valid_rejected() {
        let mut rng = seeded(4);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=CA"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue(dn("/CN=future"), &keys.public, Validity::starting_at(5000, 100), vec![])
            .unwrap();
        let mut store = TrustStore::new();
        store.add_root(ca.root_cert().clone());
        let err = validate_chain(&[cert], &store, 100).unwrap_err();
        assert!(matches!(err, PkiError::NotYetValid { .. }));
    }

    #[test]
    fn proxy_chain_validates() {
        let f = fixture(5);
        let mut rng = seeded(6);
        let delegated = proxy::delegate(&mut rng, &f.cred, 512, 10, Default::default()).unwrap();
        let id = validate_chain(delegated.chain(), &f.store, 100).unwrap();
        assert_eq!(id.identity.to_string(), "/O=Grid/CN=alice");
        assert!(id.subject.extends(&id.identity, 1));
    }

    #[test]
    fn double_delegation_validates() {
        let f = fixture(7);
        let mut rng = seeded(8);
        let d1 = proxy::delegate(&mut rng, &f.cred, 512, 10, Default::default()).unwrap();
        let d2 = proxy::delegate(&mut rng, &d1, 512, 20, Default::default()).unwrap();
        let id = validate_chain(d2.chain(), &f.store, 100).unwrap();
        assert_eq!(id.identity.to_string(), "/O=Grid/CN=alice");
        assert!(id.subject.extends(&id.identity, 2));
    }

    #[test]
    fn forged_proxy_rejected() {
        let f = fixture(9);
        let mut rng = seeded(10);
        let delegated = proxy::delegate(&mut rng, &f.cred, 512, 10, Default::default()).unwrap();
        // Tamper: replace proxy signature with garbage.
        let mut chain = delegated.chain().to_vec();
        chain[0].signature[0] ^= 0xff;
        let err = validate_chain(&chain, &f.store, 100).unwrap_err();
        assert!(matches!(err, PkiError::ProxyViolation(_)));
    }

    #[test]
    fn proxy_with_wrong_name_rejected() {
        let f = fixture(11);
        let mut rng = seeded(12);
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        // Handcraft a "proxy" whose subject does not extend the issuer's.
        let tbs = crate::cert::TbsCertificate {
            version: 3,
            serial: 99,
            issuer: f.cred.leaf().subject().clone(),
            subject: dn("/O=Grid/CN=mallory/CN=1"),
            validity: Validity::starting_at(0, 1000),
            public_key: keys.public.encode(),
            extensions: vec![crate::cert::Extension::ProxyCertInfo { path_len: None }],
        };
        let bad = Certificate::sign(tbs, f.cred.key()).unwrap();
        let chain = vec![bad, f.cred.leaf().clone()];
        let err = validate_chain(&chain, &f.store, 100).unwrap_err();
        assert!(matches!(err, PkiError::ProxyViolation(_)));
    }

    #[test]
    fn depth_limited_delegation_rejected_at_validation() {
        let f = fixture(13);
        let mut rng = seeded(14);
        // Delegate with path_len 0 then handcraft a deeper proxy, bypassing
        // the issuance-time check to confirm validation also rejects it.
        let limited = proxy::delegate(
            &mut rng,
            &f.cred,
            512,
            10,
            proxy::ProxyOptions { lifetime: 3600, path_len: Some(0) },
        )
        .unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let tbs = crate::cert::TbsCertificate {
            version: 3,
            serial: 7,
            issuer: limited.leaf().subject().clone(),
            subject: limited.leaf().subject().with("CN", "7"),
            validity: Validity::starting_at(0, 1000),
            public_key: keys.public.encode(),
            extensions: vec![crate::cert::Extension::ProxyCertInfo { path_len: None }],
        };
        let deep = Certificate::sign(tbs, limited.key()).unwrap();
        let mut chain = vec![deep];
        chain.extend(limited.chain().iter().cloned());
        let err = validate_chain(&chain, &f.store, 100).unwrap_err();
        assert!(matches!(err, PkiError::ProxyViolation(_)));
    }

    #[test]
    fn intermediate_ca_chain_validates() {
        let mut rng = seeded(15);
        let mut root =
            CertificateAuthority::create(&mut rng, dn("/O=Root"), 512, 0, 1_000_000).unwrap();
        let sub_keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let sub_cert = root
            .issue_ca(dn("/O=Root/OU=Sub"), &sub_keys.public, Validity::starting_at(0, 1_000_000), None)
            .unwrap();
        // The intermediate signs a leaf.
        let leaf_keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let tbs = crate::cert::TbsCertificate {
            version: 3,
            serial: 1,
            issuer: dn("/O=Root/OU=Sub"),
            subject: dn("/CN=leaf"),
            validity: Validity::starting_at(0, 1000),
            public_key: leaf_keys.public.encode(),
            extensions: vec![crate::cert::Extension::BasicConstraints { ca: false, path_len: None }],
        };
        let leaf = Certificate::sign(tbs, &sub_keys.private).unwrap();
        let mut store = TrustStore::new();
        store.add_root(root.root_cert().clone());
        let id = validate_chain(&[leaf, sub_cert], &store, 100).unwrap();
        assert_eq!(id.anchor.to_string(), "/O=Root");
        assert_eq!(id.identity.to_string(), "/CN=leaf");
    }

    #[test]
    fn leaf_signed_by_non_ca_rejected() {
        let mut rng = seeded(16);
        let mut root =
            CertificateAuthority::create(&mut rng, dn("/O=Root"), 512, 0, 1_000_000).unwrap();
        // "Intermediate" without the CA bit.
        let mid_keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let mid = root
            .issue(dn("/O=Root/CN=not-a-ca"), &mid_keys.public, Validity::starting_at(0, 1000), vec![])
            .unwrap();
        let leaf_keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let tbs = crate::cert::TbsCertificate {
            version: 3,
            serial: 1,
            issuer: dn("/O=Root/CN=not-a-ca"),
            subject: dn("/CN=leaf"),
            validity: Validity::starting_at(0, 1000),
            public_key: leaf_keys.public.encode(),
            extensions: vec![],
        };
        let leaf = Certificate::sign(tbs, &mid_keys.private).unwrap();
        let mut store = TrustStore::new();
        store.add_root(root.root_cert().clone());
        let err = validate_chain(&[leaf, mid], &store, 100).unwrap_err();
        assert!(matches!(err, PkiError::NotACa(_)));
    }

    #[test]
    fn signing_policy_enforced() {
        let mut rng = seeded(17);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=CA"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let ok_cert = ca
            .issue(dn("/O=Site/CN=good"), &keys.public, Validity::starting_at(0, 1000), vec![])
            .unwrap();
        let bad_cert = ca
            .issue(dn("/O=Elsewhere/CN=bad"), &keys.public, Validity::starting_at(0, 1000), vec![])
            .unwrap();
        let mut store = TrustStore::new();
        store.add_root_with_policy(ca.root_cert().clone(), SigningPolicy::new(["/O=Site/*"]));
        validate_chain(&[ok_cert], &store, 100).unwrap();
        let err = validate_chain(&[bad_cert], &store, 100).unwrap_err();
        assert!(matches!(err, PkiError::PolicyViolation { .. }));
    }

    #[test]
    fn self_signed_anchor_leaf_validates() {
        // DCSC "random, self-signed certificate" mode (§V): both sides
        // install the same self-signed cert as an anchor.
        let mut rng = seeded(18);
        let ca = CertificateAuthority::create(&mut rng, dn("/CN=random-ctx"), 512, 0, 1000)
            .unwrap();
        let cert = ca.root_cert().clone();
        let mut store = TrustStore::new();
        store.add_root(cert.clone());
        let id = validate_chain(&[cert.clone()], &store, 100).unwrap();
        assert_eq!(id.subject.to_string(), "/CN=random-ctx");
        // Without installation it fails.
        let err = validate_chain(&[cert], &TrustStore::new(), 100).unwrap_err();
        assert!(matches!(err, PkiError::UntrustedIssuer(_)));
    }

    #[test]
    fn gcmu_marker_propagates() {
        let mut rng = seeded(19);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=GCMU CA"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue_short_lived(&dn("/O=GCMU"), "alice", "cluster.example.org", &keys.public, 0, 3600)
            .unwrap();
        let mut store = TrustStore::new();
        store.add_root(ca.root_cert().clone());
        let id = validate_chain(&[cert], &store, 100).unwrap();
        assert_eq!(id.online_ca_endpoint.as_deref(), Some("cluster.example.org"));
        assert_eq!(id.identity.common_name(), Some("alice"));
    }

    #[test]
    fn empty_chain_rejected() {
        let err = validate_chain(&[], &TrustStore::new(), 0).unwrap_err();
        assert!(matches!(err, PkiError::BrokenChain(_)));
    }
}
