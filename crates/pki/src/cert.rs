//! Certificates: the to-be-signed body, extensions, and the signed wrapper.
//!
//! The TBS body is canonical JSON (field order fixed by struct
//! declaration) signed with RSA/SHA-256. PEM framing uses the standard
//! `CERTIFICATE` label so DCSC blobs look exactly like the paper's
//! "X.509 certificate in PEM format".

use crate::dn::DistinguishedName;
use crate::error::{PkiError, Result};
use ig_crypto::encode::{hex_decode, hex_encode, pem_encode};
use ig_crypto::{RsaPrivateKey, RsaPublicKey, Sha256};
use serde::{Deserialize, Serialize};

/// Serde adapter: byte vectors as lowercase hex strings in JSON.
pub(crate) mod hexbytes {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(bytes: &[u8], s: S) -> std::result::Result<S::Ok, S::Error> {
        s.serialize_str(&hex_encode(bytes))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> std::result::Result<Vec<u8>, D::Error> {
        let s = String::deserialize(d)?;
        hex_decode(&s).map_err(serde::de::Error::custom)
    }
}

/// Validity window in UNIX seconds, inclusive start, exclusive end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Validity {
    /// First instant at which the certificate is valid.
    pub not_before: u64,
    /// First instant at which the certificate is no longer valid.
    pub not_after: u64,
}

impl Validity {
    /// A window starting at `start` and lasting `secs` seconds.
    pub fn starting_at(start: u64, secs: u64) -> Self {
        Validity { not_before: start, not_after: start.saturating_add(secs) }
    }

    /// Is `t` inside the window?
    pub fn contains(&self, t: u64) -> bool {
        t >= self.not_before && t < self.not_after
    }

    /// Remaining lifetime at instant `t` (0 if expired).
    pub fn remaining(&self, t: u64) -> u64 {
        self.not_after.saturating_sub(t.max(self.not_before))
    }
}

/// Certificate extensions — the subset GSI actually uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extension {
    /// X.509 basic constraints: may this certificate sign others?
    BasicConstraints {
        /// True for CA certificates.
        ca: bool,
        /// Maximum number of CA certificates below this one.
        path_len: Option<u32>,
    },
    /// RFC 3820 proxy certificate info.
    ProxyCertInfo {
        /// Maximum further delegations (None = unlimited).
        path_len: Option<u32>,
    },
    /// Marker set by an online CA so relying parties can recognize
    /// "issued by the local MyProxy Online CA" (GCMU authz rule, §IV-C).
    OnlineCaIssued {
        /// Hostname of the issuing GCMU endpoint.
        endpoint: String,
    },
    /// Free-form extension for forward compatibility.
    Custom {
        /// Extension identifier.
        oid: String,
        /// Extension payload.
        value: String,
    },
}

/// The signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbsCertificate {
    /// Structure version (always 3, matching X.509 v3).
    pub version: u32,
    /// Issuer-scoped serial number.
    pub serial: u64,
    /// Name of the signer.
    pub issuer: DistinguishedName,
    /// Name of the holder.
    pub subject: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// Holder's RSA public key (ig-crypto encoding).
    #[serde(with = "hexbytes")]
    pub public_key: Vec<u8>,
    /// Extensions.
    pub extensions: Vec<Extension>,
}

impl TbsCertificate {
    /// The exact bytes that get signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("TBS serialization cannot fail")
    }

    /// Decode the embedded public key.
    pub fn key(&self) -> Result<RsaPublicKey> {
        Ok(RsaPublicKey::decode(&self.public_key)?)
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Signed body.
    pub tbs: TbsCertificate,
    /// RSA/SHA-256 signature over [`TbsCertificate::signing_bytes`].
    #[serde(with = "hexbytes")]
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Sign a TBS body with the issuer's key.
    pub fn sign(tbs: TbsCertificate, issuer_key: &RsaPrivateKey) -> Result<Self> {
        let signature = issuer_key.sign(&tbs.signing_bytes())?;
        Ok(Certificate { tbs, signature })
    }

    /// Verify this certificate's signature under `issuer_key`.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> Result<()> {
        issuer_key
            .verify(&self.tbs.signing_bytes(), &self.signature)
            .map_err(|_| {
                PkiError::BadSignature(format!("subject {}", self.tbs.subject))
            })
    }

    /// Subject DN.
    pub fn subject(&self) -> &DistinguishedName {
        &self.tbs.subject
    }

    /// Issuer DN.
    pub fn issuer(&self) -> &DistinguishedName {
        &self.tbs.issuer
    }

    /// Holder's public key.
    pub fn public_key(&self) -> Result<RsaPublicKey> {
        self.tbs.key()
    }

    /// Is this a self-signed certificate (issuer == subject)?
    pub fn is_self_signed(&self) -> bool {
        self.tbs.issuer == self.tbs.subject
    }

    /// Does basic-constraints mark this as a CA?
    pub fn is_ca(&self) -> bool {
        self.tbs.extensions.iter().any(|e| matches!(e, Extension::BasicConstraints { ca: true, .. }))
    }

    /// CA path-length limit, if constrained.
    pub fn ca_path_len(&self) -> Option<u32> {
        self.tbs.extensions.iter().find_map(|e| match e {
            Extension::BasicConstraints { ca: true, path_len } => *path_len,
            _ => None,
        })
    }

    /// Proxy-certificate info if this is a proxy cert.
    pub fn proxy_info(&self) -> Option<Option<u32>> {
        self.tbs.extensions.iter().find_map(|e| match e {
            Extension::ProxyCertInfo { path_len } => Some(*path_len),
            _ => None,
        })
    }

    /// True if issued by an online CA (GCMU marker extension).
    pub fn online_ca_endpoint(&self) -> Option<&str> {
        self.tbs.extensions.iter().find_map(|e| match e {
            Extension::OnlineCaIssued { endpoint } => Some(endpoint.as_str()),
            _ => None,
        })
    }

    /// Check the validity window at instant `now`.
    pub fn check_validity(&self, now: u64) -> Result<()> {
        if now < self.tbs.validity.not_before {
            return Err(PkiError::NotYetValid {
                subject: self.tbs.subject.to_string(),
                not_before: self.tbs.validity.not_before,
                now,
            });
        }
        if now >= self.tbs.validity.not_after {
            return Err(PkiError::Expired {
                subject: self.tbs.subject.to_string(),
                not_after: self.tbs.validity.not_after,
                now,
            });
        }
        Ok(())
    }

    /// SHA-256 fingerprint (first 8 bytes, hex) used in logs and as a
    /// stable identity for trust-root lookups.
    pub fn fingerprint(&self) -> String {
        let bytes = serde_json::to_vec(self).expect("certificate serialization cannot fail");
        hex_encode(&Sha256::digest(&bytes)[..8])
    }

    /// Serialize to a PEM `CERTIFICATE` block.
    pub fn to_pem(&self) -> String {
        let body = serde_json::to_vec(self).expect("certificate serialization cannot fail");
        pem_encode("CERTIFICATE", &body)
    }

    /// Parse one certificate from PEM bytes.
    pub fn from_pem(pem: &str) -> Result<Self> {
        let body = ig_crypto::encode::pem_decode_one(pem, "CERTIFICATE")
            .map_err(|e| PkiError::Decode(e.to_string()))?;
        Self::from_bytes(&body)
    }

    /// Parse from raw (decoded) body bytes.
    pub fn from_bytes(body: &[u8]) -> Result<Self> {
        serde_json::from_slice(body).map_err(|e| PkiError::Decode(format!("bad certificate: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn make_cert(seed: u64, issuer: &str, subject: &str, exts: Vec<Extension>) -> (Certificate, RsaKeyPair, RsaKeyPair) {
        let issuer_kp = RsaKeyPair::generate(&mut seeded(seed), 512).unwrap();
        let subject_kp = RsaKeyPair::generate(&mut seeded(seed + 1), 512).unwrap();
        let tbs = TbsCertificate {
            version: 3,
            serial: 1,
            issuer: dn(issuer),
            subject: dn(subject),
            validity: Validity::starting_at(1000, 3600),
            public_key: subject_kp.public.encode(),
            extensions: exts,
        };
        let cert = Certificate::sign(tbs, &issuer_kp.private).unwrap();
        (cert, issuer_kp, subject_kp)
    }

    #[test]
    fn sign_and_verify() {
        let (cert, issuer, subject) = make_cert(100, "/O=TestCA", "/O=Grid/CN=alice", vec![]);
        cert.verify_signature(&issuer.public).unwrap();
        assert!(cert.verify_signature(&subject.public).is_err());
        assert_eq!(cert.public_key().unwrap(), subject.public);
        assert_eq!(cert.subject().common_name(), Some("alice"));
        assert!(!cert.is_self_signed());
    }

    #[test]
    fn tamper_detection() {
        let (mut cert, issuer, _) = make_cert(102, "/O=TestCA", "/CN=bob", vec![]);
        cert.tbs.subject = dn("/CN=mallory");
        assert!(cert.verify_signature(&issuer.public).is_err());
    }

    #[test]
    fn validity_windows() {
        let (cert, _, _) = make_cert(104, "/O=CA", "/CN=x", vec![]);
        assert!(cert.check_validity(999).is_err());
        cert.check_validity(1000).unwrap();
        cert.check_validity(4599).unwrap();
        let err = cert.check_validity(4600).unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
        let err = cert.check_validity(0).unwrap_err();
        assert!(matches!(err, PkiError::NotYetValid { .. }));
    }

    #[test]
    fn validity_helpers() {
        let v = Validity::starting_at(100, 50);
        assert!(v.contains(100));
        assert!(v.contains(149));
        assert!(!v.contains(150));
        assert_eq!(v.remaining(100), 50);
        assert_eq!(v.remaining(140), 10);
        assert_eq!(v.remaining(200), 0);
        assert_eq!(v.remaining(0), 50);
    }

    #[test]
    fn extension_accessors() {
        let (ca_cert, _, _) = make_cert(
            106,
            "/O=Root",
            "/O=Root",
            vec![Extension::BasicConstraints { ca: true, path_len: Some(2) }],
        );
        assert!(ca_cert.is_ca());
        assert_eq!(ca_cert.ca_path_len(), Some(2));
        assert!(ca_cert.proxy_info().is_none());

        let (proxy, _, _) = make_cert(
            108,
            "/CN=alice",
            "/CN=alice/CN=proxy",
            vec![Extension::ProxyCertInfo { path_len: Some(0) }],
        );
        assert!(!proxy.is_ca());
        assert_eq!(proxy.proxy_info(), Some(Some(0)));

        let (gcmu, _, _) = make_cert(
            110,
            "/O=GCMU CA",
            "/O=GCMU/CN=alice",
            vec![Extension::OnlineCaIssued { endpoint: "cluster.example.org".into() }],
        );
        assert_eq!(gcmu.online_ca_endpoint(), Some("cluster.example.org"));
    }

    #[test]
    fn pem_roundtrip() {
        let (cert, _, _) = make_cert(112, "/O=CA", "/CN=pem-test", vec![]);
        let pem = cert.to_pem();
        assert!(pem.contains("BEGIN CERTIFICATE"));
        let back = Certificate::from_pem(&pem).unwrap();
        assert_eq!(back, cert);
        assert_eq!(back.fingerprint(), cert.fingerprint());
    }

    #[test]
    fn from_pem_rejects_garbage() {
        assert!(Certificate::from_pem("not pem").is_err());
        let fake = pem_encode("CERTIFICATE", b"{\"not\": \"a cert\"}");
        assert!(Certificate::from_pem(&fake).is_err());
    }

    #[test]
    fn fingerprints_distinct() {
        let (a, _, _) = make_cert(114, "/O=CA", "/CN=a", vec![]);
        let (b, _, _) = make_cert(116, "/O=CA", "/CN=b", vec![]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn signing_bytes_are_stable() {
        let (cert, _, _) = make_cert(118, "/O=CA", "/CN=stable", vec![]);
        assert_eq!(cert.tbs.signing_bytes(), cert.tbs.signing_bytes());
    }
}
