//! PKI error taxonomy.

use std::fmt;

/// Errors from certificate issuance, parsing and validation.
///
/// The validator distinguishes *why* a chain was rejected because the
/// paper's central scenario (Fig 4) hinges on one specific failure:
/// an endpoint receiving a certificate "issued by a CA unknown to it"
/// must produce [`PkiError::UntrustedIssuer`], which the DCSC command
/// (Fig 5) then repairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// Malformed PEM/JSON/binary input.
    Decode(String),
    /// The certificate's signature does not verify under its issuer key.
    BadSignature(String),
    /// No trust root matches the chain's top issuer.
    UntrustedIssuer(String),
    /// Certificate used outside its validity window.
    Expired { subject: String, not_after: u64, now: u64 },
    /// Certificate not yet valid.
    NotYetValid { subject: String, not_before: u64, now: u64 },
    /// An issuing certificate lacks CA rights (basic constraints).
    NotACa(String),
    /// Proxy-certificate rules violated (naming, depth, or signer).
    ProxyViolation(String),
    /// The CA's signing policy forbids this subject name.
    PolicyViolation { ca: String, subject: String },
    /// Chain could not be assembled (missing intermediate, wrong order).
    BrokenChain(String),
    /// Gridmap lookup failed — the paper's "frequent source of errors".
    NoGridmapEntry(String),
    /// Underlying cryptographic failure.
    Crypto(ig_crypto::CryptoError),
}

impl fmt::Display for PkiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkiError::Decode(m) => write!(f, "decode error: {m}"),
            PkiError::BadSignature(m) => write!(f, "bad certificate signature: {m}"),
            PkiError::UntrustedIssuer(m) => write!(f, "untrusted issuer: {m}"),
            PkiError::Expired { subject, not_after, now } => {
                write!(f, "certificate {subject} expired at {not_after} (now {now})")
            }
            PkiError::NotYetValid { subject, not_before, now } => {
                write!(f, "certificate {subject} not valid until {not_before} (now {now})")
            }
            PkiError::NotACa(m) => write!(f, "issuer is not a CA: {m}"),
            PkiError::ProxyViolation(m) => write!(f, "proxy certificate violation: {m}"),
            PkiError::PolicyViolation { ca, subject } => {
                write!(f, "signing policy of {ca} forbids subject {subject}")
            }
            PkiError::BrokenChain(m) => write!(f, "broken certificate chain: {m}"),
            PkiError::NoGridmapEntry(dn) => write!(f, "no gridmap entry for {dn}"),
            PkiError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for PkiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PkiError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_crypto::CryptoError> for PkiError {
    fn from(e: ig_crypto::CryptoError) -> Self {
        PkiError::Crypto(e)
    }
}

/// Result alias for PKI operations.
pub type Result<T> = std::result::Result<T, PkiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PkiError::UntrustedIssuer("CA-B".into())
            .to_string()
            .contains("CA-B"));
        let e = PkiError::Expired { subject: "/CN=x".into(), not_after: 10, now: 20 };
        assert!(e.to_string().contains("expired"));
        assert!(PkiError::NoGridmapEntry("/CN=y".into()).to_string().contains("gridmap"));
    }

    #[test]
    fn crypto_error_wraps_with_source() {
        use std::error::Error;
        let e = PkiError::from(ig_crypto::CryptoError::BadSignature);
        assert!(e.source().is_some());
    }
}
