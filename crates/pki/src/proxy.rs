//! Proxy certificates (RFC 3820 style).
//!
//! "By default, the client presents a delegated proxy certificate" (§IIC).
//! A proxy is signed by the *end-entity* (or a previous proxy), not by a
//! CA; its subject must extend its issuer's subject by one `CN` component
//! and it may constrain further delegation depth.

use crate::cert::{Certificate, Extension, TbsCertificate, Validity};
use crate::credential::Credential;
use crate::error::{PkiError, Result};
use ig_crypto::{RsaKeyPair, RsaPublicKey};
use rand::Rng;

/// Options for proxy issuance.
#[derive(Debug, Clone, Copy)]
pub struct ProxyOptions {
    /// Lifetime in seconds (proxies are short-lived; 12h default).
    pub lifetime: u64,
    /// Maximum further delegations (None = unlimited).
    pub path_len: Option<u32>,
}

impl Default for ProxyOptions {
    fn default() -> Self {
        ProxyOptions { lifetime: 12 * 3600, path_len: None }
    }
}

/// Issue a proxy certificate for `proxy_key`, signed by `issuer`
/// (an end-entity credential or a previous proxy credential).
///
/// The subject is `issuer.subject + /CN=<serial>` where the serial is a
/// random u32 rendered in decimal — matching the Globus convention of
/// numeric proxy CNs.
pub fn issue_proxy<R: Rng + ?Sized>(
    rng: &mut R,
    issuer: &Credential,
    proxy_key: &RsaPublicKey,
    now: u64,
    options: ProxyOptions,
) -> Result<Certificate> {
    let issuer_cert = issuer.leaf();
    // Delegation depth enforcement at issuance time.
    if let Some(Some(0)) = issuer_cert.proxy_info() {
        return Err(PkiError::ProxyViolation(
            "issuer proxy has path_len 0 and may not delegate further".into(),
        ));
    }
    let cn: u32 = rng.gen();
    let subject = issuer_cert.subject().with("CN", &cn.to_string());
    let tbs = TbsCertificate {
        version: 3,
        serial: cn as u64,
        issuer: issuer_cert.subject().clone(),
        subject,
        validity: Validity::starting_at(now, options.lifetime),
        public_key: proxy_key.encode(),
        extensions: vec![Extension::ProxyCertInfo { path_len: options.path_len }],
    };
    Certificate::sign(tbs, issuer.key())
}

/// Generate a fresh key pair and issue a proxy for it, returning the
/// complete delegated credential (proxy + issuer chain + new key).
///
/// This is the client side of GSI delegation: the recipient ends up with
/// a credential it can use on the user's behalf — what lets Globus Online
/// "re-authenticate with the endpoints on the user's behalf and restart
/// the transfer" (§VI-B).
pub fn delegate<R: Rng + ?Sized>(
    rng: &mut R,
    issuer: &Credential,
    key_bits: usize,
    now: u64,
    options: ProxyOptions,
) -> Result<Credential> {
    let keys = RsaKeyPair::generate(rng, key_bits)?;
    let proxy_cert = issue_proxy(rng, issuer, &keys.public, now, options)?;
    let mut chain = vec![proxy_cert];
    chain.extend(issuer.chain().iter().cloned());
    Credential::new(chain, keys.private)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::dn::DistinguishedName;
    use ig_crypto::rng::seeded;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn user_credential(seed: u64) -> (CertificateAuthority, Credential) {
        let mut rng = seeded(seed);
        let mut ca =
            CertificateAuthority::create(&mut rng, dn("/O=CA"), 512, 0, 1_000_000).unwrap();
        let keys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue(dn("/O=Grid/CN=alice"), &keys.public, Validity::starting_at(0, 100_000), vec![])
            .unwrap();
        (ca, Credential::new(vec![cert], keys.private).unwrap())
    }

    #[test]
    fn proxy_subject_extends_issuer() {
        let (_, cred) = user_credential(1);
        let mut rng = seeded(2);
        let pkeys = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let proxy =
            issue_proxy(&mut rng, &cred, &pkeys.public, 10, ProxyOptions::default()).unwrap();
        assert!(proxy.subject().extends(cred.leaf().subject(), 1));
        assert_eq!(proxy.issuer(), cred.leaf().subject());
        assert!(proxy.proxy_info().is_some());
        // Signed by the *user's* key, not a CA.
        proxy
            .verify_signature(cred.key().public())
            .unwrap();
    }

    #[test]
    fn delegate_produces_usable_credential() {
        let (_, cred) = user_credential(3);
        let mut rng = seeded(4);
        let delegated = delegate(&mut rng, &cred, 512, 10, ProxyOptions::default()).unwrap();
        // Chain: proxy, then the user's EEC.
        assert_eq!(delegated.chain().len(), 2);
        assert_eq!(delegated.chain()[1], cred.chain()[0]);
        // The delegated key matches the proxy cert.
        assert_eq!(
            delegated.leaf().public_key().unwrap(),
            *delegated.key().public()
        );
    }

    #[test]
    fn chained_delegation() {
        let (_, cred) = user_credential(5);
        let mut rng = seeded(6);
        let d1 = delegate(&mut rng, &cred, 512, 10, ProxyOptions::default()).unwrap();
        let d2 = delegate(&mut rng, &d1, 512, 20, ProxyOptions::default()).unwrap();
        assert_eq!(d2.chain().len(), 3);
        assert!(d2.leaf().subject().extends(cred.leaf().subject(), 2));
    }

    #[test]
    fn path_len_zero_blocks_further_delegation() {
        let (_, cred) = user_credential(7);
        let mut rng = seeded(8);
        let limited = delegate(
            &mut rng,
            &cred,
            512,
            10,
            ProxyOptions { lifetime: 3600, path_len: Some(0) },
        )
        .unwrap();
        let err = delegate(&mut rng, &limited, 512, 20, ProxyOptions::default()).unwrap_err();
        assert!(matches!(err, PkiError::ProxyViolation(_)));
    }

    #[test]
    fn proxy_lifetime_respected() {
        let (_, cred) = user_credential(9);
        let mut rng = seeded(10);
        let proxy = issue_proxy(
            &mut rng,
            &cred,
            cred.key().public(),
            100,
            ProxyOptions { lifetime: 50, path_len: None },
        )
        .unwrap();
        proxy.check_validity(100).unwrap();
        assert!(proxy.check_validity(151).is_err());
    }
}
