//! # ig-pki — X.509-style public key infrastructure for Instant GridFTP
//!
//! Implements the PKI machinery the paper's Grid Security Infrastructure
//! needs, from scratch on top of [`ig_crypto`]:
//!
//! * [`dn::DistinguishedName`] — `/O=Grid/OU=site/CN=user` style names.
//!   GCMU "embeds the local username in the distinguished name" (§IV); the
//!   [`dn::DistinguishedName::common_name`] accessor is what the GCMU
//!   authorization callout parses.
//! * [`cert::Certificate`] — signed certificates with validity windows,
//!   basic-constraints and RFC 3820-style proxy-certificate extensions.
//! * [`ca::CertificateAuthority`] — issues host, user, CA and short-lived
//!   online-CA certificates (the MyProxy Online CA of §IV-A builds on it).
//! * [`proxy`] — proxy-certificate delegation (the paper's step where
//!   "the server performs a delegation, and both ends ... present the
//!   user's proxy certificate", §IIC).
//! * [`validate`] + [`store::TrustStore`] + [`policy::SigningPolicy`] —
//!   chain validation against trust roots with CA signing policies; the
//!   DCAU failure of Fig 4 is precisely a [`error::PkiError::UntrustedIssuer`]
//!   from this validator.
//! * [`gridmap::Gridmap`] — the conventional DN → local-user mapping file
//!   that GCMU eliminates ("a frequent source of errors and complaints",
//!   §IV-C). Kept as the baseline for experiment E8.
//! * [`credential::Credential`] — a certificate chain plus private key;
//!   its PEM-bundle form is byte-for-byte the payload of a `DCSC P`
//!   command (§V-A: certificate, private key, then additional unordered
//!   certificates).
//!
//! Certificate bodies are serialized as canonical JSON and signed with
//! RSA/SHA-256 — a deliberately transparent stand-in for ASN.1 DER that
//! preserves every behaviour the paper depends on (signature binding,
//! chain building, DN semantics, expiry).

pub mod ca;
pub mod cert;
pub mod credential;
pub mod csr;
pub mod dn;
pub mod error;
pub mod gridmap;
pub mod policy;
pub mod proxy;
pub mod store;
pub mod time;
pub mod validate;

pub use ca::CertificateAuthority;
pub use cert::{Certificate, Extension, Validity};
pub use credential::Credential;
pub use csr::CertificateSigningRequest;
pub use dn::DistinguishedName;
pub use error::PkiError;
pub use gridmap::Gridmap;
pub use policy::SigningPolicy;
pub use store::TrustStore;
pub use validate::validate_chain;
