//! Certificate authorities.
//!
//! One type serves three roles from the paper:
//! * a **well-known CA** (the conventional installation's step (e):
//!   "obtain an X.509 host certificate from a well-known certificate
//!   authority"),
//! * a **site CA** issuing host certificates, and
//! * the **MyProxy Online CA** inside GCMU, which issues *short-lived*
//!   user certificates whose DN embeds the local username (§IV-A/C) and
//!   carries the [`Extension::OnlineCaIssued`] marker the GCMU authz
//!   callout keys on.

use crate::cert::{Certificate, Extension, TbsCertificate, Validity};
use crate::dn::DistinguishedName;
use crate::error::Result;
use ig_crypto::{RsaKeyPair, RsaPublicKey};
use rand::Rng;

/// A certificate authority: a self-signed root plus issuance state.
pub struct CertificateAuthority {
    name: DistinguishedName,
    keys: RsaKeyPair,
    root: Certificate,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Create a new root CA with a fresh key pair.
    ///
    /// `valid_for` is the root's lifetime in seconds starting at `now`.
    pub fn create<R: Rng + ?Sized>(
        rng: &mut R,
        name: DistinguishedName,
        key_bits: usize,
        now: u64,
        valid_for: u64,
    ) -> Result<Self> {
        let keys = RsaKeyPair::generate(rng, key_bits)?;
        let tbs = TbsCertificate {
            version: 3,
            serial: 0,
            issuer: name.clone(),
            subject: name.clone(),
            validity: Validity::starting_at(now, valid_for),
            public_key: keys.public.encode(),
            extensions: vec![Extension::BasicConstraints { ca: true, path_len: None }],
        };
        let root = Certificate::sign(tbs, &keys.private)?;
        Ok(CertificateAuthority { name, keys, root, next_serial: 1 })
    }

    /// The CA's DN.
    pub fn name(&self) -> &DistinguishedName {
        &self.name
    }

    /// The self-signed root certificate (what sites install as a trust
    /// root — conventional step (g), automated away by GCMU).
    pub fn root_cert(&self) -> &Certificate {
        &self.root
    }

    /// The CA public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.keys.public
    }

    fn take_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    /// Issue an end-entity certificate (host or user).
    pub fn issue(
        &mut self,
        subject: DistinguishedName,
        subject_key: &RsaPublicKey,
        validity: Validity,
        mut extra_extensions: Vec<Extension>,
    ) -> Result<Certificate> {
        let mut extensions = vec![Extension::BasicConstraints { ca: false, path_len: None }];
        extensions.append(&mut extra_extensions);
        let tbs = TbsCertificate {
            version: 3,
            serial: self.take_serial(),
            issuer: self.name.clone(),
            subject,
            validity,
            public_key: subject_key.encode(),
            extensions,
        };
        Certificate::sign(tbs, &self.keys.private)
    }

    /// Issue an intermediate CA certificate.
    pub fn issue_ca(
        &mut self,
        subject: DistinguishedName,
        subject_key: &RsaPublicKey,
        validity: Validity,
        path_len: Option<u32>,
    ) -> Result<Certificate> {
        let tbs = TbsCertificate {
            version: 3,
            serial: self.take_serial(),
            issuer: self.name.clone(),
            subject,
            validity,
            public_key: subject_key.encode(),
            extensions: vec![Extension::BasicConstraints { ca: true, path_len }],
        };
        Certificate::sign(tbs, &self.keys.private)
    }

    /// Issue a *short-lived* certificate in the online-CA style of §IV:
    /// the subject DN is `<base>/CN=<username>` regardless of what the
    /// requester asked for, and the certificate carries the
    /// [`Extension::OnlineCaIssued`] marker naming this endpoint.
    pub fn issue_short_lived(
        &mut self,
        base: &DistinguishedName,
        username: &str,
        endpoint: &str,
        subject_key: &RsaPublicKey,
        now: u64,
        lifetime: u64,
    ) -> Result<Certificate> {
        let subject = base.with("CN", username);
        self.issue(
            subject,
            subject_key,
            Validity::starting_at(now, lifetime),
            vec![Extension::OnlineCaIssued { endpoint: endpoint.to_string() }],
        )
    }

    /// Sign arbitrary bytes with the CA key (used by tests and the GSI
    /// handshake transcripts; issuance should go through `issue*`).
    pub fn sign_bytes(&self, data: &[u8]) -> Result<Vec<u8>> {
        Ok(self.keys.private.sign(data)?)
    }

    /// Access the CA key pair (needed when a CA identity doubles as a
    /// server credential in small test deployments).
    pub fn keypair(&self) -> &RsaKeyPair {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn test_ca(seed: u64, name: &str) -> CertificateAuthority {
        CertificateAuthority::create(&mut seeded(seed), dn(name), 512, 1000, 10_000).unwrap()
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = test_ca(1, "/O=Test CA");
        let root = ca.root_cert();
        assert!(root.is_self_signed());
        assert!(root.is_ca());
        root.verify_signature(ca.public_key()).unwrap();
        root.check_validity(5000).unwrap();
        assert!(root.check_validity(11_001).is_err());
    }

    #[test]
    fn issue_end_entity() {
        let mut ca = test_ca(2, "/O=Site CA");
        let user = RsaKeyPair::generate(&mut seeded(3), 512).unwrap();
        let cert = ca
            .issue(dn("/O=Site/CN=host1"), &user.public, Validity::starting_at(1000, 100), vec![])
            .unwrap();
        cert.verify_signature(ca.public_key()).unwrap();
        assert!(!cert.is_ca());
        assert_eq!(cert.issuer(), ca.name());
        assert_eq!(cert.tbs.serial, 1);
        // Serials increment.
        let cert2 = ca
            .issue(dn("/O=Site/CN=host2"), &user.public, Validity::starting_at(1000, 100), vec![])
            .unwrap();
        assert_eq!(cert2.tbs.serial, 2);
    }

    #[test]
    fn issue_intermediate_ca() {
        let mut root = test_ca(4, "/O=Root");
        let sub_keys = RsaKeyPair::generate(&mut seeded(5), 512).unwrap();
        let sub = root
            .issue_ca(dn("/O=Root/OU=Sub"), &sub_keys.public, Validity::starting_at(1000, 100), Some(0))
            .unwrap();
        assert!(sub.is_ca());
        assert_eq!(sub.ca_path_len(), Some(0));
        sub.verify_signature(root.public_key()).unwrap();
    }

    #[test]
    fn short_lived_embeds_username_and_marker() {
        let mut ca = test_ca(6, "/O=GCMU CA/OU=cluster.example.org");
        let user_keys = RsaKeyPair::generate(&mut seeded(7), 512).unwrap();
        let base = dn("/O=GCMU/OU=cluster.example.org");
        let cert = ca
            .issue_short_lived(&base, "alice", "cluster.example.org", &user_keys.public, 5000, 3600 * 12)
            .unwrap();
        // The DN embeds the local username (the GCMU rule, §IV-C).
        assert_eq!(cert.subject().to_string(), "/O=GCMU/OU=cluster.example.org/CN=alice");
        assert_eq!(cert.subject().common_name(), Some("alice"));
        assert_eq!(cert.online_ca_endpoint(), Some("cluster.example.org"));
        // Short lifetime: valid now, expired in 13 hours.
        cert.check_validity(5001).unwrap();
        assert!(cert.check_validity(5000 + 3600 * 13).is_err());
    }

    #[test]
    fn distinct_cas_do_not_cross_verify() {
        // The Fig 4 setup: CA-A's certs do not verify under CA-B.
        let mut ca_a = test_ca(8, "/O=CA-A");
        let ca_b = test_ca(9, "/O=CA-B");
        let k = RsaKeyPair::generate(&mut seeded(10), 512).unwrap();
        let cert = ca_a
            .issue(dn("/CN=user"), &k.public, Validity::starting_at(1000, 100), vec![])
            .unwrap();
        cert.verify_signature(ca_a.public_key()).unwrap();
        assert!(cert.verify_signature(ca_b.public_key()).is_err());
    }
}
