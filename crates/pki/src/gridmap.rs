//! The gridmap file — the DN → local-account mapping GCMU eliminates.
//!
//! §IV-C: "This mapping is typically done by looking at a Gridmap file ...
//! This file is, however, a frequent source of errors and complaints,
//! because of the difficulties inherent in keeping it up to date." We keep
//! a faithful implementation as the *baseline* authorization mechanism so
//! experiment E8 can count the per-user administration steps GCMU removes.

use crate::dn::DistinguishedName;
use crate::error::{PkiError, Result};
use std::collections::BTreeMap;

/// A gridmap: ordered DN → username entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gridmap {
    entries: BTreeMap<String, String>,
}

impl Gridmap {
    /// Empty gridmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a mapping. This is the manual admin step (h) of the
    /// conventional installation ("generate mappings between users' Grid
    /// identities ... to a local user account").
    pub fn add(&mut self, dn: &DistinguishedName, username: &str) {
        self.entries.insert(dn.to_string(), username.to_string());
    }

    /// Remove a mapping; true if one existed.
    pub fn remove(&mut self, dn: &DistinguishedName) -> bool {
        self.entries.remove(&dn.to_string()).is_some()
    }

    /// Look up the local account for a DN.
    pub fn lookup(&self, dn: &DistinguishedName) -> Result<&str> {
        self.entries
            .get(&dn.to_string())
            .map(String::as_str)
            .ok_or_else(|| PkiError::NoGridmapEntry(dn.to_string()))
    }

    /// Number of entries (E8 counts these as per-user admin burden).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize in the classic format: `"<DN>" <username>` per line.
    pub fn to_file(&self) -> String {
        let mut out = String::new();
        for (dn, user) in &self.entries {
            out.push('"');
            out.push_str(dn);
            out.push_str("\" ");
            out.push_str(user);
            out.push('\n');
        }
        out
    }

    /// Parse the classic format. Blank lines and `#` comments ignored.
    pub fn parse_file(text: &str) -> Result<Self> {
        let mut map = Gridmap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line.strip_prefix('"').ok_or_else(|| {
                PkiError::Decode(format!("gridmap line {}: DN must be quoted", lineno + 1))
            })?;
            let (dn_str, user) = rest.split_once('"').ok_or_else(|| {
                PkiError::Decode(format!("gridmap line {}: unterminated quote", lineno + 1))
            })?;
            let user = user.trim();
            if user.is_empty() || user.contains(char::is_whitespace) {
                return Err(PkiError::Decode(format!(
                    "gridmap line {}: bad username {user:?}",
                    lineno + 1
                )));
            }
            let dn = DistinguishedName::parse(dn_str)?;
            map.add(&dn, user);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn add_lookup_remove() {
        let mut g = Gridmap::new();
        assert!(g.is_empty());
        let alice = dn("/O=Grid/CN=Alice Smith");
        g.add(&alice, "asmith");
        assert_eq!(g.lookup(&alice).unwrap(), "asmith");
        assert_eq!(g.len(), 1);
        // Replacement.
        g.add(&alice, "alice2");
        assert_eq!(g.lookup(&alice).unwrap(), "alice2");
        assert_eq!(g.len(), 1);
        assert!(g.remove(&alice));
        assert!(!g.remove(&alice));
        assert!(g.lookup(&alice).is_err());
    }

    #[test]
    fn missing_entry_is_the_papers_error() {
        // The stale-gridmap failure mode the paper complains about.
        let g = Gridmap::new();
        let err = g.lookup(&dn("/O=Grid/CN=newuser")).unwrap_err();
        assert!(matches!(err, PkiError::NoGridmapEntry(_)));
    }

    #[test]
    fn file_roundtrip() {
        let mut g = Gridmap::new();
        g.add(&dn("/O=Grid/CN=Alice Smith"), "asmith");
        g.add(&dn("/O=Grid/OU=ANL/CN=Bob"), "bob");
        let text = g.to_file();
        assert!(text.contains("\"/O=Grid/CN=Alice Smith\" asmith"));
        let parsed = Gridmap::parse_file(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text = "# comment\n\n\"/O=G/CN=x\" xuser\n";
        let g = Gridmap::parse_file(text).unwrap();
        assert_eq!(g.lookup(&dn("/O=G/CN=x")).unwrap(), "xuser");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Gridmap::parse_file("/O=G/CN=x xuser").is_err()); // unquoted
        assert!(Gridmap::parse_file("\"/O=G/CN=x xuser").is_err()); // unterminated
        assert!(Gridmap::parse_file("\"/O=G/CN=x\" ").is_err()); // no user
        assert!(Gridmap::parse_file("\"/O=G/CN=x\" two words").is_err());
        assert!(Gridmap::parse_file("\"not-a-dn\" user").is_err());
    }
}
