//! CA signing policies.
//!
//! Globus ships `*.signing_policy` files restricting which subject DNs a
//! trust root may sign. §V-A of the paper depends on their semantics for
//! DCSC: "Servers do not require signing policy files for any CA
//! certificates in (3). If signing policies do exist ... the server will
//! still use and enforce them." [`SigningPolicy`] reproduces the
//! `cond_subjects` glob behaviour.

use crate::dn::DistinguishedName;
use serde::{Deserialize, Serialize};

/// A signing policy: a set of DN glob patterns a CA is allowed to sign.
///
/// Patterns use `*` as "any suffix" when trailing (the dominant usage in
/// real signing-policy files, e.g. `/O=Grid/OU=site/*`) and also match
/// embedded `*` segments literally-per-component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SigningPolicy {
    patterns: Vec<String>,
}

impl SigningPolicy {
    /// A policy allowing any subject (the default when no signing-policy
    /// file exists for a CA).
    pub fn allow_all() -> Self {
        SigningPolicy { patterns: vec!["*".to_string()] }
    }

    /// A policy with explicit patterns.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(patterns: I) -> Self {
        SigningPolicy { patterns: patterns.into_iter().map(Into::into).collect() }
    }

    /// Parse the classic signing-policy file format:
    ///
    /// ```text
    /// access_id_CA  X509  '/O=Example CA'
    /// pos_rights    globus CA:sign
    /// cond_subjects globus '"/O=Example/*" "/O=Other/CN=x"'
    /// ```
    ///
    /// Only `cond_subjects` lines contribute patterns; comments (`#`) and
    /// unknown lines are ignored, matching the real parser's tolerance.
    pub fn parse_file(text: &str) -> Self {
        let mut patterns = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("cond_subjects") {
                // Syntax: cond_subjects globus '"/O=A/*" "/O=B/CN=x"'.
                // Strip the outer single quotes if present, then take each
                // double-quoted item; a bare unquoted word is one pattern.
                if !rest.contains('\'') && !rest.contains('"') {
                    // Fully unquoted: `cond_subjects globus /O=X/*`.
                    patterns.extend(rest.split_whitespace().skip(1).map(String::from));
                    continue;
                }
                let rest = rest.trim_start_matches(|c: char| c != '\'' && c != '"');
                let inner = rest
                    .strip_prefix('\'')
                    .and_then(|r| r.strip_suffix('\''))
                    .unwrap_or(rest);
                if inner.contains('"') {
                    let mut in_quote = false;
                    let mut cur = String::new();
                    for c in inner.chars() {
                        match (in_quote, c) {
                            (false, '"') => in_quote = true,
                            (true, '"') => {
                                patterns.push(std::mem::take(&mut cur));
                                in_quote = false;
                            }
                            (true, c) => cur.push(c),
                            (false, _) => {}
                        }
                    }
                } else {
                    patterns.extend(inner.split_whitespace().map(String::from));
                }
            }
        }
        SigningPolicy { patterns }
    }

    /// Render as a signing-policy file body.
    pub fn to_file(&self, ca_name: &str) -> String {
        let quoted: Vec<String> = self.patterns.iter().map(|p| format!("\"{p}\"")).collect();
        format!(
            "access_id_CA  X509  '{ca_name}'\npos_rights    globus CA:sign\ncond_subjects globus '{}'\n",
            quoted.join(" ")
        )
    }

    /// Does this policy permit the CA to have signed `subject`?
    pub fn permits(&self, subject: &DistinguishedName) -> bool {
        let s = subject.to_string();
        self.patterns.iter().any(|p| glob_match(p, &s))
    }

    /// The raw patterns.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }
}

/// Minimal glob: `*` matches any (possibly empty) run of characters.
fn glob_match(pattern: &str, text: &str) -> bool {
    // Dynamic-programming match over bytes; patterns are short.
    let p: Vec<u8> = pattern.bytes().collect();
    let t: Vec<u8> = text.bytes().collect();
    let mut dp = vec![vec![false; t.len() + 1]; p.len() + 1];
    dp[0][0] = true;
    for i in 1..=p.len() {
        if p[i - 1] == b'*' {
            dp[i][0] = dp[i - 1][0];
        }
    }
    for i in 1..=p.len() {
        for j in 1..=t.len() {
            dp[i][j] = if p[i - 1] == b'*' {
                dp[i - 1][j] || dp[i][j - 1]
            } else {
                dp[i - 1][j - 1] && p[i - 1] == t[j - 1]
            };
        }
    }
    dp[p.len()][t.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn allow_all_permits_everything() {
        let p = SigningPolicy::allow_all();
        assert!(p.permits(&dn("/O=Anything/CN=x")));
        assert!(p.permits(&dn("/CN=")));
    }

    #[test]
    fn prefix_glob() {
        let p = SigningPolicy::new(["/O=Grid/OU=Argonne/*"]);
        assert!(p.permits(&dn("/O=Grid/OU=Argonne/CN=alice")));
        assert!(p.permits(&dn("/O=Grid/OU=Argonne/CN=alice/CN=proxy")));
        assert!(!p.permits(&dn("/O=Grid/OU=Oak Ridge/CN=bob")));
        assert!(!p.permits(&dn("/O=Other/CN=x")));
    }

    #[test]
    fn exact_pattern() {
        let p = SigningPolicy::new(["/O=Site/CN=host1"]);
        assert!(p.permits(&dn("/O=Site/CN=host1")));
        assert!(!p.permits(&dn("/O=Site/CN=host12")));
    }

    #[test]
    fn multiple_patterns() {
        let p = SigningPolicy::new(["/O=A/*", "/O=B/CN=only"]);
        assert!(p.permits(&dn("/O=A/CN=any")));
        assert!(p.permits(&dn("/O=B/CN=only")));
        assert!(!p.permits(&dn("/O=B/CN=other")));
    }

    #[test]
    fn empty_policy_denies() {
        let p = SigningPolicy::default();
        assert!(!p.permits(&dn("/CN=x")));
    }

    #[test]
    fn file_roundtrip() {
        let p = SigningPolicy::new(["/O=Example/*", "/O=Other/CN=x"]);
        let file = p.to_file("/O=Example CA");
        let parsed = SigningPolicy::parse_file(&file);
        assert_eq!(parsed, p);
    }

    #[test]
    fn parse_ignores_comments_and_junk() {
        let text = "# comment\naccess_id_CA X509 '/O=CA'\nsomething unknown\ncond_subjects globus '\"/O=X/*\"'\n";
        let p = SigningPolicy::parse_file(text);
        assert_eq!(p.patterns(), &["/O=X/*".to_string()]);
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b", "ab"));
        assert!(glob_match("a*b", "aXXb"));
        assert!(!glob_match("a*b", "aXXc"));
        assert!(glob_match("*x*", "box"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }
}
