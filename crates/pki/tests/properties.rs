//! Property tests for DN parsing, gridmap files, and policy globs.

use ig_pki::dn::DistinguishedName;
use ig_pki::gridmap::Gridmap;
use ig_pki::policy::SigningPolicy;
use proptest::prelude::*;

/// Attribute names as they appear in real DNs.
fn attr_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("C".to_string()),
        Just("O".to_string()),
        Just("OU".to_string()),
        Just("CN".to_string()),
        Just("DC".to_string()),
    ]
}

/// Values including slashes and backslashes that exercise escaping.
fn value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ._/\\\\-]{0,20}").unwrap()
}

fn dn_strategy() -> impl Strategy<Value = DistinguishedName> {
    proptest::collection::vec((attr_strategy(), value_strategy()), 1..6)
        .prop_map(DistinguishedName::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dn_display_parse_roundtrip(dn in dn_strategy()) {
        let s = dn.to_string();
        let parsed = DistinguishedName::parse(&s).unwrap();
        prop_assert_eq!(parsed, dn);
    }

    #[test]
    fn dn_with_extends(dn in dn_strategy(), cn in value_strategy()) {
        let extended = dn.with("CN", &cn);
        prop_assert!(extended.extends(&dn, 1));
        prop_assert_eq!(extended.common_name(), Some(cn.as_str()));
    }

    #[test]
    fn gridmap_roundtrip(entries in proptest::collection::vec(
        (dn_strategy(), proptest::string::string_regex("[a-z][a-z0-9]{0,11}").unwrap()),
        0..10,
    )) {
        let mut g = Gridmap::new();
        for (dn, user) in &entries {
            g.add(dn, user);
        }
        let parsed = Gridmap::parse_file(&g.to_file()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn prefix_policy_permits_extensions(dn in dn_strategy(), cn in value_strategy()) {
        // A policy allowing "<dn>/*" must allow any extension of dn.
        let policy = SigningPolicy::new([format!("{dn}/*")]);
        let extended = dn.with("CN", &cn);
        prop_assert!(policy.permits(&extended));
    }

    #[test]
    fn exact_policy_permits_only_exact(dn in dn_strategy()) {
        let s = dn.to_string();
        prop_assume!(!s.contains('*'));
        let policy = SigningPolicy::new([s]);
        prop_assert!(policy.permits(&dn));
        let other = dn.with("CN", "extra-component");
        prop_assert!(!policy.permits(&other));
    }

    #[test]
    fn policy_file_roundtrip(patterns in proptest::collection::vec(
        proptest::string::string_regex("[a-zA-Z0-9/=*. -]{1,20}").unwrap(),
        1..6,
    )) {
        let policy = SigningPolicy::new(patterns);
        let parsed = SigningPolicy::parse_file(&policy.to_file("/O=CA"));
        prop_assert_eq!(parsed, policy);
    }
}
