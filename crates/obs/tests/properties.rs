//! Property and concurrency tests for `ig-obs` internals.

use ig_obs::{kv, Histogram, Tracer};
use proptest::prelude::*;

/// Oracle check: for each snapshot quantile, the histogram's answer must
/// land within one log-linear bucket of the exact order statistic.
fn check_quantiles(samples: &[u64]) {
    let h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.5, 0.95, 0.99] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.quantile(q);
        let be = Histogram::bucket_of(exact) as i64;
        let ba = Histogram::bucket_of(approx) as i64;
        assert!(
            (be - ba).abs() <= 1,
            "q={q}: exact {exact} (bucket {be}) vs histogram {approx} (bucket {ba}) \
             for {} samples",
            sorted.len()
        );
    }
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.min(), sorted[0]);
    assert_eq!(h.max(), *sorted.last().unwrap());
}

proptest! {
    #[test]
    fn quantiles_within_one_bucket_of_oracle(
        samples in proptest::collection::vec(any::<u64>(), 1..400)
    ) {
        check_quantiles(&samples);
    }

    #[test]
    fn quantiles_within_one_bucket_small_range(
        samples in proptest::collection::vec(0u64..10_000, 1..400)
    ) {
        check_quantiles(&samples);
    }
}

#[test]
fn quantiles_on_edge_sets() {
    check_quantiles(&[0]);
    check_quantiles(&[u64::MAX]);
    check_quantiles(&[0, u64::MAX]);
    check_quantiles(&(1..=1000u64).collect::<Vec<_>>());
    check_quantiles(&[7; 64]);
    check_quantiles(&[1, 1, 1, 1 << 40]);
}

/// Events recorded from parallel threads (as parallel DTP streams do)
/// must interleave with strictly increasing sequence numbers in buffer
/// order, with no events lost.
#[test]
fn parallel_events_interleave_with_increasing_seq() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 200;
    let tracer = std::sync::Arc::new(Tracer::new("dtp"));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let tr = std::sync::Arc::clone(&tracer);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                tr.record(t as u64 + 1, "stream.block", vec![kv("t", t), kv("i", i)], true);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = tracer.events();
    assert_eq!(events.len(), THREADS * PER_THREAD as usize);
    for pair in events.windows(2) {
        assert!(
            pair[1].seq > pair[0].seq,
            "seq must be strictly increasing: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    // Per-thread order is preserved within the interleaving.
    for t in 0..THREADS {
        let span = t as u64 + 1;
        let mine: Vec<u64> = events
            .iter()
            .filter(|e| e.span == span)
            .map(|e| match &e.fields[1].1 {
                ig_obs::Value::U64(i) => *i,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(mine, (0..PER_THREAD).collect::<Vec<_>>());
    }
}
