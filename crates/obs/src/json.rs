//! Minimal hand-rolled JSON emission.
//!
//! `ig-obs` sits below every other runtime crate in the dependency graph,
//! so it cannot pull in `serde_json`. Trace lines and metric snapshots
//! only ever *emit* JSON (never parse it), and the full grammar we need
//! is: objects with string keys, strings, booleans, u64/i64, and finite
//! f64 — small enough to write by hand, like `ig-crypto` does for its
//! primitives.

/// A typed field value attached to an event or metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Finite float (NaN/inf are emitted as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Build a `(key, value)` field pair; sugar for event call sites.
pub fn kv(key: &str, value: impl Into<Value>) -> (String, Value) {
    (key.to_string(), value.into())
}

/// Append `s` as a JSON string literal (quotes included) to `out`.
pub fn escape_str_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a [`Value`] in JSON syntax to `out`.
///
/// f64 uses Rust's shortest-roundtrip `Display`, which is deterministic
/// for a given bit pattern — a requirement for byte-stable trace replays.
pub fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => out.push_str(&x.to_string()),
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => escape_str_into(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Append `fields` as a JSON object, preserving insertion order.
pub fn fields_into(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_str_into(out, k);
        out.push(':');
        value_into(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        let mut s = String::new();
        escape_str_into(&mut s, "a\"b\\c\nd\x01e");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn values_render() {
        let mut s = String::new();
        value_into(&mut s, &Value::U64(7));
        value_into(&mut s, &Value::I64(-2));
        value_into(&mut s, &Value::Bool(true));
        value_into(&mut s, &Value::F64(1.5));
        value_into(&mut s, &Value::F64(f64::NAN));
        assert_eq!(s, "7-2true1.5null");
    }

    #[test]
    fn fields_preserve_order() {
        let mut s = String::new();
        fields_into(&mut s, &[kv("z", 1u64), kv("a", "x")]);
        assert_eq!(s, "{\"z\":1,\"a\":\"x\"}");
    }
}
