//! Span/event tracer with a lock-cheap ring buffer and JSONL export.
//!
//! Every event carries a monotone sequence number and a `stable` flag.
//! *Stable* events are those whose presence and field values are a pure
//! function of the run's seeds and causal order — chaos faults, retry
//! attempts, command dispatch, span boundaries. *Unstable* events carry
//! wall-clock-dependent payloads (durations, timer-driven markers) and
//! are excluded from the replay export.
//!
//! [`Tracer::export_stable`] filters to stable events and renumbers the
//! sequence, so two runs of the same seeded scenario produce
//! byte-identical JSONL even though unstable events interleave
//! differently — that is the property the CI replay-determinism gate
//! asserts.

use crate::json::{escape_str_into, fields_into, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotone sequence number (per tracer).
    pub seq: u64,
    /// Position in the *stable* substream (assigned at record time;
    /// meaningful only when `stable` is true). Unlike `seq`, this number
    /// does not move when unstable events interleave differently between
    /// replays, so it is safe to emit in the stable export.
    pub stable_seq: u64,
    /// Owning span id; 0 = no span.
    pub span: u64,
    /// Event name, dot-separated (`chaos.fault`, `retry.attempt`).
    pub name: String,
    /// Typed fields in insertion order.
    pub fields: Vec<(String, Value)>,
    /// Whether this event is deterministic under replay.
    pub stable: bool,
}

impl TraceEvent {
    /// Render as one JSON line (no trailing newline). `seq` lets the
    /// caller renumber for stable exports.
    fn jsonl(&self, component: &str, seq: u64) -> String {
        let mut out = String::with_capacity(64 + self.name.len());
        out.push_str("{\"seq\":");
        out.push_str(&seq.to_string());
        out.push_str(",\"component\":");
        escape_str_into(&mut out, component);
        out.push_str(",\"span\":");
        out.push_str(&self.span.to_string());
        out.push_str(",\"event\":");
        escape_str_into(&mut out, &self.name);
        out.push_str(",\"fields\":");
        fields_into(&mut out, &self.fields);
        out.push('}');
        out
    }
}

/// A cursor-bounded stable export (see [`Tracer::export_stable_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableExport {
    /// JSONL lines for stable events at `stable_seq >= cursor` still in
    /// the ring, in sequence order.
    pub jsonl: String,
    /// Cursor to pass on the next call to resume exactly after this one.
    pub next: u64,
    /// Stable events in `[cursor, next)` the ring evicted before they
    /// could be exported. Zero means the stream is gapless so far.
    pub dropped: u64,
}

/// Ring-buffer event collector; one per [`crate::Obs`].
#[derive(Debug)]
pub struct Tracer {
    component: String,
    seq: AtomicU64,
    stable_seq: AtomicU64,
    next_span: AtomicU64,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl Tracer {
    /// New tracer labelled `component`.
    pub fn new(component: &str) -> Self {
        Tracer {
            component: component.to_string(),
            seq: AtomicU64::new(0),
            stable_seq: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            capacity: DEFAULT_CAPACITY,
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Component label.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Allocate a fresh span id (never 0).
    pub fn new_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Record an event. Sequence numbers are claimed and the ring
    /// appended under one short lock so `seq` order equals buffer order.
    pub fn record(&self, span: u64, name: &str, fields: Vec<(String, Value)>, stable: bool) {
        let mut q = self.events.lock().unwrap();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let stable_seq =
            if stable { self.stable_seq.fetch_add(1, Ordering::Relaxed) } else { 0 };
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(TraceEvent { seq, stable_seq, span, name: name.to_string(), fields, stable });
    }

    /// Number of buffered events with name `name`.
    pub fn count_events(&self, name: &str) -> usize {
        self.events.lock().unwrap().iter().filter(|e| e.name == name).count()
    }

    /// Snapshot of all buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Full JSONL export: every buffered event, raw sequence numbers,
    /// plus a `"stable"` marker. For human debugging, not replay diffs.
    pub fn export_full(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().unwrap().iter() {
            let mut line = e.jsonl(&self.component, e.seq);
            // Splice the stability marker before the closing brace.
            line.pop();
            line.push_str(",\"stable\":");
            line.push_str(if e.stable { "true" } else { "false" });
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Replay-stable JSONL export: stable events only, numbered by their
    /// position in the stable substream (0-based). Byte-identical across
    /// replays of the same seeded scenario.
    pub fn export_stable(&self) -> String {
        self.export_stable_since(0).jsonl
    }

    /// Cursor-bounded stable export: stable events at `stable_seq >=
    /// cursor`, plus the cursor to resume from and a count of events the
    /// ring evicted before this read (so a live `trace follow` stream
    /// can report gaps instead of silently skipping them). Repeated
    /// calls with the returned `next` yield a seq-monotone, gap-audited
    /// stream without re-exporting the whole buffer each time.
    pub fn export_stable_since(&self, cursor: u64) -> StableExport {
        let q = self.events.lock().unwrap();
        // `stable_seq` only advances under the events lock, so this read
        // is consistent with the buffer snapshot below.
        let total = self.stable_seq.load(Ordering::Relaxed);
        let mut jsonl = String::new();
        let mut oldest_buffered = None;
        for e in q.iter().filter(|e| e.stable) {
            if oldest_buffered.is_none() {
                oldest_buffered = Some(e.stable_seq);
            }
            if e.stable_seq >= cursor {
                jsonl.push_str(&e.jsonl(&self.component, e.stable_seq));
                jsonl.push('\n');
            }
        }
        let dropped = match oldest_buffered {
            Some(oldest) if oldest > cursor => oldest - cursor,
            Some(_) => 0,
            None => total.saturating_sub(cursor),
        };
        StableExport { jsonl, next: total.max(cursor), dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::kv;

    #[test]
    fn stable_export_filters_and_renumbers() {
        let t = Tracer::new("test");
        t.record(0, "a", vec![kv("k", 1u64)], true);
        t.record(0, "noise", vec![kv("ns", 123u64)], false);
        t.record(2, "b", vec![], true);
        let stable = t.export_stable();
        let lines: Vec<&str> = stable.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[1].starts_with("{\"seq\":1,"));
        assert!(!stable.contains("noise"));
        assert!(stable.contains("\"span\":2"));
        let full = t.export_full();
        assert_eq!(full.lines().count(), 3);
        assert!(full.contains("\"stable\":false"));
    }

    #[test]
    fn ring_caps_out() {
        let mut t = Tracer::new("cap");
        t.capacity = 4;
        for i in 0..10u64 {
            t.record(0, "e", vec![kv("i", i)], true);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].seq, 6, "oldest events evicted");
        assert_eq!(evs[3].seq, 9);
    }

    #[test]
    fn cursor_export_survives_wraparound() {
        let mut t = Tracer::new("wrap");
        t.capacity = 4;
        // Interleave stable and unstable so seq != stable_seq.
        for i in 0..3u64 {
            t.record(0, "e", vec![kv("i", i)], true);
            t.record(0, "noise", vec![], false);
        }
        // Ring holds the last 4 events: s1,u1,s2,u2 — s0 was evicted.
        let first = t.export_stable_since(0);
        assert_eq!(first.dropped, 1, "evicted stable event must be counted");
        assert_eq!(first.next, 3);
        let lines: Vec<&str> = first.jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":1,"), "bad first line: {}", lines[0]);
        assert!(lines[1].starts_with("{\"seq\":2,"));

        // Resuming from `next` is quiet: no lines, no drops.
        let again = t.export_stable_since(first.next);
        assert!(again.jsonl.is_empty());
        assert_eq!(again.dropped, 0);
        assert_eq!(again.next, 3);

        // A new event shows up exactly once, at the next stable seq.
        t.record(0, "e", vec![kv("i", 9u64)], true);
        let more = t.export_stable_since(first.next);
        assert_eq!(more.dropped, 0);
        assert_eq!(more.next, 4);
        assert!(more.jsonl.starts_with("{\"seq\":3,"), "bad resume: {}", more.jsonl);

        // Full overrun: everything since the cursor evicted.
        for i in 0..10u64 {
            t.record(0, "x", vec![kv("i", i)], true);
        }
        let overrun = t.export_stable_since(more.next);
        assert_eq!(overrun.next, 14);
        assert_eq!(overrun.dropped, 6, "seqs 4..10 evicted, 10..14 buffered");
        assert_eq!(overrun.jsonl.lines().count(), 4);
    }

    #[test]
    fn incremental_cursor_stream_equals_one_shot_export() {
        let t = Tracer::new("inc");
        let mut streamed = String::new();
        let mut cursor = 0u64;
        for i in 0..20u64 {
            t.record(0, "e", vec![kv("i", i)], i % 3 != 0);
            if i % 5 == 0 {
                let chunk = t.export_stable_since(cursor);
                assert_eq!(chunk.dropped, 0);
                streamed.push_str(&chunk.jsonl);
                cursor = chunk.next;
            }
        }
        let tail = t.export_stable_since(cursor);
        streamed.push_str(&tail.jsonl);
        assert_eq!(streamed, t.export_stable(), "chunked reads must concatenate exactly");
    }

    #[test]
    fn span_ids_are_unique_nonzero() {
        let t = Tracer::new("s");
        let a = t.new_span_id();
        let b = t.new_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
