//! # ig-obs — dependency-light observability for the Instant GridFTP stack
//!
//! The paper's only empirical figure exists because "GridFTP servers that
//! choose to enable reporting" emit usage telemetry; real GridFTP also
//! streams in-band `111`/`112` markers mid-transfer. This crate is the
//! structured version of that story, hand-rolled like `ig-crypto` (no
//! `tracing`/`log` deps) so it can sit *below* every runtime crate:
//!
//! * [`trace::Tracer`] — spans + typed-field events into a lock-cheap
//!   ring buffer, JSONL export, and a *stable* export that is
//!   byte-identical across replays of a seeded chaos run;
//! * [`metrics::Registry`] — named counters, gauges, and log-linear
//!   (HDR-style) histograms with p50/p95/p99 snapshots;
//! * [`Obs`] — one hub bundling both, per component (`client`,
//!   `server`, …), with an `IG_TRACE=path` env-gated dump.
//!
//! ## Span taxonomy and event names
//!
//! Spans: `session` (control-channel lifetime), `transfer` (one
//! STOR/RETR/ERET), `stream` (one DTP data stream). Events use
//! dot-separated names: `chaos.fault`, `retry.attempt`, `cmd.dispatch`,
//! `gol.activate`, `link.open`… Metric names mirror the crate that owns
//! them: `server.cmd_rtt_ns`, `gsi.seal_ns`, `myproxy.logon_ns`,
//! `xio.retry_attempts`.

#![deny(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod process;
pub mod trace;

pub use json::{kv, Value};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{StableExport, TraceEvent, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// One observability hub: a tracer plus a metrics registry, labelled
/// with the component it observes. Cheap to share (`Arc`); every config
/// struct in the stack carries one.
#[derive(Debug)]
pub struct Obs {
    tracer: Tracer,
    metrics: Registry,
    enabled: AtomicBool,
}

impl Obs {
    /// Fresh hub for `component`.
    pub fn new(component: &str) -> Arc<Self> {
        Arc::new(Obs {
            tracer: Tracer::new(component),
            metrics: Registry::new(),
            enabled: AtomicBool::new(true),
        })
    }

    /// The process-wide default hub. Layers with no explicit hub (bare
    /// library calls in `ig-gsi`, `ig-myproxy`) record here.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<Obs>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Obs::new("global")))
    }

    /// Component label.
    pub fn component(&self) -> &str {
        self.tracer.component()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Disable event recording (metrics still run). Used by benches to
    /// measure registry-only overhead.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record a replay-stable event outside any span.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        if self.enabled.load(Ordering::Relaxed) {
            self.tracer.record(0, name, fields, true);
        }
    }

    /// Record a wall-clock-dependent event outside any span.
    pub fn event_unstable(&self, name: &str, fields: Vec<(String, Value)>) {
        if self.enabled.load(Ordering::Relaxed) {
            self.tracer.record(0, name, fields, false);
        }
    }

    /// Open a span: emits `span.start` and returns a guard that emits
    /// `span.end` when closed (explicitly or on drop).
    pub fn span(self: &Arc<Self>, name: &str, mut fields: Vec<(String, Value)>) -> Span {
        let id = self.tracer.new_span_id();
        fields.insert(0, kv("name", name));
        if self.enabled.load(Ordering::Relaxed) {
            self.tracer.record(id, "span.start", fields, true);
        }
        Span { obs: Arc::clone(self), id, name: name.to_string(), ended: false }
    }

    /// Buffered events with name `name`.
    pub fn count_events(&self, name: &str) -> usize {
        self.tracer.count_events(name)
    }

    /// Replay-stable JSONL export (see [`Tracer::export_stable`]).
    pub fn export_stable(&self) -> String {
        self.tracer.export_stable()
    }

    /// Full JSONL export including unstable events.
    pub fn export_full(&self) -> String {
        self.tracer.export_full()
    }

    /// Cursor-bounded stable export (see [`Tracer::export_stable_since`]):
    /// the incremental read the admin plane's `trace follow` stream and
    /// any other live consumer use instead of re-exporting the buffer.
    pub fn export_stable_since(&self, cursor: u64) -> trace::StableExport {
        self.tracer.export_stable_since(cursor)
    }

    /// If `IG_TRACE=path` is set in the environment, append the full
    /// JSONL trace to `path` (client and server hubs both call this on
    /// shutdown; appends interleave per-component blocks).
    pub fn dump_if_env(&self) {
        if let Ok(path) = std::env::var("IG_TRACE") {
            if path.is_empty() {
                return;
            }
            use std::io::Write as _;
            if let Ok(mut f) =
                std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = f.write_all(self.export_full().as_bytes());
            }
        }
    }
}

/// Live span handle; emits `span.end` exactly once.
#[derive(Debug)]
pub struct Span {
    obs: Arc<Obs>,
    id: u64,
    name: String,
    ended: bool,
}

impl Span {
    /// The span id (link events to it with [`Span::event`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record a replay-stable event inside this span.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        if self.obs.enabled.load(Ordering::Relaxed) {
            self.obs.tracer.record(self.id, name, fields, true);
        }
    }

    /// Record a wall-clock-dependent event inside this span.
    pub fn event_unstable(&self, name: &str, fields: Vec<(String, Value)>) {
        if self.obs.enabled.load(Ordering::Relaxed) {
            self.obs.tracer.record(self.id, name, fields, false);
        }
    }

    /// Close the span with extra fields on the `span.end` event.
    pub fn end_with(mut self, mut fields: Vec<(String, Value)>) {
        fields.insert(0, kv("name", self.name.as_str()));
        if self.obs.enabled.load(Ordering::Relaxed) {
            self.obs.tracer.record(self.id, "span.end", fields, true);
        }
        self.ended = true;
    }

    /// Close the span.
    pub fn end(self) {
        self.end_with(Vec::new());
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ended {
            let fields = vec![kv("name", self.name.as_str())];
            if self.obs.enabled.load(Ordering::Relaxed) {
                self.obs.tracer.record(self.id, "span.end", fields, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle() {
        let obs = Obs::new("t");
        let s = obs.span("transfer", vec![kv("path", "/f")]);
        let id = s.id();
        assert_ne!(id, 0);
        s.event("cmd.dispatch", vec![kv("verb", "STOR")]);
        s.end();
        let trace = obs.export_stable();
        assert_eq!(obs.count_events("span.start"), 1);
        assert_eq!(obs.count_events("span.end"), 1);
        assert!(trace.contains(&format!("\"span\":{id}")));
        assert!(trace.contains("\"verb\":\"STOR\""));
    }

    #[test]
    fn drop_ends_span_once() {
        let obs = Obs::new("t");
        {
            let _s = obs.span("session", vec![]);
        }
        assert_eq!(obs.count_events("span.end"), 1);
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let obs = Obs::new("t");
        obs.set_enabled(false);
        obs.event("e", vec![]);
        let _span = obs.span("s", vec![]);
        assert_eq!(obs.export_full(), "");
        // Metrics still work when events are off.
        obs.metrics().add("c", 1);
        assert_eq!(obs.metrics().counter_value("c"), 1);
    }

    #[test]
    fn global_is_shared() {
        let a = Obs::global();
        let b = Obs::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
