//! Process-level resource readings for capacity experiments.

/// Resident set size of this process in bytes (`/proc/self/statm`),
/// or `None` off Linux. Page size is read once from the kernel's
/// reported granularity (4096 on every platform this runs on; statm
/// reports pages).
pub fn resident_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(rss_pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    #[cfg(target_os = "linux")]
    #[test]
    fn resident_bytes_is_plausible() {
        let rss = super::resident_bytes().expect("linux has statm");
        // Any live Rust process is at least a few hundred KiB and
        // (in this workspace) well under 100 GiB.
        assert!(rss > 100 * 1024, "implausibly small RSS {rss}");
        assert!(rss < 100 * 1024 * 1024 * 1024, "implausibly large RSS {rss}");
    }
}
