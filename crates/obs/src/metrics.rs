//! Metrics registry: named counters, gauges, and log-linear histograms.
//!
//! The histogram is HDR-style log-linear: 32 linear sub-buckets per
//! power-of-two octave, giving a worst-case relative error of 1/32
//! (~3%) across the full `u64` range with a fixed 2 KiB-per-histogram
//! footprint and lock-free recording. Quantile snapshots (p50/p95/p99)
//! walk the bucket array; there is no per-sample allocation anywhere.
//!
//! Registry snapshots serialize into deterministic JSON (names sorted by
//! `BTreeMap` order) so `SITE STATS` replies are diffable across runs.

use crate::json::{escape_str_into, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

const SUB_BUCKETS: u64 = 32; // linear buckets per octave
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (stored as raw bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Atomically add `delta` (may be negative). Lets many threads keep
    /// a live count in one gauge — e.g. `server.sessions_active` with
    /// +1 on session start and -1 on drop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Map a sample to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (top - SUB_BITS + 1) as usize;
    let sub = ((v >> (top - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    octave * SUB_BUCKETS as usize + sub
}

/// Upper bound (inclusive) of the values mapped to bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    let sub = (idx as u64) & (SUB_BUCKETS - 1);
    let octave = (idx as u64) >> SUB_BITS;
    if octave == 0 {
        return sub;
    }
    let shift = (octave - 1) as u32;
    let low = (SUB_BUCKETS + sub) << shift;
    low + ((1u64 << shift) - 1)
}

/// Lock-free log-linear histogram with p50/p95/p99 snapshots.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        // Avoid a 15 KiB stack temporary: build the boxed array in place.
        let counts: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length fixed at BUCKETS"));
        Histogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// bucket containing the rank-`ceil(q*count)` sample. Within one
    /// log-linear bucket (~3%) of the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_high(idx).min(self.max());
            }
        }
        self.max()
    }

    /// The bucket index a value falls into — exposed so tests can check
    /// "within one bucket" against an exact oracle.
    pub fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }
}

/// Named metrics, get-or-create, deterministic snapshot order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().unwrap().entry(name.to_string()).or_default())
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().unwrap().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().unwrap().entry(name.to_string()).or_default())
    }

    /// Convenience: bump counter `name` by `n`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: set gauge `name`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Convenience: record `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().unwrap().get(name).map_or(0, |c| c.get())
    }

    /// Current value of gauge `name` (0.0 if absent).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauges.read().unwrap().get(name).map_or(0.0, |g| g.get())
    }

    /// Deterministically ordered JSON snapshot of every metric:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:
    /// {"count","sum","min","max","p50","p95","p99"}}}`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, c)) in self.counters.read().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str_into(&mut out, name);
            out.push(':');
            out.push_str(&c.get().to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in self.gauges.read().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str_into(&mut out, name);
            out.push(':');
            crate::json::value_into(&mut out, &Value::F64(g.get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.read().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str_into(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose range contains it, and
        // bucket indices are nondecreasing in the value.
        let mut prev = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at {v}");
            assert!(bucket_high(idx) >= v, "high({idx}) must cover {v}");
            prev = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_basics() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile(0.5);
        assert!((45..=55).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn registry_get_or_create_and_snapshot() {
        let r = Registry::new();
        r.add("b.count", 2);
        r.add("a.count", 1);
        r.set_gauge("g", 1.5);
        r.observe("h", 10);
        let snap = r.snapshot_json();
        // BTreeMap ordering: "a.count" before "b.count".
        let a = snap.find("a.count").unwrap();
        let b = snap.find("b.count").unwrap();
        assert!(a < b);
        assert!(snap.contains("\"g\":1.5"));
        assert!(snap.contains("\"count\":1"));
        assert_eq!(r.counter_value("a.count"), 1);
        assert_eq!(snap, r.snapshot_json(), "snapshot must be deterministic");
    }
}
