//! Auto-tuning: "Globus Online also has the ability to automatically
//! tune GridFTP transfer options for high performance" (§VI-A).
//!
//! The heuristic mirrors the published Globus Online behaviour in shape:
//! small files get no parallelism (stream setup dominates), mid-size
//! files get moderate parallelism, large files get aggressive
//! parallelism and bigger blocks.

use ig_client::TransferOpts;

/// Pick transfer options for a file of `size` bytes.
pub fn tune(size: u64) -> TransferOpts {
    let (parallelism, block) = match size {
        0..=1_048_575 => (1, 64 * 1024),                  // < 1 MiB
        1_048_576..=104_857_599 => (4, 256 * 1024),       // 1 MiB .. 100 MiB
        _ => (8, 1024 * 1024),                            // >= 100 MiB
    };
    TransferOpts::default().parallel(parallelism).block(block)
}

/// Concurrency (simultaneous files) for a batch of `files` files with
/// mean size `mean_size` — lots-of-small-files batches get concurrency
/// instead of per-file parallelism (the §II optimization split).
pub fn tune_concurrency(files: usize, mean_size: u64) -> usize {
    if files <= 1 {
        return 1;
    }
    if mean_size < 1_048_576 {
        files.min(8)
    } else {
        files.min(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_files_single_stream() {
        assert_eq!(tune(10_000).parallelism, 1);
        assert_eq!(tune(1_048_575).parallelism, 1);
    }

    #[test]
    fn medium_files_moderate() {
        assert_eq!(tune(1_048_576).parallelism, 4);
        assert_eq!(tune(50 << 20).parallelism, 4);
    }

    #[test]
    fn large_files_aggressive() {
        let opts = tune(1 << 30);
        assert_eq!(opts.parallelism, 8);
        assert_eq!(opts.block_size, 1024 * 1024);
    }

    #[test]
    fn concurrency_heuristic() {
        assert_eq!(tune_concurrency(1, 1000), 1);
        assert_eq!(tune_concurrency(100, 4096), 8);
        assert_eq!(tune_concurrency(3, 4096), 3);
        assert_eq!(tune_concurrency(100, 10 << 20), 4);
    }
}
