//! Auto-tuning: "Globus Online also has the ability to automatically
//! tune GridFTP transfer options for high performance" (§VI-A).
//!
//! The heuristic mirrors the published Globus Online behaviour in shape:
//! small files get no parallelism (stream setup dominates), mid-size
//! files get moderate parallelism, large files get aggressive
//! parallelism and bigger blocks.

use ig_client::TransferOpts;
use ig_netsim::CcAlgo;
use ig_xio::DataTransport;

/// Userspace-datagram CPU ceiling: one reliable-UDP flow pays per-packet
/// syscall + checksum costs that kernel TCP offloads, capping a single
/// flow around 2.5 Gbit/s regardless of path capacity. This is the lever
/// that keeps striped TCP the winner on clean LAN-class paths.
pub const UDP_RATE_CEILING_BPS: f64 = 2.5e9;

/// Streams assumed for the striped-TCP alternative (the tuner's
/// large-file default).
pub const STRIPED_STREAMS: usize = 8;

/// MSS assumed by the closed-form Reno model, matching
/// [`ig_netsim::TcpParams::tuned`].
const MODEL_MSS: f64 = 1460.0;

/// The transport the tuner picked for a path, with its prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportPlan {
    /// Selected data-channel driver.
    pub transport: DataTransport,
    /// Congestion controller to request.
    pub cc: CcAlgo,
    /// Parallel streams (1 for the single UDP flow).
    pub parallelism: usize,
    /// The model's goodput estimate for the chosen plan, bits/second.
    pub predicted_bps: f64,
}

/// The high-BDP crossover (the tentpole policy): striped Reno TCP versus
/// one BBR reliable-UDP flow, decided in closed form from the path.
///
/// Per Reno stream, the Mathis ceiling `(MSS·8/RTT)·√(3/2p)` bounds
/// goodput under random loss `p`; `N` stripes scale it until path
/// capacity. The BBR-UDP flow is loss-agnostic — it reaches path
/// capacity, but through the userspace datagram stack, so it is capped
/// by [`UDP_RATE_CEILING_BPS`]. Low BDP/clean paths → striped TCP wins
/// (no ceiling); high loss×RTT → the Mathis ceiling collapses striped
/// TCP and the UDP flow wins. Ties keep TCP (the legacy default).
pub fn pick_transport(bandwidth_bps: f64, rtt_s: f64, loss: f64) -> TransportPlan {
    let rtt = rtt_s.max(1e-6);
    let per_stream = if loss <= 0.0 {
        bandwidth_bps
    } else {
        (MODEL_MSS * 8.0 / rtt * (1.5 / loss).sqrt()).min(bandwidth_bps)
    };
    let striped = (per_stream * STRIPED_STREAMS as f64).min(bandwidth_bps);
    let udp = bandwidth_bps.min(UDP_RATE_CEILING_BPS);
    if udp > striped {
        TransportPlan {
            transport: DataTransport::Udp,
            cc: CcAlgo::Bbr,
            parallelism: 1,
            predicted_bps: udp,
        }
    } else {
        TransportPlan {
            transport: DataTransport::Tcp,
            cc: CcAlgo::Reno,
            parallelism: STRIPED_STREAMS,
            predicted_bps: striped,
        }
    }
}

/// [`tune`] with path awareness: size-based parallelism/block plus the
/// transport crossover. UDP plans override parallelism to 1 (a single
/// paced flow needs no stripes).
pub fn tune_for_path(size: u64, bandwidth_bps: f64, rtt_s: f64, loss: f64) -> TransferOpts {
    let opts = tune(size);
    let plan = pick_transport(bandwidth_bps, rtt_s, loss);
    match plan.transport {
        DataTransport::Tcp => opts,
        DataTransport::Udp => opts.parallel(plan.parallelism).udp().with_udp_cc(plan.cc),
    }
}

/// Pick transfer options for a file of `size` bytes.
pub fn tune(size: u64) -> TransferOpts {
    let (parallelism, block) = match size {
        0..=1_048_575 => (1, 64 * 1024),                  // < 1 MiB
        1_048_576..=104_857_599 => (4, 256 * 1024),       // 1 MiB .. 100 MiB
        _ => (8, 1024 * 1024),                            // >= 100 MiB
    };
    TransferOpts::default().parallel(parallelism).block(block)
}

/// Concurrency (simultaneous files) for a batch of `files` files with
/// mean size `mean_size` — lots-of-small-files batches get concurrency
/// instead of per-file parallelism (the §II optimization split).
pub fn tune_concurrency(files: usize, mean_size: u64) -> usize {
    if files <= 1 {
        return 1;
    }
    if mean_size < 1_048_576 {
        files.min(8)
    } else {
        files.min(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_files_single_stream() {
        assert_eq!(tune(10_000).parallelism, 1);
        assert_eq!(tune(1_048_575).parallelism, 1);
    }

    #[test]
    fn medium_files_moderate() {
        assert_eq!(tune(1_048_576).parallelism, 4);
        assert_eq!(tune(50 << 20).parallelism, 4);
    }

    #[test]
    fn large_files_aggressive() {
        let opts = tune(1 << 30);
        assert_eq!(opts.parallelism, 8);
        assert_eq!(opts.block_size, 1024 * 1024);
    }

    #[test]
    fn lan_corner_picks_striped_tcp() {
        // 10 Gbit/s, 0.2 ms, loss 1e-6: the Mathis ceiling is far above
        // capacity, so striped TCP saturates the path while UDP is stuck
        // at its CPU ceiling.
        let plan = pick_transport(1e10, 0.0002, 1e-6);
        assert_eq!(plan.transport, DataTransport::Tcp);
        assert_eq!(plan.parallelism, STRIPED_STREAMS);
        assert!(plan.predicted_bps > UDP_RATE_CEILING_BPS);
    }

    #[test]
    fn lossy_high_bdp_corner_picks_bbr_udp() {
        // 10 Gbit/s, 100 ms, loss 1e-3: eight Reno stripes manage tens
        // of Mbit/s; the single BBR-UDP flow holds 2.5 Gbit/s.
        let plan = pick_transport(1e10, 0.1, 1e-3);
        assert_eq!(plan.transport, DataTransport::Udp);
        assert_eq!(plan.cc, CcAlgo::Bbr);
        assert_eq!(plan.parallelism, 1);
        assert!(plan.predicted_bps >= 10.0 * pick_transport_striped_estimate(1e10, 0.1, 1e-3));
    }

    /// The striped estimate alone (mirrors the model inside
    /// `pick_transport`) so tests can assert margins.
    fn pick_transport_striped_estimate(bw: f64, rtt: f64, loss: f64) -> f64 {
        (1460.0 * 8.0 / rtt * (1.5 / loss).sqrt() * STRIPED_STREAMS as f64).min(bw)
    }

    #[test]
    fn crossover_is_monotone_in_loss() {
        // Sweeping loss upward on a fixed high-BDP path flips the plan
        // exactly once, TCP → UDP.
        let mut last_udp = false;
        for exp in 1..=7 {
            let loss = 10f64.powi(-(8 - exp)); // 1e-7 .. 1e-1
            let udp = pick_transport(1e10, 0.08, loss).transport == DataTransport::Udp;
            assert!(!(last_udp && !udp), "plan flipped back to TCP at loss {loss}");
            last_udp = udp;
        }
        assert!(last_udp, "high loss must end at the UDP plan");
    }

    #[test]
    fn zero_loss_is_tcp_at_any_bdp() {
        for rtt in [0.0001, 0.01, 0.2] {
            let plan = pick_transport(1e10, rtt, 0.0);
            assert_eq!(plan.transport, DataTransport::Tcp, "rtt {rtt}");
        }
    }

    #[test]
    fn model_direction_matches_netsim_on_both_corners() {
        // Cross-check the closed-form crossover against the packet-level
        // simulator: on each corner, the winner the model names must also
        // win in `ig_netsim` by a clear margin.
        use ig_netsim::{parallel_throughput_bps, Bottleneck, TcpParams};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let bytes = 32u64 << 20;
        for (bw, rtt, loss) in [(1e10, 0.0002, 1e-6), (1e10, 0.1, 1e-3)] {
            let plan = pick_transport(bw, rtt, loss);
            let link = Bottleneck::new(bw, rtt, loss);
            let mut r1 = StdRng::seed_from_u64(0x90);
            let mut r2 = StdRng::seed_from_u64(0x90);
            let striped = parallel_throughput_bps(
                &link,
                bytes,
                STRIPED_STREAMS,
                TcpParams::tuned(),
                &mut r1,
            );
            // The UDP flow: one BBR stream, capped at the CPU ceiling.
            let bbr = parallel_throughput_bps(
                &link,
                bytes,
                1,
                TcpParams::tuned()
                    .with_cc(CcAlgo::Bbr)
                    .with_rate_cap(UDP_RATE_CEILING_BPS),
                &mut r2,
            );
            match plan.transport {
                DataTransport::Tcp => assert!(
                    striped > bbr,
                    "model picked TCP but sim says striped {striped:.2e} <= bbr {bbr:.2e} \
                     (bw {bw:.0e}, rtt {rtt}, loss {loss})"
                ),
                DataTransport::Udp => assert!(
                    bbr > 2.0 * striped,
                    "model picked UDP but sim margin is thin: bbr {bbr:.2e} vs striped \
                     {striped:.2e} (bw {bw:.0e}, rtt {rtt}, loss {loss})"
                ),
            }
        }
    }

    #[test]
    fn tune_for_path_applies_the_plan() {
        let lan = tune_for_path(1 << 30, 1e10, 0.0002, 1e-6);
        assert_eq!(lan.transport, DataTransport::Tcp);
        assert_eq!(lan.parallelism, 8);
        let wan = tune_for_path(1 << 30, 1e10, 0.1, 1e-3);
        assert_eq!(wan.transport, DataTransport::Udp);
        assert_eq!(wan.udp_cc, CcAlgo::Bbr);
        assert_eq!(wan.parallelism, 1);
    }

    #[test]
    fn concurrency_heuristic() {
        assert_eq!(tune_concurrency(1, 1000), 1);
        assert_eq!(tune_concurrency(100, 4096), 8);
        assert_eq!(tune_concurrency(3, 4096), 3);
        assert_eq!(tune_concurrency(100, 10 << 20), 4);
    }
}
