//! Fleet usage synthesis — regenerating Fig 1.
//!
//! Fig 1 plots aggregate usage reported by the worldwide server fleet:
//! "deployed on more than 5,000 servers worldwide and ... responsible for
//! an average of more than 10 million transfers totaling approximately
//! half a petabyte of data every day". We synthesize a reporting fleet
//! whose steady state matches those anchors, with organic growth and a
//! heavy-tailed per-transfer size distribution (most transfers are small
//! files; most bytes ride in large ones — the §II "huge file vs lots of
//! small files" split).

use ig_server::usage::{TransferRecord, UsageBucket, UsageReporter};
use rand::Rng;
use std::sync::Arc;

/// Fleet parameters; defaults hit the paper's anchors.
#[derive(Debug, Clone, Copy)]
pub struct FleetParams {
    /// Reporting servers at the end of the window.
    pub servers: usize,
    /// Days simulated.
    pub days: u32,
    /// Mean transfers per server per day *at steady state*.
    pub transfers_per_server_day: f64,
    /// Fraction of transfers that are "large" (multi-GB) files.
    pub large_fraction: f64,
    /// Growth: fleet fraction active on day 0 (linear ramp to 1.0).
    pub initial_activity: f64,
}

impl Default for FleetParams {
    fn default() -> Self {
        // 5,000 servers * 2,000 transfers/server/day = 10M transfers/day.
        FleetParams {
            servers: 5_000,
            days: 364,
            transfers_per_server_day: 2_000.0,
            large_fraction: 0.02,
            initial_activity: 0.4,
        }
    }
}

/// Synthesize the fleet's aggregate daily usage.
///
/// Returns daily buckets. For tractability each *server-day* contributes
/// one aggregate record (transfers counted in the bucket math separately
/// would need 10M records/day); the per-day totals are what Fig 1 plots.
pub fn synthesize_fleet<R: Rng + ?Sized>(rng: &mut R, params: &FleetParams) -> Vec<UsageBucket> {
    const DAY: u64 = 86_400;
    let mut buckets = Vec::with_capacity(params.days as usize);
    for day in 0..params.days {
        // Linear fleet ramp plus weekly rhythm (weekend dip) plus noise.
        let ramp = params.initial_activity
            + (1.0 - params.initial_activity) * (day as f64 / params.days.max(1) as f64);
        let weekday = day % 7;
        let weekly = if weekday >= 5 { 0.75 } else { 1.0 };
        let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.2;
        let activity = ramp * weekly * noise;
        let transfers =
            (params.servers as f64 * params.transfers_per_server_day * activity) as u64;
        // Bytes: small transfers ~20 MB mean; large ~1.5 GB mean. At the
        // default mix this lands near the paper's ~0.5 PB/day.
        let small = transfers as f64 * (1.0 - params.large_fraction);
        let large = transfers as f64 * params.large_fraction;
        let bytes = (small * 20e6 + large * 1.5e9) as u64;
        buckets.push(UsageBucket { start: day as u64 * DAY, transfers, bytes });
    }
    buckets
}

/// Steady-state means over the last `window` buckets (the "average of
/// more than 10 million transfers ... half a petabyte ... every day").
pub fn steady_state(buckets: &[UsageBucket], window: usize) -> (f64, f64) {
    let tail = &buckets[buckets.len().saturating_sub(window)..];
    let n = tail.len().max(1) as f64;
    let transfers = tail.iter().map(|b| b.transfers as f64).sum::<f64>() / n;
    let bytes = tail.iter().map(|b| b.bytes as f64).sum::<f64>() / n;
    (transfers, bytes)
}

/// Exercise the real reporting plumbing: spin up `servers` in-memory
/// [`UsageReporter`]s, fan synthetic records into them, and roll them up
/// into a central reporter (what the Globus listener does).
pub fn rollup_fleet<R: Rng + ?Sized>(
    rng: &mut R,
    servers: usize,
    records_per_server: usize,
) -> Arc<UsageReporter> {
    let hub = UsageReporter::new();
    for s in 0..servers {
        let server = UsageReporter::new();
        for i in 0..records_per_server {
            server.record(TransferRecord {
                timestamp: (s * records_per_server + i) as u64,
                bytes: rng.gen_range(1_000..100_000_000),
                user: format!("user{}", rng.gen_range(0..50)),
                inbound: rng.gen_bool(0.5),
                streams: *[1u32, 2, 4, 8].iter().nth(rng.gen_range(0..4)).expect("4 options"),
            });
        }
        hub.absorb(&server);
    }
    hub
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fleet_hits_paper_anchors() {
        let mut rng = StdRng::seed_from_u64(1);
        let buckets = synthesize_fleet(&mut rng, &FleetParams::default());
        assert_eq!(buckets.len(), 364);
        let (transfers_day, bytes_day) = steady_state(&buckets, 28);
        // ">10 million transfers" and "~half a petabyte" per day.
        assert!(transfers_day > 7.0e6, "got {transfers_day:.2e} transfers/day");
        assert!(transfers_day < 2.0e7);
        assert!(bytes_day > 2.5e14, "got {bytes_day:.2e} bytes/day");
        assert!(bytes_day < 1.0e15);
    }

    #[test]
    fn usage_grows_over_the_window() {
        let mut rng = StdRng::seed_from_u64(2);
        let buckets = synthesize_fleet(&mut rng, &FleetParams::default());
        let early: f64 = buckets[..28].iter().map(|b| b.transfers as f64).sum();
        let late: f64 = buckets[buckets.len() - 28..].iter().map(|b| b.transfers as f64).sum();
        assert!(late > 1.5 * early, "growth: early {early:.2e} late {late:.2e}");
    }

    #[test]
    fn weekend_dip_visible() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = FleetParams { days: 14, initial_activity: 1.0, ..Default::default() };
        let buckets = synthesize_fleet(&mut rng, &params);
        let weekday_mean: f64 = (0..5).map(|d| buckets[d].transfers as f64).sum::<f64>() / 5.0;
        let weekend_mean: f64 = (5..7).map(|d| buckets[d].transfers as f64).sum::<f64>() / 2.0;
        assert!(weekend_mean < weekday_mean);
    }

    #[test]
    fn rollup_aggregates_all_servers() {
        let mut rng = StdRng::seed_from_u64(4);
        let hub = rollup_fleet(&mut rng, 20, 50);
        assert_eq!(hub.total_transfers(), 1000);
        assert!(hub.total_bytes() > 0);
        let daily = hub.aggregate(100);
        assert!(!daily.is_empty());
    }
}
