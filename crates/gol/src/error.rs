//! Globus Online error taxonomy.

use std::fmt;

/// Errors from the hosted-transfer service.
#[derive(Debug)]
pub enum GolError {
    /// No such registered endpoint.
    UnknownEndpoint(String),
    /// The user has not activated this endpoint.
    NotActivated { user: String, endpoint: String },
    /// Activation failed (bad password, myproxy refusal, oauth failure).
    ActivationFailed(String),
    /// A transfer exhausted its retries.
    TransferFailed { attempts: u32, last_error: String },
    /// The stored short-term credential expired and no reactivation
    /// hook is registered for this (user, endpoint).
    CredentialExpired { user: String, endpoint: String },
    /// Neither endpoint accepts DCSC and their CAs differ.
    NoCommonSecurity(String),
    /// Client-layer failure.
    Client(ig_client::ClientError),
    /// GCMU/OAuth failure.
    Gcmu(ig_gcmu::GcmuError),
    /// MyProxy failure.
    MyProxy(ig_myproxy::MyProxyError),
}

impl fmt::Display for GolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GolError::UnknownEndpoint(e) => write!(f, "unknown endpoint {e:?}"),
            GolError::NotActivated { user, endpoint } => {
                write!(f, "user {user} has not activated endpoint {endpoint}")
            }
            GolError::ActivationFailed(m) => write!(f, "activation failed: {m}"),
            GolError::TransferFailed { attempts, last_error } => {
                write!(f, "transfer failed after {attempts} attempts: {last_error}")
            }
            GolError::CredentialExpired { user, endpoint } => {
                write!(f, "credential for {user} at {endpoint} expired and cannot reactivate")
            }
            GolError::NoCommonSecurity(m) => write!(f, "no common data-channel security: {m}"),
            GolError::Client(e) => write!(f, "client: {e}"),
            GolError::Gcmu(e) => write!(f, "gcmu: {e}"),
            GolError::MyProxy(e) => write!(f, "myproxy: {e}"),
        }
    }
}

impl std::error::Error for GolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GolError::Client(e) => Some(e),
            GolError::Gcmu(e) => Some(e),
            GolError::MyProxy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_client::ClientError> for GolError {
    fn from(e: ig_client::ClientError) -> Self {
        GolError::Client(e)
    }
}

impl From<ig_gcmu::GcmuError> for GolError {
    fn from(e: ig_gcmu::GcmuError) -> Self {
        GolError::Gcmu(e)
    }
}

impl From<ig_myproxy::MyProxyError> for GolError {
    fn from(e: ig_myproxy::MyProxyError) -> Self {
        GolError::MyProxy(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, GolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = GolError::NotActivated { user: "u".into(), endpoint: "e".into() };
        assert!(e.to_string().contains("not activated"));
        let e = GolError::TransferFailed { attempts: 3, last_error: "boom".into() };
        assert!(e.to_string().contains("3 attempts"));
    }
}
