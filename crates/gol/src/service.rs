//! The hosted transfer service.

use crate::activation::{Activation, PasswordAudit};
use crate::error::{GolError, Result};
use crate::tuning::tune;
use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_gcmu::{GcmuEndpoint, OAuthServer};
use ig_obs::kv;
use ig_pki::time::Clock;
use ig_pki::{Credential, DistinguishedName, TrustStore};
use ig_protocol::{ByteRanges, HostPort};
use ig_server::Dsi;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered endpoint's coordinates.
#[derive(Clone)]
pub struct RegisteredEndpoint {
    /// Endpoint name.
    pub name: String,
    /// GridFTP control address.
    pub gridftp: HostPort,
    /// MyProxy address.
    pub myproxy: HostPort,
    /// OAuth server handle, when the endpoint runs one.
    pub oauth: Option<Arc<OAuthServer>>,
    /// The endpoint clock (simulated deployments share it).
    pub clock: Clock,
    /// Storage handle (for bookkeeping like file sizes in tuning).
    pub dsi: Option<Arc<dyn Dsi>>,
    /// The endpoint CA's root certificate (published at registration).
    pub ca_root: Option<ig_pki::Certificate>,
    /// Signing policy for that root.
    pub signing_policy: Option<ig_pki::SigningPolicy>,
}

/// One transfer request.
#[derive(Debug, Clone)]
pub struct TransferRequest {
    /// Source endpoint name.
    pub src_endpoint: String,
    /// Source path.
    pub src_path: String,
    /// Destination endpoint name.
    pub dst_endpoint: String,
    /// Destination path.
    pub dst_path: String,
    /// Retries after mid-transfer failures (Fig 6 recovery). Ignored
    /// when `retry` is set.
    pub max_retries: u32,
    /// Full retry/backoff/deadline policy; `None` maps `max_retries`
    /// to immediate retries (the legacy behaviour).
    pub retry: Option<RetryPolicy>,
    /// Override auto-tuning.
    pub opts: Option<TransferOpts>,
}

impl TransferRequest {
    /// The policy in force for this request.
    fn effective_policy(&self) -> RetryPolicy {
        match &self.retry {
            Some(p) => p.clone(),
            None => RetryPolicy::immediate(self.max_retries.saturating_add(1)),
        }
    }
}

/// A re-activation hook: mints a fresh short-term credential when the
/// stored one for its (user, endpoint) expires mid-request — the piece
/// of Fig 6 that makes "reauthenticate ... and restart from the last
/// checkpoint" work past the certificate lifetime.
pub type Reactivator = Arc<dyn Fn() -> Result<Activation> + Send + Sync>;

/// The outcome of a managed transfer.
#[derive(Debug)]
pub struct TransferResult {
    /// Attempts made (1 = no faults).
    pub attempts: u32,
    /// Bytes that crossed the wire, summed over attempts.
    pub bytes_on_wire: u64,
    /// Final checkpoint (complete file on success).
    pub checkpoint: ByteRanges,
    /// Did it complete?
    pub completed: bool,
}

/// The Globus Online service instance.
pub struct GlobusOnline {
    endpoints: RwLock<HashMap<String, RegisteredEndpoint>>,
    activations: RwLock<HashMap<(String, String), Activation>>,
    reactivators: RwLock<HashMap<(String, String), Reactivator>>,
    /// Short-term-credential cache in front of the endpoints' MyProxy
    /// CAs, keyed by `(endpoint/site-user, lifetime-bucket)`: activation
    /// storms coalesce onto a single `myproxy-logon` per key.
    cred_cache: ig_myproxy::CredCache<Activation, GolError>,
    /// Event log (human-readable; the "highly monitored" bit of §VI-A).
    pub events: Mutex<Vec<String>>,
    /// Structured observability hub: every `events` entry has a typed
    /// counterpart here (`gol.activate`, `gol.reactivate`, `gol.submit`).
    pub obs: Arc<ig_obs::Obs>,
    clock: Clock,
    seed: AtomicU64,
}

impl GlobusOnline {
    /// A fresh service.
    pub fn new(clock: Clock, seed: u64) -> Self {
        GlobusOnline {
            endpoints: RwLock::new(HashMap::new()),
            activations: RwLock::new(HashMap::new()),
            reactivators: RwLock::new(HashMap::new()),
            cred_cache: ig_myproxy::CredCache::new(),
            events: Mutex::new(Vec::new()),
            obs: ig_obs::Obs::global(),
            clock,
            seed: AtomicU64::new(seed),
        }
    }

    /// Builder: a private observability hub.
    pub fn with_obs(mut self, obs: Arc<ig_obs::Obs>) -> Self {
        // The (empty) credential cache reports into the same hub.
        self.cred_cache = ig_myproxy::CredCache::with_obs(Arc::clone(&obs));
        self.obs = obs;
        self
    }

    fn log(&self, msg: String) {
        self.events.lock().push(msg);
    }

    fn next_seed(&self) -> u64 {
        self.seed.fetch_add(1, Ordering::SeqCst)
    }

    /// Register a GCMU endpoint ("GCMU has an option in the installation
    /// to make the server available as an endpoint on Globus Online").
    pub fn register_gcmu(&self, ep: &GcmuEndpoint) {
        self.endpoints.write().insert(
            ep.name.clone(),
            RegisteredEndpoint {
                name: ep.name.clone(),
                gridftp: ep.gridftp_addr(),
                myproxy: ep.myproxy_addr(),
                oauth: ep.oauth.clone(),
                clock: ep.clock,
                dsi: Some(Arc::clone(&ep.dsi)),
                ca_root: Some(ep.ca.root_cert()),
                signing_policy: Some(ep.ca.signing_policy()),
            },
        );
        self.log(format!("endpoint {} registered", ep.name));
    }

    /// Register a non-GCMU endpoint by raw coordinates.
    pub fn register_raw(&self, reg: RegisteredEndpoint) {
        self.endpoints.write().insert(reg.name.clone(), reg);
    }

    fn endpoint(&self, name: &str) -> Result<RegisteredEndpoint> {
        self.endpoints
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| GolError::UnknownEndpoint(name.to_string()))
    }

    /// Password activation (Fig 6): the user gives GO their site
    /// username/password; GO runs `myproxy-logon` against the endpoint
    /// and keeps only the short-term credential.
    pub fn activate_with_password(
        &self,
        go_user: &str,
        endpoint: &str,
        username: &str,
        password: &str,
        lifetime: u64,
    ) -> Result<PasswordAudit> {
        let ep = self.endpoint(endpoint)?;
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        let logon = ig_myproxy::myproxy_logon(
            ep.myproxy,
            username,
            password,
            lifetime,
            TrustStore::new(),
            true,
            ep.clock,
            512,
            &mut rng,
        )
        .map_err(|e| GolError::ActivationFailed(e.to_string()))?;
        let audit = PasswordAudit::password_flow();
        let activation = Activation::from_logon(&logon, audit.clone(), self.clock.now());
        self.activations
            .write()
            .insert((go_user.to_string(), endpoint.to_string()), activation);
        self.obs.event(
            "gol.activate",
            vec![kv("user", go_user), kv("endpoint", endpoint), kv("method", "password")],
        );
        self.obs.metrics().add("gol.activations", 1);
        self.log(format!("{go_user} activated {endpoint} via password"));
        Ok(audit)
    }

    /// [`Self::activate_with_password`] behind the short-term-credential
    /// cache: concurrent activations for the same
    /// `(endpoint, site-user, lifetime-bucket)` coalesce onto a single
    /// `myproxy-logon`, and a still-valid cached credential is reused
    /// without touching the CA at all. Each caller's `(go_user,
    /// endpoint)` activation record is refreshed either way, so the
    /// transfer path sees no difference from the uncached flow.
    pub fn activate_with_password_cached(
        &self,
        go_user: &str,
        endpoint: &str,
        username: &str,
        password: &str,
        lifetime: u64,
    ) -> Result<Activation> {
        let now = self.clock.now();
        let subject = format!("{endpoint}/{username}");
        let (out, _) = self.cred_cache.get_or_issue(&subject, lifetime, now, || {
            self.activate_with_password(go_user, endpoint, username, password, lifetime)?;
            let act = self.activation(go_user, endpoint)?;
            let expires_at = now + act.remaining(now);
            Ok((act, expires_at))
        });
        let act = out.map_err(|e| match e {
            ig_myproxy::CredCacheError::Issue(arc) => {
                GolError::ActivationFailed(arc.to_string())
            }
            other => GolError::ActivationFailed(other.to_string()),
        })?;
        // Hits and coalesced waits still need this caller's activation
        // record installed (the leader only installed its own).
        self.activations
            .write()
            .insert((go_user.to_string(), endpoint.to_string()), act.clone());
        Ok(act)
    }

    /// OAuth activation (Fig 7): the caller supplies the authorization
    /// code obtained on the endpoint's own login page; GO exchanges it.
    /// The password never transits GO.
    pub fn activate_with_oauth(
        &self,
        go_user: &str,
        endpoint: &str,
        code: &str,
        lifetime: u64,
    ) -> Result<PasswordAudit> {
        let ep = self.endpoint(endpoint)?;
        let oauth = ep
            .oauth
            .as_ref()
            .ok_or_else(|| GolError::ActivationFailed(format!("{endpoint} runs no OAuth server")))?;
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        // GO generates the key and CSR; it ends up holding the credential.
        let keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512)
            .map_err(|e| GolError::ActivationFailed(e.to_string()))?;
        let csr = ig_pki::CertificateSigningRequest::create(
            DistinguishedName::from_pairs([("CN", go_user)]),
            &keys.private,
        )
        .map_err(|e| GolError::ActivationFailed(e.to_string()))?;
        let cert = oauth
            .exchange(code, "globus-online", &csr, lifetime)
            .map_err(|e| GolError::ActivationFailed(e.to_string()))?;
        // Trust roots come from the registration record.
        let root = ep.ca_root.clone().ok_or_else(|| {
            GolError::ActivationFailed(format!("{endpoint} registration lacks a CA root"))
        })?;
        let policy = ep.signing_policy.clone().unwrap_or_else(ig_pki::SigningPolicy::allow_all);
        let credential = Credential::new(vec![cert, root.clone()], keys.private)
            .map_err(|e| GolError::ActivationFailed(e.to_string()))?;
        let activation = Activation::from_oauth(credential, root, policy, self.clock.now());
        let audit = activation.audit.clone();
        self.activations
            .write()
            .insert((go_user.to_string(), endpoint.to_string()), activation);
        self.obs.event(
            "gol.activate",
            vec![kv("user", go_user), kv("endpoint", endpoint), kv("method", "oauth")],
        );
        self.obs.metrics().add("gol.activations", 1);
        self.log(format!("{go_user} activated {endpoint} via OAuth"));
        Ok(audit)
    }

    /// The stored activation for (user, endpoint).
    pub fn activation(&self, go_user: &str, endpoint: &str) -> Result<Activation> {
        self.activations
            .read()
            .get(&(go_user.to_string(), endpoint.to_string()))
            .cloned()
            .ok_or_else(|| GolError::NotActivated {
                user: go_user.to_string(),
                endpoint: endpoint.to_string(),
            })
    }

    /// Register a hook that re-activates (user, endpoint) when the
    /// stored short-term credential expires mid-request.
    pub fn set_reactivator(&self, go_user: &str, endpoint: &str, hook: Reactivator) {
        self.reactivators
            .write()
            .insert((go_user.to_string(), endpoint.to_string()), hook);
    }

    /// The activation for (user, endpoint), reactivated first if its
    /// credential has no lifetime left on GO's clock.
    fn active_credentials(&self, go_user: &str, endpoint: &str) -> Result<Activation> {
        let act = self.activation(go_user, endpoint)?;
        if act.remaining(self.clock.now()) > 0 {
            return Ok(act);
        }
        let key = (go_user.to_string(), endpoint.to_string());
        let Some(react) = self.reactivators.read().get(&key).cloned() else {
            return Err(GolError::CredentialExpired {
                user: go_user.to_string(),
                endpoint: endpoint.to_string(),
            });
        };
        let fresh = react()?;
        self.activations.write().insert(key, fresh.clone());
        self.obs
            .event("gol.reactivate", vec![kv("user", go_user), kv("endpoint", endpoint)]);
        self.obs.metrics().add("gol.reactivations", 1);
        self.log(format!("{go_user}: reactivated {endpoint} (credential expired)"));
        Ok(fresh)
    }

    fn open_session(
        &self,
        ep: &RegisteredEndpoint,
        act: &Activation,
        attempt_timeout: Option<std::time::Duration>,
    ) -> Result<ClientSession> {
        let cfg = ClientConfig::new(act.credential.clone(), act.trust.clone())
            .with_clock(ep.clock)
            .with_seed(self.next_seed())
            .with_retry(RetryPolicy::once().with_attempt_timeout(attempt_timeout));
        let mut session = ClientSession::connect(ep.gridftp, cfg)?;
        session.login()?;
        Ok(session)
    }

    /// Run a managed third-party transfer with checkpoint restart.
    ///
    /// The §V/§VIII security arrangement is automatic: GO holds a
    /// *different* credential per endpoint (each minted by that site's
    /// online CA), so it installs the source-side credential as the
    /// destination's DCSC context — "use DCSC to pass credential A to
    /// site B, for subsequent presentation to site A".
    pub fn submit(&self, go_user: &str, req: &TransferRequest) -> Result<TransferResult> {
        let src_ep = self.endpoint(&req.src_endpoint)?;
        let dst_ep = self.endpoint(&req.dst_endpoint)?;
        let policy = req.effective_policy();
        let start = std::time::Instant::now();
        let mut checkpoint: Option<ByteRanges> = None;
        let mut bytes_on_wire = 0u64;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.obs.event(
                "gol.submit",
                vec![
                    kv("user", go_user),
                    kv("src", req.src_endpoint.as_str()),
                    kv("dst", req.dst_endpoint.as_str()),
                    kv("attempt", attempts),
                ],
            );
            self.obs.metrics().add("gol.submit_attempts", 1);
            // Fig 6: (re-)authenticate with the stored short-term creds,
            // minting fresh ones first if they expired mid-request.
            let src_act = self.active_credentials(go_user, &req.src_endpoint)?;
            let dst_act = self.active_credentials(go_user, &req.dst_endpoint)?;
            let mut src = self.open_session(&src_ep, &src_act, policy.attempt_timeout)?;
            let mut dst = self.open_session(&dst_ep, &dst_act, policy.attempt_timeout)?;
            // Auto-tune from the source file size.
            let opts = match &req.opts {
                Some(o) => o.clone(),
                None => tune(src.size(&req.src_path)?),
            };
            // Cross-CA data channels need DCSC on the receiving side.
            let same_identity = src_act.credential.identity() == dst_act.credential.identity();
            if !same_identity {
                dst.install_dcsc(&src_act.credential)?;
            }
            let before = checkpoint.clone().map(|c| c.total()).unwrap_or(0);
            let outcome = transfer::third_party(
                &mut src,
                &req.src_path,
                &mut dst,
                &req.dst_path,
                &opts,
                checkpoint.as_ref(),
            )?;
            bytes_on_wire += outcome.checkpoint.total().saturating_sub(before);
            let _ = src.quit();
            let _ = dst.quit();
            if outcome.is_success() {
                self.obs.metrics().add("gol.transfers_ok", 1);
                self.obs.metrics().add("gol.bytes_on_wire", bytes_on_wire);
                self.log(format!(
                    "{go_user}: {}:{} -> {}:{} complete after {attempts} attempt(s)",
                    req.src_endpoint, req.src_path, req.dst_endpoint, req.dst_path
                ));
                return Ok(TransferResult {
                    attempts,
                    bytes_on_wire,
                    checkpoint: outcome.checkpoint,
                    completed: true,
                });
            }
            let last_error = format!(
                "src: {} / dst: {}",
                outcome.src_reply, outcome.dst_reply
            );
            self.log(format!(
                "{go_user}: attempt {attempts} failed ({last_error}); checkpoint {} bytes",
                outcome.checkpoint.total()
            ));
            checkpoint = Some(outcome.checkpoint);
            if attempts >= policy.max_attempts {
                self.obs.metrics().add("gol.transfers_failed", 1);
                return Err(GolError::TransferFailed { attempts, last_error });
            }
            // Seeded backoff; never sleep past the overall deadline.
            let backoff = policy.backoff(attempts);
            if let Some(deadline) = policy.overall_deadline {
                if start.elapsed() + backoff >= deadline {
                    return Err(GolError::TransferFailed {
                        attempts,
                        last_error: format!("overall deadline exceeded; last: {last_error}"),
                    });
                }
            }
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }
}
