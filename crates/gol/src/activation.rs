//! Endpoint activation records and the password-exposure audit.

use ig_myproxy::client::LogonOutput;
use ig_pki::{Credential, SigningPolicy, TrustStore};

/// Which principals observed the user's password during an activation —
/// the E10 metric. Under password activation the paper notes the
//  "security concerns associated with passing the username/password
//  through a third-party site" (§VI-B); under OAuth the third party
/// never sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordAudit {
    /// Principals (besides the user) that handled the plaintext password.
    pub seen_by: Vec<&'static str>,
    /// Did the hosted service persist the password? (Never — §VI-B:
    /// "Globus Online does not store the password.")
    pub stored_by_service: bool,
}

impl PasswordAudit {
    /// Password flow: the user types the password into GO, which relays
    /// it to the endpoint.
    pub fn password_flow() -> Self {
        PasswordAudit { seen_by: vec!["globus-online", "endpoint"], stored_by_service: false }
    }

    /// OAuth flow: the password goes straight to the endpoint's page.
    pub fn oauth_flow() -> Self {
        PasswordAudit { seen_by: vec!["endpoint"], stored_by_service: false }
    }

    /// Did the third-party service handle the password?
    pub fn third_party_saw_password(&self) -> bool {
        self.seen_by.contains(&"globus-online")
    }
}

/// One (user, endpoint) activation: the retained short-term credential.
#[derive(Clone)]
pub struct Activation {
    /// The short-lived credential GO holds on the user's behalf.
    pub credential: Credential,
    /// Trust roots for the endpoint.
    pub trust: TrustStore,
    /// How the activation happened.
    pub audit: PasswordAudit,
    /// UNIX seconds of activation.
    pub activated_at: u64,
}

impl Activation {
    /// Build from a myproxy logon.
    pub fn from_logon(logon: &LogonOutput, audit: PasswordAudit, now: u64) -> Self {
        let mut trust = TrustStore::new();
        for root in &logon.trust_roots {
            trust.add_root_with_policy(root.clone(), logon.signing_policy.clone());
        }
        Activation { credential: logon.credential.clone(), trust, audit, activated_at: now }
    }

    /// Build from an OAuth-issued certificate.
    pub fn from_oauth(
        credential: Credential,
        root: ig_pki::Certificate,
        policy: SigningPolicy,
        now: u64,
    ) -> Self {
        let mut trust = TrustStore::new();
        trust.add_root_with_policy(root, policy);
        Activation { credential, trust, audit: PasswordAudit::oauth_flow(), activated_at: now }
    }

    /// Seconds of credential lifetime left at `now`.
    pub fn remaining(&self, now: u64) -> u64 {
        self.credential.remaining_lifetime(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audits_differ_between_flows() {
        let pw = PasswordAudit::password_flow();
        let oauth = PasswordAudit::oauth_flow();
        assert!(pw.third_party_saw_password());
        assert!(!oauth.third_party_saw_password());
        assert!(!pw.stored_by_service);
        assert!(!oauth.stored_by_service);
        assert!(oauth.seen_by.len() < pw.seen_by.len());
    }
}
