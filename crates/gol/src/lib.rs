//! # ig-gol — Globus Online, simulated
//!
//! §VI: "Globus Online is a software-as-a-service (SaaS) client for
//! GridFTP ... a third-party mediator/facilitator of file transfers
//! between GridFTP servers." This crate reproduces the behaviours the
//! paper describes:
//!
//! * **endpoint registry + activation** ([`service`], [`activation`]):
//!   password activation runs `myproxy-logon` on the user's behalf
//!   ("Globus Online does not store the password" — only the short-term
//!   certificate is retained), OAuth activation never sees the password
//!   at all (Fig 7);
//! * **managed third-party transfers** with automatic `DCSC`
//!   orchestration — §VIII: cross-CA operation "is particularly
//!   important when GCMU is used via Globus Online, since all the
//!   transfers done by Globus Online are third-party";
//! * **fault recovery** (Fig 6): on failure GO re-authenticates with the
//!   stored short-term credential and restarts from the last `111`
//!   checkpoint;
//! * **auto-tuning** ([`tuning`]): "Globus Online also has the ability
//!   to automatically tune GridFTP transfer options";
//! * **fleet usage synthesis** ([`usage`]): the Fig 1 time series
//!   (servers reporting transfers/day and bytes/day).

pub mod activation;
pub mod error;
pub mod sched;
pub mod service;
pub mod tuning;
pub mod usage;

pub use activation::{Activation, PasswordAudit};
pub use error::GolError;
pub use ig_client::RetryPolicy;
pub use sched::{FairScheduler, Grant, SchedReject, TenantShare};
pub use service::{GlobusOnline, Reactivator, TransferRequest, TransferResult};
pub use tuning::tune;
