//! Fair-share transfer-job scheduler for the hosted service.
//!
//! At fleet scale (§VI run as SaaS for thousands of GCMU endpoints) the
//! hosted service cannot dispatch jobs FIFO: one bulk-ingest tenant
//! would starve everyone else, and an unbounded submit queue would turn
//! overload into memory growth and unbounded latency. This scheduler
//! gives each tenant:
//!
//! * a **weighted share** of dispatch slots — stride scheduling over a
//!   virtual clock, so long-run grant ratios converge to the configured
//!   weights and no backlogged tenant ever starves;
//! * an optional **dispatch rate limit** — a token bucket consulted at
//!   grant time, so a tenant's jobs never exceed its contracted rate no
//!   matter its weight;
//! * a **bounded submit queue** — when full, [`FairScheduler::submit`]
//!   returns a typed [`SchedReject`] immediately (and bumps the
//!   `gol.sched.rejects` counter) instead of blocking.
//!
//! Nothing here waits: `submit` and `dispatch` are lock-then-return, so
//! the scheduler can sit on the control-plane hot path. Time is passed
//! in by the caller (simulated seconds in E15, wall seconds in a real
//! deployment), which keeps every schedule replayable under a seed.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Stride-scheduling constant: per-grant pass increment is
/// `STRIDE1 / weight`, so higher weight ⇒ smaller stride ⇒ more grants.
const STRIDE1: u128 = 1 << 20;

/// Per-tenant share configuration.
#[derive(Debug, Clone)]
pub struct TenantShare {
    /// Relative dispatch weight (≥ 1).
    pub weight: u32,
    /// Dispatch rate cap in grants/second; `None` = unlimited.
    pub rate_per_s: Option<f64>,
    /// Token-bucket depth for the rate cap (burst allowance, ≥ 1).
    pub burst: f64,
    /// Bounded submit-queue capacity.
    pub queue_cap: usize,
}

impl TenantShare {
    /// A share with `weight`, no rate cap, and a `queue_cap` queue.
    pub fn weighted(weight: u32, queue_cap: usize) -> TenantShare {
        TenantShare { weight, rate_per_s: None, burst: 1.0, queue_cap }
    }

    /// Builder: cap dispatches at `rate` grants/second with `burst`
    /// bucket depth.
    pub fn with_rate(mut self, rate: f64, burst: f64) -> TenantShare {
        assert!(rate > 0.0 && burst >= 1.0, "rate cap needs rate > 0 and burst >= 1");
        self.rate_per_s = Some(rate);
        self.burst = burst;
        self
    }
}

/// Why a submit was refused. Typed so callers (and tenants) can tell
/// backpressure from misconfiguration; never signalled by blocking.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedReject {
    /// The tenant was never registered.
    UnknownTenant {
        /// The offending tenant name.
        tenant: String,
    },
    /// The tenant's bounded queue is at capacity — retry later.
    QueueFull {
        /// The backpressured tenant.
        tenant: String,
        /// Its configured capacity.
        cap: usize,
    },
}

impl fmt::Display for SchedReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedReject::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            SchedReject::QueueFull { tenant, cap } => {
                write!(f, "tenant {tenant:?} queue full (cap {cap})")
            }
        }
    }
}

impl std::error::Error for SchedReject {}

/// A granted job.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant<T> {
    /// Id assigned at submit.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The submitted payload.
    pub payload: T,
}

struct TenantState<T> {
    share: TenantShare,
    queue: VecDeque<(u64, T)>,
    /// Virtual time: next grant goes to the smallest pass.
    pass: u128,
    stride: u128,
    tokens: f64,
    last_refill_s: f64,
    granted: u64,
    rejected: u64,
}

struct Inner<T> {
    /// BTreeMap so pass ties break on tenant name — deterministic under
    /// any insertion order.
    tenants: BTreeMap<String, TenantState<T>>,
    /// Virtual clock: pass of the latest grant. Tenants going from idle
    /// to backlogged rejoin at this point so idle time earns no credit.
    global_pass: u128,
    next_id: u64,
}

/// The weighted fair-share job scheduler. Cheap to clone via `Arc`;
/// all methods take `&self` and return without waiting.
pub struct FairScheduler<T> {
    inner: Mutex<Inner<T>>,
    obs: Arc<ig_obs::Obs>,
}

impl<T> FairScheduler<T> {
    /// A scheduler reporting to the global observability registry.
    pub fn new() -> FairScheduler<T> {
        FairScheduler::with_obs(ig_obs::Obs::global())
    }

    /// A scheduler reporting `gol.sched.*` metrics into `obs` (tests
    /// use a private registry to assert exact counter deltas).
    pub fn with_obs(obs: Arc<ig_obs::Obs>) -> FairScheduler<T> {
        FairScheduler {
            inner: Mutex::new(Inner { tenants: BTreeMap::new(), global_pass: 0, next_id: 1 }),
            obs,
        }
    }

    /// Register (or reconfigure) a tenant. Reconfiguring keeps its
    /// queue and virtual-time position.
    pub fn register(&self, tenant: &str, share: TenantShare) {
        assert!(share.weight >= 1, "weight must be >= 1");
        assert!(share.queue_cap >= 1, "queue_cap must be >= 1");
        let mut inner = self.inner.lock();
        let global_pass = inner.global_pass;
        let stride = STRIDE1 / u128::from(share.weight);
        match inner.tenants.get_mut(tenant) {
            Some(t) => {
                t.stride = stride;
                t.tokens = t.tokens.min(share.burst);
                t.share = share;
            }
            None => {
                inner.tenants.insert(
                    tenant.to_string(),
                    TenantState {
                        tokens: share.burst,
                        share,
                        queue: VecDeque::new(),
                        pass: global_pass,
                        stride,
                        last_refill_s: 0.0,
                        granted: 0,
                        rejected: 0,
                    },
                );
            }
        }
    }

    /// Submit a job for `tenant`. Returns the job id, or a typed
    /// reject — immediately, never by blocking the caller.
    pub fn submit(&self, tenant: &str, payload: T) -> Result<u64, SchedReject> {
        let mut inner = self.inner.lock();
        let global_pass = inner.global_pass;
        let next_id = inner.next_id;
        let Some(t) = inner.tenants.get_mut(tenant) else {
            drop(inner);
            self.obs.metrics().add("gol.sched.rejects", 1);
            return Err(SchedReject::UnknownTenant { tenant: tenant.to_string() });
        };
        if t.queue.len() >= t.share.queue_cap {
            t.rejected += 1;
            let cap = t.share.queue_cap;
            drop(inner);
            self.obs.metrics().add("gol.sched.rejects", 1);
            self.obs.metrics().add("gol.sched.queue_full", 1);
            return Err(SchedReject::QueueFull { tenant: tenant.to_string(), cap });
        }
        if t.queue.is_empty() {
            // Rejoining the virtual clock: no credit for idle time.
            t.pass = t.pass.max(global_pass);
        }
        t.queue.push_back((next_id, payload));
        inner.next_id += 1;
        drop(inner);
        self.obs.metrics().add("gol.sched.submitted", 1);
        Ok(next_id)
    }

    /// Grant the next job at time `now_s`: the backlogged,
    /// rate-eligible tenant with the smallest virtual pass (ties break
    /// on tenant name). `None` when nothing is eligible — either no
    /// jobs are queued or every backlogged tenant is rate-limited, in
    /// which case [`FairScheduler::next_ready_at`] says when to retry.
    pub fn dispatch(&self, now_s: f64) -> Option<Grant<T>> {
        let mut inner = self.inner.lock();
        let mut best: Option<(u128, String)> = None;
        for (name, t) in inner.tenants.iter_mut() {
            if t.queue.is_empty() {
                continue;
            }
            refill(t, now_s);
            if t.share.rate_per_s.is_some() && t.tokens < 1.0 {
                continue;
            }
            if best.as_ref().is_none_or(|(pass, _)| t.pass < *pass) {
                best = Some((t.pass, name.clone()));
            }
        }
        let (_, name) = best?;
        let t = inner.tenants.get_mut(&name).expect("winner exists");
        let (id, payload) = t.queue.pop_front().expect("winner has a job");
        if t.share.rate_per_s.is_some() {
            t.tokens -= 1.0;
        }
        t.pass += t.stride;
        t.granted += 1;
        inner.global_pass = inner.global_pass.max(inner.tenants[&name].pass);
        drop(inner);
        self.obs.metrics().add("gol.sched.grants", 1);
        Some(Grant { id, tenant: name, payload })
    }

    /// Earliest time a dispatch could succeed: `Some(now_s)` if a grant
    /// is available immediately, the earliest token-refill time if every
    /// backlogged tenant is rate-limited, `None` if nothing is queued.
    /// This is what lets an event loop sleep instead of spin — the
    /// scheduler itself never blocks.
    pub fn next_ready_at(&self, now_s: f64) -> Option<f64> {
        let mut inner = self.inner.lock();
        let mut earliest: Option<f64> = None;
        for t in inner.tenants.values_mut() {
            if t.queue.is_empty() {
                continue;
            }
            refill(t, now_s);
            let ready = match t.share.rate_per_s {
                Some(rate) if t.tokens < 1.0 => now_s + (1.0 - t.tokens) / rate,
                _ => now_s,
            };
            earliest = Some(earliest.map_or(ready, |e: f64| e.min(ready)));
        }
        earliest
    }

    /// Jobs queued for `tenant` (0 for unknown tenants).
    pub fn pending(&self, tenant: &str) -> usize {
        self.inner.lock().tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// Total queued jobs across tenants.
    pub fn queued_total(&self) -> usize {
        self.inner.lock().tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Grants made to `tenant` so far.
    pub fn granted(&self, tenant: &str) -> u64 {
        self.inner.lock().tenants.get(tenant).map_or(0, |t| t.granted)
    }

    /// Typed rejects returned to `tenant` so far (queue-full only).
    pub fn rejected(&self, tenant: &str) -> u64 {
        self.inner.lock().tenants.get(tenant).map_or(0, |t| t.rejected)
    }

    /// Reconfigure an *existing* tenant's share, keeping its queue and
    /// virtual-time position. Unlike [`FairScheduler::register`], an
    /// unknown tenant is a typed error, not an implicit creation — the
    /// admin plane must not mint tenants by typo. Same validity
    /// contract as `register` (`weight >= 1`, `queue_cap >= 1`).
    pub fn reconfigure(&self, tenant: &str, share: TenantShare) -> Result<(), SchedReject> {
        assert!(share.weight >= 1, "weight must be >= 1");
        assert!(share.queue_cap >= 1, "queue_cap must be >= 1");
        let mut inner = self.inner.lock();
        let Some(t) = inner.tenants.get_mut(tenant) else {
            return Err(SchedReject::UnknownTenant { tenant: tenant.to_string() });
        };
        t.stride = STRIDE1 / u128::from(share.weight);
        t.tokens = t.tokens.min(share.burst);
        t.share = share;
        Ok(())
    }

    /// JSON array of per-tenant configuration and counters, name-ordered
    /// (BTreeMap), for the admin `limits list` command.
    pub fn tenants_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("[");
        for (i, (name, t)) in inner.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            ig_obs::json::escape_str_into(&mut out, name);
            out.push_str(",\"weight\":");
            out.push_str(&t.share.weight.to_string());
            out.push_str(",\"rate_per_s\":");
            match t.share.rate_per_s {
                Some(r) => out.push_str(&format!("{r}")),
                None => out.push_str("null"),
            }
            out.push_str(",\"burst\":");
            out.push_str(&format!("{}", t.share.burst));
            out.push_str(",\"queue_cap\":");
            out.push_str(&t.share.queue_cap.to_string());
            out.push_str(",\"queued\":");
            out.push_str(&t.queue.len().to_string());
            out.push_str(",\"granted\":");
            out.push_str(&t.granted.to_string());
            out.push_str(",\"rejected\":");
            out.push_str(&t.rejected.to_string());
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// The admin plane's hook into a running scheduler (`limits set` /
/// `limits list`). Validation happens here — with typed string errors,
/// not the panics `register` reserves for programmer mistakes — because
/// the inputs come off the wire.
impl<T: Send> ig_server::SchedulerControl for FairScheduler<T> {
    fn set_limits(
        &self,
        tenant: &str,
        weight: u32,
        rate_per_s: Option<f64>,
        burst: f64,
        queue_cap: usize,
    ) -> Result<(), String> {
        if weight < 1 {
            return Err("weight must be >= 1".to_string());
        }
        if queue_cap < 1 {
            return Err("queue_cap must be >= 1".to_string());
        }
        let share = match rate_per_s {
            Some(r) => {
                if !(r.is_finite() && r > 0.0) {
                    return Err("rate_per_s must be finite and > 0".to_string());
                }
                if !(burst.is_finite() && burst >= 1.0) {
                    return Err("burst must be finite and >= 1".to_string());
                }
                TenantShare::weighted(weight, queue_cap).with_rate(r, burst)
            }
            None => TenantShare::weighted(weight, queue_cap),
        };
        self.reconfigure(tenant, share).map_err(|e| e.to_string())
    }

    fn tenants_json(&self) -> String {
        FairScheduler::tenants_json(self)
    }
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        FairScheduler::new()
    }
}

/// Token-bucket refill at `now_s`. Uses the tenant's own last-refill
/// mark, so callers may move time forward at any granularity; time
/// never moves backwards (a stale `now_s` is ignored).
fn refill<T>(t: &mut TenantState<T>, now_s: f64) {
    let Some(rate) = t.share.rate_per_s else { return };
    if now_s > t.last_refill_s {
        t.tokens = (t.tokens + (now_s - t.last_refill_s) * rate).min(t.share.burst);
        t.last_refill_s = now_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> FairScheduler<u32> {
        FairScheduler::with_obs(ig_obs::Obs::new("sched-test"))
    }

    #[test]
    fn grants_follow_weights() {
        let s = sched();
        s.register("a", TenantShare::weighted(1, 1000));
        s.register("b", TenantShare::weighted(3, 1000));
        for i in 0..400 {
            s.submit("a", i).unwrap();
            s.submit("b", i).unwrap();
        }
        let mut counts = (0u32, 0u32);
        for _ in 0..400 {
            match s.dispatch(0.0).unwrap().tenant.as_str() {
                "a" => counts.0 += 1,
                _ => counts.1 += 1,
            }
        }
        // 1:3 weights over 400 grants: 100/300, exact under stride.
        assert_eq!(counts, (100, 300));
    }

    #[test]
    fn queue_full_rejects_typed_and_counts() {
        let obs = ig_obs::Obs::new("sched-reject-test");
        let s: FairScheduler<u32> = FairScheduler::with_obs(Arc::clone(&obs));
        s.register("t", TenantShare::weighted(1, 2));
        s.submit("t", 1).unwrap();
        s.submit("t", 2).unwrap();
        let err = s.submit("t", 3).unwrap_err();
        assert_eq!(err, SchedReject::QueueFull { tenant: "t".into(), cap: 2 });
        assert_eq!(obs.metrics().counter_value("gol.sched.rejects"), 1);
        assert_eq!(s.rejected("t"), 1);
        // Draining one slot readmits.
        assert!(s.dispatch(0.0).is_some());
        assert!(s.submit("t", 3).is_ok());
    }

    #[test]
    fn unknown_tenant_rejects_typed() {
        let s = sched();
        let err = s.submit("ghost", 1).unwrap_err();
        assert_eq!(err, SchedReject::UnknownTenant { tenant: "ghost".into() });
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rate_limit_caps_grants_and_reports_ready_time() {
        let s = sched();
        s.register("fast", TenantShare::weighted(1, 100));
        s.register("capped", TenantShare::weighted(100, 100).with_rate(2.0, 1.0));
        for i in 0..20 {
            s.submit("fast", i).unwrap();
            s.submit("capped", i).unwrap();
        }
        // At t=0 capped burns its single-token burst, then only refills
        // at 2/s; over one second expect 1 + 2 capped grants max.
        let mut capped = 0;
        let mut t = 0.0;
        while t <= 1.0 {
            while let Some(g) = s.dispatch(t) {
                if g.tenant == "capped" {
                    capped += 1;
                }
                if s.pending("fast") == 0 {
                    break;
                }
            }
            t += 0.05;
        }
        assert!(capped <= 3, "rate cap leaked: {capped}");
        // fast drained long ago; capped still queued, so the scheduler
        // names the refill time instead of blocking.
        assert_eq!(s.pending("fast"), 0);
        let ready = s.next_ready_at(2.0).unwrap();
        assert!(ready >= 2.0);
        assert!(s.queued_total() > 0);
    }

    #[test]
    fn dispatch_never_hangs_when_empty() {
        let s = sched();
        s.register("t", TenantShare::weighted(1, 4));
        assert!(s.dispatch(0.0).is_none());
        assert!(s.next_ready_at(0.0).is_none());
    }

    #[test]
    fn idle_tenant_earns_no_credit() {
        let s = sched();
        s.register("busy", TenantShare::weighted(1, 10_000));
        s.register("idle", TenantShare::weighted(1, 10_000));
        for i in 0..600 {
            s.submit("busy", i).unwrap();
        }
        for _ in 0..500 {
            s.dispatch(0.0).unwrap();
        }
        // idle submits late; equal weights from here on means roughly
        // alternating grants, not a 500-grant catch-up burst.
        for i in 0..100 {
            s.submit("idle", i).unwrap();
        }
        let mut first = Vec::new();
        for _ in 0..10 {
            first.push(s.dispatch(0.0).unwrap().tenant);
        }
        assert!(
            first.iter().filter(|t| t.as_str() == "busy").count() >= 4,
            "idle tenant monopolized after rejoining: {first:?}"
        );
    }

    #[test]
    fn reconfigure_requires_existing_tenant() {
        let s = sched();
        let err = s.reconfigure("ghost", TenantShare::weighted(2, 8)).unwrap_err();
        assert_eq!(err, SchedReject::UnknownTenant { tenant: "ghost".into() });
        s.register("t", TenantShare::weighted(1, 4));
        s.submit("t", 7).unwrap();
        s.reconfigure("t", TenantShare::weighted(5, 8)).unwrap();
        // The queue survived the reconfigure.
        assert_eq!(s.pending("t"), 1);
        assert!(s.tenants_json().contains("\"weight\":5"));
    }

    #[test]
    fn scheduler_control_validates_wire_inputs() {
        use ig_server::SchedulerControl;
        let s = sched();
        s.register("t", TenantShare::weighted(1, 4));
        // Panics in register/with_rate must be unreachable from here.
        assert!(s.set_limits("t", 0, None, 1.0, 4).is_err());
        assert!(s.set_limits("t", 1, None, 1.0, 0).is_err());
        assert!(s.set_limits("t", 1, Some(-1.0), 1.0, 4).is_err());
        assert!(s.set_limits("t", 1, Some(10.0), 0.5, 4).is_err());
        assert!(s.set_limits("ghost", 2, None, 1.0, 4).is_err());
        s.set_limits("t", 3, Some(10.0), 2.0, 16).unwrap();
        let json = SchedulerControl::tenants_json(&s);
        assert!(json.contains("\"weight\":3"), "{json}");
        assert!(json.contains("\"rate_per_s\":10"), "{json}");
        assert!(json.contains("\"queue_cap\":16"), "{json}");
    }

    #[test]
    fn fifo_within_a_tenant() {
        let s = sched();
        s.register("t", TenantShare::weighted(1, 10));
        let ids: Vec<u64> = (0..5).map(|i| s.submit("t", i).unwrap()).collect();
        let granted: Vec<u64> = (0..5).map(|_| s.dispatch(0.0).unwrap().id).collect();
        assert_eq!(ids, granted);
    }
}
