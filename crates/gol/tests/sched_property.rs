//! Property battery for the fair-share scheduler (DESIGN.md §14).
//!
//! The invariants the fleet simulation leans on, each driven over
//! arbitrary tenant configurations:
//!
//! * long-run grant ratios converge to the configured weights (within ε);
//! * no backlogged tenant starves — bounded time-to-first-grant;
//! * bounded queues reject with a typed error and bump
//!   `gol.sched.rejects`, never by blocking;
//! * `dispatch`/`submit` always return (liveness under rate limits:
//!   `next_ready_at` names a finite retry time instead of hanging).

use ig_gol::{FairScheduler, SchedReject, TenantShare};
use proptest::prelude::*;
use std::sync::Arc;

/// Case-count override for CI smoke runs (`IG_PROPTEST_CASES`).
fn cases(default: u32) -> u32 {
    std::env::var("IG_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn sched() -> FairScheduler<u32> {
    FairScheduler::with_obs(ig_obs::Obs::new("sched-prop"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Keep every tenant backlogged and dispatch many slots: each
    /// tenant's grant share must sit within ε of weight_i / Σ weights.
    #[test]
    fn grant_ratios_track_weights(weights in proptest::collection::vec(1u32..=8, 2..=5)) {
        let s = sched();
        let names: Vec<String> = (0..weights.len()).map(|i| format!("t{i}")).collect();
        for (name, &w) in names.iter().zip(&weights) {
            s.register(name, TenantShare::weighted(w, usize::MAX - 1));
        }
        let total_weight: u32 = weights.iter().sum();
        let rounds = 200u32 * total_weight;
        // Backlog everyone deeply enough that no queue drains.
        for name in &names {
            for i in 0..rounds {
                s.submit(name, i).unwrap();
            }
        }
        let mut grants = vec![0u32; names.len()];
        for _ in 0..rounds {
            let g = s.dispatch(0.0).unwrap();
            let idx = names.iter().position(|n| *n == g.tenant).unwrap();
            grants[idx] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let got = f64::from(grants[i]) / f64::from(rounds);
            let want = f64::from(w) / f64::from(total_weight);
            prop_assert!(
                (got - want).abs() < 0.02,
                "tenant {i} weight {w}: share {got:.3}, want {want:.3} (grants {grants:?})"
            );
        }
    }

    /// Starvation bound: with every tenant backlogged, each receives its
    /// first grant within one full stride rotation — at most
    /// Σ ceil(w_max / w_i) grants, conservatively bounded here by
    /// n · w_max grants.
    #[test]
    fn no_backlogged_tenant_starves(weights in proptest::collection::vec(1u32..=8, 2..=6)) {
        let s = sched();
        let names: Vec<String> = (0..weights.len()).map(|i| format!("t{i}")).collect();
        for (name, &w) in names.iter().zip(&weights) {
            s.register(name, TenantShare::weighted(w, 10_000));
        }
        let window = weights.len() as u32 * 8 + 1;
        for name in &names {
            for i in 0..window {
                s.submit(name, i).unwrap();
            }
        }
        let mut seen = vec![false; names.len()];
        for _ in 0..window {
            let g = s.dispatch(0.0).unwrap();
            seen[names.iter().position(|n| *n == g.tenant).unwrap()] = true;
        }
        prop_assert!(
            seen.iter().all(|&x| x),
            "some tenant unserved after {window} grants: {seen:?} weights {weights:?}"
        );
    }

    /// Overfilling a bounded queue rejects exactly the overflow, typed,
    /// with `gol.sched.rejects` counting every refusal — and never
    /// blocks the submitter.
    #[test]
    fn bounded_queue_rejects_typed(cap in 1usize..=64, extra in 1usize..=64) {
        let obs = ig_obs::Obs::new("sched-prop-rejects");
        let s: FairScheduler<usize> = FairScheduler::with_obs(Arc::clone(&obs));
        s.register("t", TenantShare::weighted(1, cap));
        let mut rejected = 0u64;
        for i in 0..cap + extra {
            match s.submit("t", i) {
                Ok(_) => prop_assert!(i < cap, "accepted past cap at {i}"),
                Err(SchedReject::QueueFull { tenant, cap: c }) => {
                    prop_assert_eq!(&tenant, "t");
                    prop_assert_eq!(c, cap);
                    rejected += 1;
                }
                Err(other) => return Err(TestCaseError::fail(format!("wrong reject: {other}"))),
            }
        }
        prop_assert_eq!(rejected, extra as u64);
        prop_assert_eq!(obs.metrics().counter_value("gol.sched.rejects"), extra as u64);
        prop_assert_eq!(s.pending("t"), cap);
        prop_assert_eq!(s.rejected("t"), extra as u64);
    }

    /// Liveness: whatever mix of rate-limited and unlimited tenants,
    /// `dispatch` returns (grant or None) and a None with queued work
    /// comes with a finite `next_ready_at` — the caller can always make
    /// progress by advancing time, never by waiting on the scheduler.
    #[test]
    fn never_blocks_under_rate_limits(
        tenants in proptest::collection::vec((1u32..=4, proptest::option::of(1u32..=20)), 1..=4),
        jobs in 1u32..=40,
    ) {
        let s = sched();
        for (i, (w, rate)) in tenants.iter().enumerate() {
            let mut share = TenantShare::weighted(*w, 10_000);
            if let Some(r) = rate {
                share = share.with_rate(f64::from(*r), 1.0);
            }
            s.register(&format!("t{i}"), share);
        }
        for i in 0..tenants.len() {
            for j in 0..jobs {
                s.submit(&format!("t{i}"), j).unwrap();
            }
        }
        let mut now = 0.0f64;
        let mut granted = 0u32;
        let total = jobs * tenants.len() as u32;
        // Drive to drain; the ready-time hint must always move us on.
        let mut guard = 0u32;
        while granted < total {
            guard += 1;
            prop_assert!(guard < 100_000, "no progress: {granted}/{total} at t={now}");
            match s.dispatch(now) {
                Some(_) => granted += 1,
                None => {
                    let ready = s.next_ready_at(now);
                    let ready = ready.expect("queued work must yield a ready time");
                    prop_assert!(ready.is_finite() && ready >= now);
                    // Nudge past the boundary; tokens refill strictly.
                    now = ready + 1e-9;
                }
            }
        }
        prop_assert_eq!(s.queued_total(), 0);
    }
}
