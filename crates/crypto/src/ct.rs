//! Constant-time helpers for secret comparison.

/// Compare two byte slices in time independent of where they differ.
///
/// Returns `false` immediately only when the *lengths* differ (length is
/// not secret for MAC tags and password digests, which are fixed-size).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0xff; 64], &[0xff; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00abc", b"abc\x00"));
    }

    #[test]
    fn single_bit_difference() {
        let a = [0u8; 32];
        for i in 0..32 {
            for bit in 0..8 {
                let mut b = a;
                b[i] ^= 1 << bit;
                assert!(!ct_eq(&a, &b));
            }
        }
    }
}
