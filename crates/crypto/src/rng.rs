//! RNG plumbing: everything that needs randomness takes an explicit
//! `&mut impl Rng`, so tests, the netsim, and the benchmark harness are
//! fully deterministic when seeded.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded deterministic RNG for tests and simulations.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// An OS-entropy RNG for interactive use (examples, real servers).
pub fn system() -> StdRng {
    StdRng::from_entropy()
}

/// Fill a buffer with random bytes.
pub fn fill<R: rand::Rng + ?Sized>(rng: &mut R, buf: &mut [u8]) {
    rng.fill_bytes(buf);
}

/// Generate a random array, e.g. session keys and nonces.
pub fn random_array<R: rand::Rng + ?Sized, const N: usize>(rng: &mut R) -> [u8; N] {
    let mut out = [0u8; N];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: [u8; 16] = random_array(&mut seeded(1));
        let b: [u8; 16] = random_array(&mut seeded(1));
        let c: [u8; 16] = random_array(&mut seeded(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_covers_buffer() {
        let mut buf = [0u8; 64];
        fill(&mut seeded(3), &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
