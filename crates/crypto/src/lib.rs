//! # ig-crypto — from-scratch cryptographic substrate for Instant GridFTP
//!
//! The Instant GridFTP reproduction cannot use OpenSSL or any existing
//! GSI/X.509 crate (none exist offline), so this crate implements the
//! primitives the Grid Security Infrastructure layer needs:
//!
//! * [`bignum::BigUint`] — arbitrary-precision unsigned integers with
//!   Knuth Algorithm-D division and square-and-multiply modular
//!   exponentiation.
//! * [`rsa`] — RSA key generation (Miller–Rabin primes), PKCS#1-v1.5-style
//!   signing/verification with SHA-256, and RSA key transport used by the
//!   GSI handshake.
//! * [`sha256`], [`hmac`], [`hkdf`] — hashing, message authentication and
//!   the key schedule for sealed GSI records.
//! * [`chacha20`] — the stream cipher used for `PROT P` (private) channels.
//! * [`encode`] — base64 / hex / PEM codecs (DCSC blobs are base64-encoded
//!   PEM bundles, exactly as §V of the paper specifies).
//! * [`ct`] — constant-time comparison for MAC/password checks.
//!
//! Keys default to small-but-real sizes (512/1024 bit) so the full test
//! suite and benchmark harness run in seconds; the algorithms are identical
//! at 2048 bit. This is a *research reproduction*, not a production
//! cryptography library — the point is that every byte that crosses a
//! GridFTP channel in this repo is genuinely signed, MACed and encrypted by
//! these routines, so the security workflows of the paper are exercised for
//! real rather than stubbed.

#![deny(rust_2018_idioms)]

pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod encode;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha256;

pub use bignum::BigUint;
pub use error::CryptoError;
pub use hmac::{HmacKey, HmacSha256};
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::Sha256;
