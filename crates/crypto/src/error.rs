//! Error type shared by all ig-crypto operations.

use std::fmt;

/// Errors produced by cryptographic operations.
///
/// Every failure mode is explicit so callers (the GSI handshake, the PKI
/// validator, the MyProxy CA) can distinguish "malformed input" from
/// "cryptographic rejection" — the paper's security workflows depend on
/// rejecting, not panicking on, hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Input could not be decoded (bad base64, bad hex, bad PEM framing...).
    Decode(String),
    /// A signature failed to verify.
    BadSignature,
    /// A MAC tag failed to verify.
    BadMac,
    /// Ciphertext or padding was malformed.
    BadCiphertext,
    /// A key was unsuitable for the requested operation (wrong size, zero
    /// modulus, message larger than modulus...).
    InvalidKey(String),
    /// Prime/key generation exhausted its attempt budget.
    GenerationFailed(String),
    /// Arithmetic preconditions violated (e.g. division by zero).
    Arithmetic(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::Decode(m) => write!(f, "decode error: {m}"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::BadMac => write!(f, "MAC verification failed"),
            CryptoError::BadCiphertext => write!(f, "ciphertext malformed"),
            CryptoError::InvalidKey(m) => write!(f, "invalid key: {m}"),
            CryptoError::GenerationFailed(m) => write!(f, "generation failed: {m}"),
            CryptoError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CryptoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CryptoError::Decode("bad char".into());
        assert!(e.to_string().contains("bad char"));
        assert_eq!(CryptoError::BadMac.to_string(), "MAC verification failed");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CryptoError::BadSignature);
        assert!(e.to_string().contains("signature"));
    }
}
