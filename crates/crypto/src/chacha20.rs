//! ChaCha20 stream cipher (RFC 8439) — the `PROT P` data-channel cipher.
//!
//! §IIC of the paper notes that data-channel confidentiality is supported
//! but off by default because of its cost ("an order of magnitude slowdown
//! is not unusual"). Experiment E3 measures exactly that cost with this
//! cipher (plus an HMAC), so the implementation is a real keystream cipher
//! rather than a placeholder XOR — and a reasonably fast one: the state
//! words are assembled once per cipher, whole 64-byte blocks are XORed as
//! `u64` lanes, bulk data takes an AVX2 eight-blocks-at-once path when
//! the CPU supports it, and only sub-block tails fall back to
//! byte-at-a-time.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Assemble the 16-word initial state from key, counter and nonce.
fn build_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// The 20-round core: returns the keystream block as 16 words.
fn chacha_core(state: &[u32; 16]) -> [u32; 16] {
    let mut working = *state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, s) in working.iter_mut().zip(state.iter()) {
        *w = w.wrapping_add(*s);
    }
    working
}

fn chacha_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let words = chacha_core(&build_state(key, counter, nonce));
    let mut out = [0u8; 64];
    for (i, w) in words.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// AVX2 batch path: eight keystream blocks computed side by side, one
/// word per 256-bit register lane, XORed into 512 bytes of data without
/// ever serializing the keystream through memory. Selected at runtime via
/// CPU detection; every byte it produces is identical to the scalar path
/// (`vectorized_matches_scalar_reference` and the proptests pin this).
#[cfg(target_arch = "x86_64")]
mod wide {
    use std::arch::x86_64::*;

    /// Bytes consumed per batch: 8 blocks × 64 bytes.
    pub const BATCH: usize = 512;

    /// Whether the batch path can run on this CPU (cached by std).
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("avx2")
    }

    macro_rules! rotl {
        ($v:expr, $n:literal) => {
            _mm256_or_si256(_mm256_slli_epi32($v, $n), _mm256_srli_epi32($v, 32 - $n))
        };
    }

    macro_rules! qr {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = _mm256_add_epi32($a, $b);
            $d = rotl!(_mm256_xor_si256($d, $a), 16);
            $c = _mm256_add_epi32($c, $d);
            $b = rotl!(_mm256_xor_si256($b, $c), 12);
            $a = _mm256_add_epi32($a, $b);
            $d = rotl!(_mm256_xor_si256($d, $a), 8);
            $c = _mm256_add_epi32($c, $d);
            $b = rotl!(_mm256_xor_si256($b, $c), 7);
        };
    }

    /// Transpose an 8×8 matrix of `u32` held as 8 vectors: output row L
    /// is lane L of each input vector.
    #[inline(always)]
    unsafe fn transpose8(r: [__m256i; 8]) -> [__m256i; 8] {
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let u4 = _mm256_unpacklo_epi64(t4, t6);
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        [
            _mm256_permute2x128_si256(u0, u4, 0x20),
            _mm256_permute2x128_si256(u1, u5, 0x20),
            _mm256_permute2x128_si256(u2, u6, 0x20),
            _mm256_permute2x128_si256(u3, u7, 0x20),
            _mm256_permute2x128_si256(u0, u4, 0x31),
            _mm256_permute2x128_si256(u1, u5, 0x31),
            _mm256_permute2x128_si256(u2, u6, 0x31),
            _mm256_permute2x128_si256(u3, u7, 0x31),
        ]
    }

    /// XOR eight consecutive keystream blocks (counters `state[12]` to
    /// `state[12] + 7`, wrapping like the scalar path) into `chunk`.
    ///
    /// # Safety
    /// The caller must have checked [`available`] first.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_batch(state: &[u32; 16], chunk: &mut [u8; BATCH]) {
        let mut v: [__m256i; 16] = [_mm256_setzero_si256(); 16];
        for w in 0..16 {
            v[w] = _mm256_set1_epi32(state[w] as i32);
        }
        v[12] = _mm256_add_epi32(v[12], _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        let init = v;
        let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
            v;
        for _ in 0..10 {
            qr!(x0, x4, x8, x12);
            qr!(x1, x5, x9, x13);
            qr!(x2, x6, x10, x14);
            qr!(x3, x7, x11, x15);
            qr!(x0, x5, x10, x15);
            qr!(x1, x6, x11, x12);
            qr!(x2, x7, x8, x13);
            qr!(x3, x4, x9, x14);
        }
        // Keystream words 0–7 and 8–15 of each block, transposed so each
        // row is one block's contiguous 32 bytes.
        let lo = transpose8([
            _mm256_add_epi32(x0, init[0]),
            _mm256_add_epi32(x1, init[1]),
            _mm256_add_epi32(x2, init[2]),
            _mm256_add_epi32(x3, init[3]),
            _mm256_add_epi32(x4, init[4]),
            _mm256_add_epi32(x5, init[5]),
            _mm256_add_epi32(x6, init[6]),
            _mm256_add_epi32(x7, init[7]),
        ]);
        let hi = transpose8([
            _mm256_add_epi32(x8, init[8]),
            _mm256_add_epi32(x9, init[9]),
            _mm256_add_epi32(x10, init[10]),
            _mm256_add_epi32(x11, init[11]),
            _mm256_add_epi32(x12, init[12]),
            _mm256_add_epi32(x13, init[13]),
            _mm256_add_epi32(x14, init[14]),
            _mm256_add_epi32(x15, init[15]),
        ]);
        let base = chunk.as_mut_ptr();
        for lane in 0..8 {
            let p0 = base.add(lane * 64) as *mut __m256i;
            let p1 = base.add(lane * 64 + 32) as *mut __m256i;
            _mm256_storeu_si256(p0, _mm256_xor_si256(_mm256_loadu_si256(p0 as *const _), lo[lane]));
            _mm256_storeu_si256(p1, _mm256_xor_si256(_mm256_loadu_si256(p1 as *const _), hi[lane]));
        }
    }
}

/// XOR one whole 64-byte block with a keystream block, eight `u64` lanes
/// at a time. Keystream words serialize little-endian (RFC 8439 §2.3), so
/// a lane of two words is `w0 | w1 << 32` read/written via `from_le`/
/// `to_le` — on little-endian hardware this compiles to plain 64-bit XORs.
#[inline(always)]
fn xor_block64(chunk: &mut [u8], ks: &[u32; 16]) {
    debug_assert_eq!(chunk.len(), 64);
    for (lane, kw) in chunk.chunks_exact_mut(8).zip(ks.chunks_exact(2)) {
        let k = (kw[0] as u64) | ((kw[1] as u64) << 32);
        let v = u64::from_le_bytes(lane.try_into().expect("8-byte lane")) ^ k;
        lane.copy_from_slice(&v.to_le_bytes());
    }
}

/// Stateful ChaCha20 keystream: encrypts/decrypts a byte stream
/// incrementally (encryption and decryption are the same XOR operation).
pub struct ChaCha20 {
    /// Initial state (constants ‖ key ‖ counter ‖ nonce); word 12 is the
    /// live block counter, everything else is fixed at construction.
    state: [u32; 16],
    /// Serialized keystream of the most recent partially-consumed block.
    block: [u8; 64],
    /// Offset of the next unused keystream byte in `block` (64 = exhausted).
    block_off: usize,
    /// Whether the AVX2 8-block batch path is usable on this CPU.
    #[cfg(target_arch = "x86_64")]
    use_wide: bool,
}

impl ChaCha20 {
    /// Create a cipher positioned at block counter `initial_counter`
    /// (RFC 8439 uses 1 for payload when block 0 is reserved; we use 0).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        ChaCha20 {
            state: build_state(key, 0, nonce),
            block: [0u8; 64],
            block_off: 64,
            #[cfg(target_arch = "x86_64")]
            use_wide: wide::available(),
        }
    }

    /// Produce the next keystream block as words and advance the counter.
    #[inline(always)]
    fn next_block_words(&mut self) -> [u32; 16] {
        let words = chacha_core(&self.state);
        self.state[12] = self.state[12].wrapping_add(1);
        words
    }

    /// XOR the keystream into `data` in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut i = 0usize;
        // Drain keystream left over from a previous partial block.
        while i < data.len() && self.block_off < 64 {
            data[i] ^= self.block[self.block_off];
            i += 1;
            self.block_off += 1;
        }
        // Wide batches: eight blocks per AVX2 pass where the CPU allows.
        #[cfg(target_arch = "x86_64")]
        if self.use_wide {
            while data.len() - i >= wide::BATCH {
                let chunk: &mut [u8; wide::BATCH] =
                    (&mut data[i..i + wide::BATCH]).try_into().expect("512-byte chunk");
                // SAFETY: `use_wide` is only set when AVX2 is available.
                unsafe { wide::xor_batch(&self.state, chunk) };
                self.state[12] = self.state[12].wrapping_add(8);
                i += wide::BATCH;
            }
        }
        // Whole blocks: XOR straight from the keystream words, no
        // serialization into `block` and no per-byte loop.
        while data.len() - i >= 64 {
            let ks = self.next_block_words();
            xor_block64(&mut data[i..i + 64], &ks);
            i += 64;
        }
        // Sub-block tail: serialize one keystream block and keep the
        // unused remainder for the next call.
        if i < data.len() {
            let ks = self.next_block_words();
            for (b, w) in self.block.chunks_exact_mut(4).zip(ks.iter()) {
                b.copy_from_slice(&w.to_le_bytes());
            }
            self.block_off = 0;
            while i < data.len() {
                data[i] ^= self.block[self.block_off];
                i += 1;
                self.block_off += 1;
            }
        }
    }

    /// One-shot convenience: returns `data ^ keystream(key, nonce)`.
    pub fn xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce).apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::hex_encode;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha_block(&key, 1, &nonce);
        assert_eq!(
            hex_encode(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4"
        );
        assert_eq!(hex_encode(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encrypt() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plain = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        // RFC uses initial counter 1; advance one block manually.
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut skip = [0u8; 64];
        cipher.apply(&mut skip);
        let mut data = plain.to_vec();
        cipher.apply(&mut data);
        assert_eq!(
            hex_encode(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(
            hex_encode(&data[96..]),
            "5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let plain: Vec<u8> = (0u32..5000).map(|i| (i * 31 % 251) as u8).collect();
        let ct = ChaCha20::xor(&key, &nonce, &plain);
        assert_ne!(ct, plain);
        assert_eq!(ChaCha20::xor(&key, &nonce, &ct), plain);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let plain = vec![0xa5u8; 1000];
        let whole = ChaCha20::xor(&key, &nonce, &plain);
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut pieces = plain.clone();
        for chunk in pieces.chunks_mut(13) {
            cipher.apply(chunk);
        }
        assert_eq!(pieces, whole);
    }

    /// The vectorized path (whole blocks) and the scalar reference
    /// (`chacha_block` serialization) must agree byte for byte, at every
    /// chunking pattern that mixes tails and whole blocks.
    #[test]
    fn vectorized_matches_scalar_reference() {
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        let plain: Vec<u8> = (0u32..4096).map(|i| (i * 131 % 256) as u8).collect();
        // Scalar reference: XOR against per-block serialized keystream.
        let mut reference = plain.clone();
        for (blk_idx, chunk) in reference.chunks_mut(64).enumerate() {
            let ks = chacha_block(&key, blk_idx as u32, &nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        // One-shot (hits the u64-lane path for all whole blocks).
        assert_eq!(ChaCha20::xor(&key, &nonce, &plain), reference);
        // Awkward chunkings (hit drain/whole/tail combinations).
        for chunk_size in [1usize, 7, 63, 64, 65, 100, 128, 1000] {
            let mut cipher = ChaCha20::new(&key, &nonce);
            let mut pieces = plain.clone();
            for chunk in pieces.chunks_mut(chunk_size) {
                cipher.apply(chunk);
            }
            assert_eq!(pieces, reference, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let a = ChaCha20::xor(&key, &[0u8; 12], &[0u8; 64]);
        let b = ChaCha20::xor(&key, &[1u8; 12], &[0u8; 64]);
        assert_ne!(a, b);
    }
}
