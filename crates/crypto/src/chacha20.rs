//! ChaCha20 stream cipher (RFC 8439) — the `PROT P` data-channel cipher.
//!
//! §IIC of the paper notes that data-channel confidentiality is supported
//! but off by default because of its cost ("an order of magnitude slowdown
//! is not unusual"). Experiment E3 measures exactly that cost with this
//! cipher (plus an HMAC), so the implementation is a real keystream cipher
//! rather than a placeholder XOR.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let w = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Stateful ChaCha20 keystream: encrypts/decrypts a byte stream
/// incrementally (encryption and decryption are the same XOR operation).
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    block: [u8; 64],
    /// Offset of the next unused keystream byte in `block` (64 = exhausted).
    block_off: usize,
}

impl ChaCha20 {
    /// Create a cipher positioned at block counter `initial_counter`
    /// (RFC 8439 uses 1 for payload when block 0 is reserved; we use 0).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        ChaCha20 { key: *key, nonce: *nonce, counter: 0, block: [0u8; 64], block_off: 64 }
    }

    /// XOR the keystream into `data` in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.block_off == 64 {
                self.block = chacha_block(&self.key, self.counter, &self.nonce);
                self.counter = self.counter.wrapping_add(1);
                self.block_off = 0;
            }
            *byte ^= self.block[self.block_off];
            self.block_off += 1;
        }
    }

    /// One-shot convenience: returns `data ^ keystream(key, nonce)`.
    pub fn xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce).apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::hex_encode;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha_block(&key, 1, &nonce);
        assert_eq!(
            hex_encode(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4"
        );
        assert_eq!(hex_encode(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encrypt() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plain = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        // RFC uses initial counter 1; advance one block manually.
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut skip = [0u8; 64];
        cipher.apply(&mut skip);
        let mut data = plain.to_vec();
        cipher.apply(&mut data);
        assert_eq!(
            hex_encode(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(
            hex_encode(&data[96..]),
            "5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let plain: Vec<u8> = (0u32..5000).map(|i| (i * 31 % 251) as u8).collect();
        let ct = ChaCha20::xor(&key, &nonce, &plain);
        assert_ne!(ct, plain);
        assert_eq!(ChaCha20::xor(&key, &nonce, &ct), plain);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let plain = vec![0xa5u8; 1000];
        let whole = ChaCha20::xor(&key, &nonce, &plain);
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut pieces = plain.clone();
        for chunk in pieces.chunks_mut(13) {
            cipher.apply(chunk);
        }
        assert_eq!(pieces, whole);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let a = ChaCha20::xor(&key, &[0u8; 12], &[0u8; 64]);
        let b = ChaCha20::xor(&key, &[1u8; 12], &[0u8; 64]);
        assert_ne!(a, b);
    }
}
