//! RSA: key generation, PKCS#1 v1.5-style signatures (with SHA-256), and
//! PKCS#1 v1.5-style encryption used for GSI key transport.
//!
//! Key encoding is a simple deterministic length-prefixed binary layout
//! (`u32-be length || big-endian value` per field) wrapped in PEM by the
//! PKI layer — an intentionally simplified stand-in for ASN.1 DER that
//! keeps certificates byte-exact and diffable in tests.

use crate::bignum::BigUint;
use crate::error::{CryptoError, Result};
use crate::prime::generate_prime;
use crate::sha256::Sha256;
use rand::Rng;

/// Default public exponent (F4).
pub const DEFAULT_E: u64 = 65537;

/// SHA-256 DigestInfo-style prefix binding the signature to the hash
/// algorithm (analogous to the ASN.1 prefix in real PKCS#1 v1.5).
const SHA256_PREFIX: &[u8] = b"IG-SIG-SHA256:";

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key. Holds the factors for validation/debugging but uses
/// plain `d` exponentiation (no CRT — simplicity over speed at these sizes).
#[derive(Clone, PartialEq, Eq)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey")
            .field("bits", &self.public.bits())
            .finish_non_exhaustive()
    }
}

/// A matched public/private key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKeyPair {
    /// Public half.
    pub public: RsaPublicKey,
    /// Private half.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Construct from raw components.
    pub fn new(n: BigUint, e: BigUint) -> Result<Self> {
        if n.bit_len() < 32 {
            return Err(CryptoError::InvalidKey("modulus too small".into()));
        }
        if e.is_zero() || e.is_one() || e.is_even() {
            return Err(CryptoError::InvalidKey("bad public exponent".into()));
        }
        Ok(RsaPublicKey { n, e })
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Modulus size in whole bytes.
    pub fn byte_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verify a signature over `message` (hashes internally).
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<()> {
        if signature.len() != self.byte_len() {
            return Err(CryptoError::BadSignature);
        }
        let sig = BigUint::from_bytes_be(signature);
        if sig >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let em = sig.modpow(&self.e, &self.n)?;
        let em_bytes = em
            .to_bytes_be_padded(self.byte_len())
            .map_err(|_| CryptoError::BadSignature)?;
        let expect = encode_signature_padding(message, self.byte_len())?;
        if crate::ct::ct_eq(&em_bytes, &expect) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Encrypt a short message (≤ modulus_len − 11) with PKCS#1 v1.5
    /// type-2 random padding. Used for GSI pre-master-secret transport.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Result<Vec<u8>> {
        let k = self.byte_len();
        if plaintext.len() + 11 > k {
            return Err(CryptoError::InvalidKey(format!(
                "plaintext {} bytes too long for {}-byte modulus",
                plaintext.len(),
                k
            )));
        }
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        // Nonzero random padding bytes.
        for _ in 0..(k - plaintext.len() - 3) {
            let mut b = 0u8;
            while b == 0 {
                b = rng.gen();
            }
            em.push(b);
        }
        em.push(0x00);
        em.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&em);
        let c = m.modpow(&self.e, &self.n)?;
        c.to_bytes_be_padded(k)
    }

    /// Deterministic binary encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_field(&mut out, &self.n);
        push_field(&mut out, &self.e);
        out
    }

    /// Decode from [`RsaPublicKey::encode`] output.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut cursor = 0usize;
        let n = read_field(data, &mut cursor)?;
        let e = read_field(data, &mut cursor)?;
        if cursor != data.len() {
            return Err(CryptoError::Decode("trailing bytes after public key".into()));
        }
        RsaPublicKey::new(n, e)
    }

    /// A short fingerprint (first 8 bytes of SHA-256 of the encoding) used
    /// in logs and endpoint identities.
    pub fn fingerprint(&self) -> String {
        let d = Sha256::digest(&self.encode());
        crate::encode::hex_encode(&d[..8])
    }
}

impl RsaPrivateKey {
    /// Public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Sign `message` (hashes internally with SHA-256).
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>> {
        let k = self.public.byte_len();
        let em = encode_signature_padding(message, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = m.modpow(&self.d, &self.public.n)?;
        s.to_bytes_be_padded(k)
    }

    /// Decrypt a PKCS#1 v1.5 type-2 ciphertext.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        let k = self.public.byte_len();
        if ciphertext.len() != k {
            return Err(CryptoError::BadCiphertext);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(CryptoError::BadCiphertext);
        }
        let m = c.modpow(&self.d, &self.public.n)?;
        let em = m
            .to_bytes_be_padded(k)
            .map_err(|_| CryptoError::BadCiphertext)?;
        if em.len() < 11 || em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::BadCiphertext);
        }
        // Find the 0x00 separator after at least 8 padding bytes.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::BadCiphertext)?;
        if sep < 8 {
            return Err(CryptoError::BadCiphertext);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Deterministic binary encoding (includes public key fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_field(&mut out, &self.public.n);
        push_field(&mut out, &self.public.e);
        push_field(&mut out, &self.d);
        push_field(&mut out, &self.p);
        push_field(&mut out, &self.q);
        out
    }

    /// Decode from [`RsaPrivateKey::encode`] output, checking consistency.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut cursor = 0usize;
        let n = read_field(data, &mut cursor)?;
        let e = read_field(data, &mut cursor)?;
        let d = read_field(data, &mut cursor)?;
        let p = read_field(data, &mut cursor)?;
        let q = read_field(data, &mut cursor)?;
        if cursor != data.len() {
            return Err(CryptoError::Decode("trailing bytes after private key".into()));
        }
        if p.mul(&q) != n {
            return Err(CryptoError::InvalidKey("p*q != n".into()));
        }
        Ok(RsaPrivateKey { public: RsaPublicKey::new(n, e)?, d, p, q })
    }
}

impl RsaKeyPair {
    /// Generate a fresh key pair with modulus of roughly `bits` bits.
    ///
    /// # Errors
    /// Propagates prime-generation failure (statistically unreachable) and
    /// rejects `bits < 64`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<Self> {
        if bits < 64 {
            return Err(CryptoError::InvalidKey(format!(
                "modulus {bits} bits too small (min 64)"
            )));
        }
        let e = BigUint::from_u64(DEFAULT_E);
        loop {
            let p = generate_prime(rng, bits / 2)?;
            let q = generate_prime(rng, bits - bits / 2)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            if phi.gcd(&e)? != BigUint::one() {
                continue;
            }
            let d = e.mod_inverse(&phi)?;
            let public = RsaPublicKey::new(n, e.clone())?;
            let private = RsaPrivateKey { public: public.clone(), d, p, q };
            return Ok(RsaKeyPair { public, private });
        }
    }
}

/// PKCS#1-v1.5-style EMSA padding: 00 01 FF..FF 00 prefix || SHA-256(msg).
fn encode_signature_padding(message: &[u8], k: usize) -> Result<Vec<u8>> {
    let digest = Sha256::digest(message);
    let t_len = SHA256_PREFIX.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::InvalidKey(format!(
            "modulus {k} bytes too small for signature encoding"
        )));
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(SHA256_PREFIX);
    em.extend_from_slice(&digest);
    Ok(em)
}

fn push_field(out: &mut Vec<u8>, v: &BigUint) {
    let bytes = v.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&bytes);
}

fn read_field(data: &[u8], cursor: &mut usize) -> Result<BigUint> {
    if data.len() < *cursor + 4 {
        return Err(CryptoError::Decode("truncated length prefix".into()));
    }
    let len = u32::from_be_bytes([
        data[*cursor],
        data[*cursor + 1],
        data[*cursor + 2],
        data[*cursor + 3],
    ]) as usize;
    *cursor += 4;
    if data.len() < *cursor + len {
        return Err(CryptoError::Decode("truncated field body".into()));
    }
    let v = BigUint::from_bytes_be(&data[*cursor..*cursor + len]);
    *cursor += len;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn test_keypair(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(&mut seeded(seed), 512).expect("keygen")
    }

    #[test]
    fn generate_reasonable_key() {
        let kp = test_keypair(1);
        assert!(kp.public.bits() >= 505 && kp.public.bits() <= 512);
        assert_eq!(kp.public, *kp.private.public());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = test_keypair(2);
        let msg = b"GridFTP control channel transcript";
        let sig = kp.private.sign(msg).unwrap();
        assert_eq!(sig.len(), kp.public.byte_len());
        kp.public.verify(msg, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_tampering() {
        let kp = test_keypair(3);
        let sig = kp.private.sign(b"message").unwrap();
        assert!(kp.public.verify(b"message2", &sig).is_err());
        let mut bad = sig.clone();
        bad[10] ^= 1;
        assert!(kp.public.verify(b"message", &bad).is_err());
        assert!(kp.public.verify(b"message", &sig[..sig.len() - 1]).is_err());
        // Signature from a different key fails.
        let other = test_keypair(4);
        let sig2 = other.private.sign(b"message").unwrap();
        assert!(kp.public.verify(b"message", &sig2).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = test_keypair(5);
        let mut rng = seeded(50);
        let secret = b"pre-master-secret-32-bytes......";
        let ct = kp.public.encrypt(&mut rng, secret).unwrap();
        assert_eq!(ct.len(), kp.public.byte_len());
        assert_eq!(kp.private.decrypt(&ct).unwrap(), secret);
    }

    #[test]
    fn encrypt_is_randomized() {
        let kp = test_keypair(6);
        let mut rng = seeded(60);
        let a = kp.public.encrypt(&mut rng, b"same").unwrap();
        let b = kp.public.encrypt(&mut rng, b"same").unwrap();
        assert_ne!(a, b);
        assert_eq!(kp.private.decrypt(&a).unwrap(), b"same");
        assert_eq!(kp.private.decrypt(&b).unwrap(), b"same");
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let kp = test_keypair(7);
        assert!(kp.private.decrypt(&[0u8; 10]).is_err());
        let garbage = vec![0xaau8; kp.public.byte_len()];
        assert!(kp.private.decrypt(&garbage).is_err());
    }

    #[test]
    fn plaintext_too_long_rejected() {
        let kp = test_keypair(8);
        let mut rng = seeded(80);
        let too_long = vec![1u8; kp.public.byte_len() - 10];
        assert!(kp.public.encrypt(&mut rng, &too_long).is_err());
    }

    #[test]
    fn key_encoding_roundtrip() {
        let kp = test_keypair(9);
        let pub_enc = kp.public.encode();
        assert_eq!(RsaPublicKey::decode(&pub_enc).unwrap(), kp.public);
        let priv_enc = kp.private.encode();
        assert_eq!(RsaPrivateKey::decode(&priv_enc).unwrap(), kp.private);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(RsaPublicKey::decode(&[1, 2, 3]).is_err());
        let kp = test_keypair(10);
        let mut enc = kp.public.encode();
        enc.push(0); // trailing byte
        assert!(RsaPublicKey::decode(&enc).is_err());
        // Corrupt the private key's q so p*q != n.
        let mut penc = kp.private.encode();
        let last = penc.len() - 1;
        penc[last] ^= 0xff;
        assert!(RsaPrivateKey::decode(&penc).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let a = test_keypair(11);
        let b = test_keypair(12);
        assert_eq!(a.public.fingerprint(), a.public.fingerprint());
        assert_ne!(a.public.fingerprint(), b.public.fingerprint());
        assert_eq!(a.public.fingerprint().len(), 16);
    }

    #[test]
    fn debug_does_not_leak_private_key() {
        let kp = test_keypair(13);
        let s = format!("{:?}", kp.private);
        assert!(s.contains("bits"));
        assert!(!s.contains("limbs"));
    }

    #[test]
    fn small_modulus_rejected() {
        assert!(RsaKeyPair::generate(&mut seeded(14), 32).is_err());
        assert!(RsaPublicKey::new(BigUint::from_u64(15), BigUint::from_u64(3)).is_err());
        // Even exponent rejected.
        let kp = test_keypair(15);
        let n = BigUint::from_bytes_be(&kp.public.encode()[4..4 + kp.public.byte_len()]);
        assert!(RsaPublicKey::new(n, BigUint::from_u64(4)).is_err());
    }
}
