//! HKDF-SHA256 (RFC 5869) — the GSI handshake key schedule.
//!
//! After the handshake both peers derive the four directional record keys
//! (client→server / server→client, encryption / MAC) from the shared
//! pre-master secret and the exchanged nonces via `extract` + `expand`.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: compress input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: stretch a PRK into `len` bytes bound to `info`.
///
/// # Panics
/// Panics if `len > 255 * 32` (RFC 5869 limit) — callers in this codebase
/// only ever derive a few hundred bytes.
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF expand length too large");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// Extract-then-expand in one call.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{hex_decode, hex_encode};

    // RFC 5869 Appendix A test vectors.
    #[test]
    fn rfc5869_case1() {
        let ikm = vec![0x0bu8; 22];
        let salt = hex_decode("000102030405060708090a0b0c").unwrap();
        let info = hex_decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex_encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex_encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case3_zero_salt_info() {
        let ikm = vec![0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex_encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = extract(b"salt", b"key");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(expand(&prk, b"info", len).len(), len);
        }
        // Prefix property: shorter output is a prefix of longer output.
        let long = expand(&prk, b"info", 96);
        let short = expand(&prk, b"info", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    fn different_info_different_keys() {
        let prk = extract(b"s", b"ikm");
        assert_ne!(expand(&prk, b"c2s", 32), expand(&prk, b"s2c", 32));
    }
}
