//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! Used for certificate digests, GSI transcript hashes, HMAC, and HKDF.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (needed by HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use ig_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let d = h.finalize();
/// assert_eq!(ig_crypto::encode::hex_encode(&d),
///            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0u8; BLOCK_LEN], buf_len: 0 }
    }

    /// Absorb `data` into the hash state.
    ///
    /// Whole blocks compress directly from the input slice; only
    /// sub-block tails touch the internal buffer, so large updates (the
    /// HMAC over every sealed record) perform no intermediate copies.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                compress(&mut self.state, &self.buf);
                self.buf_len = 0;
            }
        }
        let mut blocks = rest.chunks_exact(BLOCK_LEN);
        for block in &mut blocks {
            compress(&mut self.state, block.try_into().expect("64-byte block"));
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Finish hashing and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding();
        let mut lenb = [0u8; 8];
        lenb.copy_from_slice(&bit_len.to_be_bytes());
        // After update_padding there are exactly 56 bytes buffered.
        self.buf[56..64].copy_from_slice(&lenb);
        compress(&mut self.state, &self.buf);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    fn update_padding(&mut self) {
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > 56 {
            for b in &mut self.buf[self.buf_len..] {
                *b = 0;
            }
            compress(&mut self.state, &self.buf);
            self.buf_len = 0;
        }
        for b in &mut self.buf[self.buf_len..56] {
            *b = 0;
        }
        self.buf_len = 56;
    }
}

/// One FIPS 180-4 compression round. A free function over disjoint
/// borrows of state and block so callers can compress straight out of an
/// input slice (or the hasher's own buffer) without an intermediate copy.
fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::hex_encode;

    // NIST / well-known test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex_encode(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex_encode(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_encode(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_encode(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..10_000).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "chunk={chunk}");
        }
    }

    #[test]
    fn length_padding_boundary() {
        // Messages of length 55, 56, 57, 63, 64 hit different padding paths.
        for n in [55usize, 56, 57, 63, 64, 119, 120] {
            let data = vec![0xabu8; n];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), d1, "len={n}");
        }
    }
}
