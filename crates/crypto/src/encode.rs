//! Text codecs: hex, base64 (RFC 4648) and PEM framing.
//!
//! §V of the paper requires DCSC blobs to be "composed of only printable
//! ASCII (32–126) characters, such as base64 encoding would produce", and
//! the blob itself carries certificates and keys in PEM format. Both codecs
//! live here.

use crate::error::{CryptoError, Result};

const B64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decode a hex string (case-insensitive, even length).
pub fn hex_decode(s: &str) -> Result<Vec<u8>> {
    let bytes = s.as_bytes();
    if bytes.len() % 2 != 0 {
        return Err(CryptoError::Decode("hex string has odd length".into()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| CryptoError::Decode(format!("bad hex char {:?}", pair[0] as char)))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| CryptoError::Decode(format!("bad hex char {:?}", pair[1] as char)))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Encode bytes as standard base64 with `=` padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(B64_ALPHABET[(n >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(B64_ALPHABET[n as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn b64_value(c: u8) -> Result<u32> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
        b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(CryptoError::Decode(format!("bad base64 char {:?}", c as char))),
    }
}

/// Decode standard base64. Whitespace (spaces, newlines) is ignored so PEM
/// bodies decode directly.
pub fn base64_decode(s: &str) -> Result<Vec<u8>> {
    let filtered: Vec<u8> = s
        .bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    if filtered.len() % 4 != 0 {
        return Err(CryptoError::Decode("base64 length not a multiple of 4".into()));
    }
    let mut out = Vec::with_capacity(filtered.len() / 4 * 3);
    for (i, quad) in filtered.chunks_exact(4).enumerate() {
        let last = i == filtered.len() / 4 - 1;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 0 && !last {
            return Err(CryptoError::Decode("padding in middle of base64".into()));
        }
        if pad > 2 || (quad[0] == b'=' || quad[1] == b'=') {
            return Err(CryptoError::Decode("malformed base64 padding".into()));
        }
        if quad[2] == b'=' && quad[3] != b'=' {
            return Err(CryptoError::Decode("malformed base64 padding".into()));
        }
        let v0 = b64_value(quad[0])?;
        let v1 = b64_value(quad[1])?;
        let v2 = if quad[2] == b'=' { 0 } else { b64_value(quad[2])? };
        let v3 = if quad[3] == b'=' { 0 } else { b64_value(quad[3])? };
        let n = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// A single PEM block: `-----BEGIN <label>----- ... -----END <label>-----`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PemBlock {
    /// Block label, e.g. `CERTIFICATE` or `PRIVATE KEY`.
    pub label: String,
    /// Decoded body bytes.
    pub data: Vec<u8>,
}

/// Encode one PEM block with 64-column wrapped base64.
pub fn pem_encode(label: &str, data: &[u8]) -> String {
    let b64 = base64_encode(data);
    let mut out = String::with_capacity(b64.len() + label.len() * 2 + 40);
    out.push_str("-----BEGIN ");
    out.push_str(label);
    out.push_str("-----\n");
    for line in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(line).expect("base64 is ascii"));
        out.push('\n');
    }
    out.push_str("-----END ");
    out.push_str(label);
    out.push_str("-----\n");
    out
}

/// Parse *all* PEM blocks in `text`, in order. Text outside blocks is
/// ignored (matching OpenSSL behaviour, which the paper's DCSC blob format
/// relies on: "additional X.509 certificates in PEM format, unordered").
pub fn pem_decode_all(text: &str) -> Result<Vec<PemBlock>> {
    let mut blocks = Vec::new();
    let mut label: Option<String> = None;
    let mut body = String::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("-----BEGIN ") {
            let lab = rest
                .strip_suffix("-----")
                .ok_or_else(|| CryptoError::Decode("bad PEM BEGIN line".into()))?;
            if label.is_some() {
                return Err(CryptoError::Decode("nested PEM BEGIN".into()));
            }
            label = Some(lab.to_string());
            body.clear();
        } else if let Some(rest) = line.strip_prefix("-----END ") {
            let lab = rest
                .strip_suffix("-----")
                .ok_or_else(|| CryptoError::Decode("bad PEM END line".into()))?;
            match label.take() {
                Some(ref open) if open == lab => {
                    blocks.push(PemBlock { label: lab.to_string(), data: base64_decode(&body)? });
                }
                Some(open) => {
                    return Err(CryptoError::Decode(format!(
                        "PEM END label {lab:?} does not match BEGIN {open:?}"
                    )))
                }
                None => return Err(CryptoError::Decode("PEM END without BEGIN".into())),
            }
        } else if label.is_some() {
            body.push_str(line);
        }
    }
    if label.is_some() {
        return Err(CryptoError::Decode("unterminated PEM block".into()));
    }
    Ok(blocks)
}

/// Parse exactly one PEM block with the given label.
pub fn pem_decode_one(text: &str, want_label: &str) -> Result<Vec<u8>> {
    let blocks = pem_decode_all(text)?;
    blocks
        .into_iter()
        .find(|b| b.label == want_label)
        .map(|b| b.data)
        .ok_or_else(|| CryptoError::Decode(format!("no PEM block labelled {want_label:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        let s = hex_encode(&data);
        assert_eq!(s, "00017f80ff");
        assert_eq!(hex_decode(&s).unwrap(), data);
        assert_eq!(hex_decode("00017F80FF").unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    // RFC 4648 §10 vectors.
    #[test]
    fn base64_rfc4648_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(base64_encode(plain.as_bytes()), *enc);
            assert_eq!(base64_decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn base64_ignores_whitespace() {
        assert_eq!(base64_decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Z m 9 v").unwrap(), b"foo");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("Zm9").is_err()); // bad length
        assert!(base64_decode("Zm9!").is_err()); // bad char
        assert!(base64_decode("=m9v").is_err()); // leading pad
        assert!(base64_decode("Zm==Zm9v").is_err()); // pad in middle
        assert!(base64_decode("Zm9=Zm9v").is_err());
    }

    #[test]
    fn base64_is_printable_ascii() {
        // The DCSC requirement: printable ASCII 32..=126 only.
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        for c in base64_encode(&data).bytes() {
            assert!((32..=126).contains(&c));
        }
    }

    #[test]
    fn pem_roundtrip() {
        let data = vec![1u8, 2, 3, 200, 255];
        let pem = pem_encode("CERTIFICATE", &data);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        let blocks = pem_decode_all(&pem).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].label, "CERTIFICATE");
        assert_eq!(blocks[0].data, data);
    }

    #[test]
    fn pem_multiple_blocks_and_noise() {
        let text = format!(
            "junk before\n{}middle text\n{}",
            pem_encode("CERTIFICATE", b"cert-one"),
            pem_encode("PRIVATE KEY", b"key-bytes")
        );
        let blocks = pem_decode_all(&text).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].data, b"cert-one");
        assert_eq!(blocks[1].label, "PRIVATE KEY");
        assert_eq!(pem_decode_one(&text, "PRIVATE KEY").unwrap(), b"key-bytes");
        assert!(pem_decode_one(&text, "CRL").is_err());
    }

    #[test]
    fn pem_rejects_mismatched_labels() {
        let bad = "-----BEGIN A-----\nZm9v\n-----END B-----\n";
        assert!(pem_decode_all(bad).is_err());
        assert!(pem_decode_all("-----BEGIN A-----\nZm9v\n").is_err());
        assert!(pem_decode_all("-----END A-----\n").is_err());
    }

    #[test]
    fn pem_long_body_wraps() {
        let data = vec![7u8; 1000];
        let pem = pem_encode("X", &data);
        for line in pem.lines() {
            assert!(line.len() <= 64 || line.starts_with("-----"));
        }
        assert_eq!(pem_decode_one(&pem, "X").unwrap(), data);
    }
}
