//! HMAC-SHA256 (RFC 2104).
//!
//! Used for GSI record MACs (`PROT S` integrity mode and the MAC half of
//! `PROT P`), for the handshake Finished messages, and inside HKDF.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// A reusable HMAC-SHA256 key: the ipad/opad block compressions are done
/// once here, so a long-lived key (one per sealed-record direction) pays
/// two SHA-256 blocks at construction instead of on every MAC.
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after absorbing `key ^ ipad`.
    inner_init: Sha256,
    /// SHA-256 state after absorbing `key ^ opad`.
    outer_init: Sha256,
}

impl HmacKey {
    /// Precompute the inner/outer states for `key` (any length; keys
    /// longer than the block size are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = Sha256::digest(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner_init = Sha256::new();
        inner_init.update(&ipad);
        let mut outer_init = Sha256::new();
        outer_init.update(&opad);
        HmacKey { inner_init, outer_init }
    }

    /// Start an incremental MAC under this key (allocation-free: clones
    /// two fixed-size hash states).
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner_init.clone(), outer_init: self.outer_init.clone() }
    }

    /// MAC a single message.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.begin();
        h.update(data);
        h.finalize()
    }

    /// Verify a tag in constant time.
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&self.mac(data), tag)
    }
}

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_init: Sha256,
}

impl HmacSha256 {
    /// Create an HMAC instance keyed with `key` (any length; keys longer
    /// than the block size are hashed first, per RFC 2104). For repeated
    /// MACs under one key, build an [`HmacKey`] once and call
    /// [`HmacKey::begin`]/[`HmacKey::mac`] instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer_init;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot HMAC.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verify a tag in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{hex_decode, hex_encode};

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex_encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = vec![0xaau8; 20];
        let data = vec![0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex_encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = vec![0xaau8; 131];
        let tag = HmacSha256::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex_encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = vec![0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = HmacSha256::mac(&key, data);
        assert_eq!(
            hex_encode(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"msg");
        assert!(HmacSha256::verify(b"k", b"msg", &tag));
        assert!(!HmacSha256::verify(b"k", b"msg2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"msg", &bad));
        assert!(!HmacSha256::verify(b"k", b"msg", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = hex_decode("000102030405").unwrap();
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let mut h = HmacSha256::new(&key);
        for c in data.chunks(7) {
            h.update(c);
        }
        assert_eq!(h.finalize(), HmacSha256::mac(&key, &data));
    }

    #[test]
    fn reusable_key_matches_oneshot() {
        for key_len in [0usize, 1, 20, 64, 131] {
            let key = vec![0xaau8; key_len];
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 55, 64, 200] {
                let msg = vec![0x5du8; msg_len];
                assert_eq!(
                    hk.mac(&msg),
                    HmacSha256::mac(&key, &msg),
                    "key_len={key_len} msg_len={msg_len}"
                );
                assert!(hk.verify(&msg, &hk.mac(&msg)));
                assert!(!hk.verify(&msg, &[0u8; 32]));
            }
            // The key is reusable: a second MAC of the same message agrees.
            assert_eq!(hk.mac(b"again"), hk.mac(b"again"));
        }
    }
}
