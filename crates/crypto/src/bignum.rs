//! Arbitrary-precision unsigned integers for RSA.
//!
//! Little-endian `u64` limbs, normalized (no trailing zero limbs; zero is
//! the empty limb vector). Division is Knuth TAOCP vol. 2 Algorithm D;
//! modular exponentiation is left-to-right square-and-multiply with
//! division-based reduction, which is more than fast enough for the
//! 512–2048-bit moduli this repository uses.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{CryptoError, Result};

/// Arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Minimal big-endian byte representation (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Errors
    /// Returns [`CryptoError::Arithmetic`] if the value needs more than
    /// `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(CryptoError::Arithmetic(format!(
                "value needs {} bytes, caller allowed {}",
                raw.len(),
                len
            )));
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the low bit is clear (0 counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (LSB = bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        self.limbs
            .get(limb)
            .map_or(false, |l| (l >> (i % 64)) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = *short.get(i).unwrap_or(&0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`, or `None` if it would underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics on underflow; use [`BigUint::checked_sub`] for fallible code.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self * other` (schoolbook; fine at RSA sizes).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Arithmetic`] if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint)> {
        if divisor.is_zero() {
            return Err(CryptoError::Arithmetic("division by zero".into()));
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return Ok((q, BigUint::from_u64(r)));
        }
        Ok(self.div_rem_knuth(divisor))
    }

    /// `self mod divisor`.
    pub fn rem(&self, divisor: &BigUint) -> Result<BigUint> {
        Ok(self.div_rem(divisor)?.1)
    }

    fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut n = BigUint { limbs: q };
        n.normalize();
        (n, rem as u64)
    }

    /// Knuth Algorithm D. Precondition: divisor has ≥ 2 limbs, self ≥ divisor.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        let n = v.len();
        let m = u.len() - n;
        u.push(0); // extra high limb for the algorithm
        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_second = v[n - 2];
        for j in (0..=m).rev() {
            let numerator = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            // Refine qhat: at most two corrections needed (TAOCP D3).
            while qhat >= 1u128 << 64
                || qhat * v_second as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;
            q[j] = qhat as u64;
            if borrow < 0 {
                // qhat was one too large: add back (TAOCP D6).
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: u[..n].to_vec() };
        rem.normalize();
        let rem = rem.shr(shift);
        (quotient, rem)
    }

    /// Modular exponentiation: `self^exp mod modulus`.
    ///
    /// # Errors
    /// Returns [`CryptoError::Arithmetic`] if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> Result<BigUint> {
        if modulus.is_zero() {
            return Err(CryptoError::Arithmetic("modpow modulus is zero".into()));
        }
        if modulus.is_one() {
            return Ok(BigUint::zero());
        }
        let mut base = self.rem(modulus)?;
        let mut result = BigUint::one();
        let bits = exp.bit_len();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.mul(&base).rem(modulus)?;
            }
            if i + 1 < bits {
                base = base.mul(&base).rem(modulus)?;
            }
        }
        Ok(result)
    }

    /// Greatest common divisor (binary-free Euclid; division is fast here).
    pub fn gcd(&self, other: &BigUint) -> Result<BigUint> {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b)?;
            a = b;
            b = r;
        }
        Ok(a)
    }

    /// Modular inverse of `self` mod `m` via extended Euclid.
    ///
    /// # Errors
    /// Returns [`CryptoError::Arithmetic`] if `gcd(self, m) != 1` or `m < 2`.
    pub fn mod_inverse(&self, m: &BigUint) -> Result<BigUint> {
        if m.bit_len() < 2 {
            return Err(CryptoError::Arithmetic("modulus must be >= 2".into()));
        }
        // Track coefficients as (magnitude, is_negative) pairs.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m)?;
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1)?;
            // t2 = t0 - q * t1 (signed arithmetic on magnitudes).
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(CryptoError::Arithmetic("no modular inverse (gcd != 1)".into()));
        }
        let (mag, neg) = t0;
        let inv = if neg { m.sub(&mag.rem(m)?) } else { mag.rem(m)? };
        // m - 0 == m; re-reduce to keep the result canonical.
        inv.rem(m)
    }

    /// Uniformly random value with exactly `bits` significant bits
    /// (top bit set), using the supplied RNG.
    pub fn random_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0, "cannot generate 0-bit number");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        let top = &mut v[limbs - 1];
        *top &= mask;
        *top |= 1u64 << (top_bits - 1); // force exact bit length
        let mut n = BigUint { limbs: v };
        n.normalize();
        n
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_len();
        loop {
            let limbs = bits.div_ceil(64);
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs - 1) * 64;
            let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
            v[limbs - 1] &= mask;
            let mut n = BigUint { limbs: v };
            n.normalize();
            if &n < bound {
                return n;
            }
        }
    }
}

/// Signed subtraction on (magnitude, negative) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with same effective signs: combine magnitudes.
        (false, true) => (a.0.add(&b.0), false),  // a - (-b) = a + b
        (true, false) => (a.0.add(&b.0), true),   // -a - b = -(a+b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "BigUint(0x0)");
        }
        write!(f, "BigUint(0x{}", crate::encode::hex_encode(&self.to_bytes_be()))?;
        write!(f, ")")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            digits.push(r.to_string());
            cur = q;
        }
        let mut out = String::new();
        for (i, d) in digits.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(d);
            } else {
                out.push_str(&format!("{d:0>19}"));
            }
        }
        write!(f, "{out}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_bytes() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0]), BigUint::zero());
        let x = BigUint::from_bytes_be(&[1, 0]);
        assert_eq!(x, n(256));
        assert_eq!(x.to_bytes_be(), vec![1, 0]);
        assert_eq!(n(0x1234).to_bytes_be(), vec![0x12, 0x34]);
        // Multi-limb roundtrip.
        let big = BigUint::from_bytes_be(&[0xff; 25]);
        assert_eq!(big.to_bytes_be(), vec![0xff; 25]);
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(n(0x1234).to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(2).unwrap(), vec![0, 0]);
        assert!(n(0x123456).to_bytes_be_padded(2).is_err());
    }

    #[test]
    fn bit_accessors() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!(n(256).bit_len(), 9);
        let x = BigUint::one().shl(127);
        assert_eq!(x.bit_len(), 128);
        assert!(x.bit(127));
        assert!(!x.bit(126));
        assert!(!x.bit(500));
        assert!(n(6).is_even());
        assert!(!n(7).is_even());
        assert!(BigUint::zero().is_even());
    }

    #[test]
    fn add_sub_basic() {
        assert_eq!(n(2).add(&n(3)), n(5));
        assert_eq!(n(u64::MAX).add(&n(1)), BigUint::one().shl(64));
        assert_eq!(n(5).sub(&n(3)), n(2));
        assert_eq!(n(5).sub(&n(5)), BigUint::zero());
        assert_eq!(BigUint::one().shl(64).sub(&n(1)), n(u64::MAX));
        assert!(n(3).checked_sub(&n(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(n(6).mul(&n(7)), n(42));
        assert_eq!(n(0).mul(&n(7)), BigUint::zero());
        let x = n(u64::MAX);
        let sq = x.mul(&x);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&n(1));
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(3), n(8));
        assert_eq!(n(8).shr(3), n(1));
        assert_eq!(n(1).shl(64).shr(64), n(1));
        assert_eq!(n(1).shl(65).shr(1), BigUint::one().shl(64));
        assert_eq!(n(0xff).shl(0), n(0xff));
        assert_eq!(n(0xff).shr(0), n(0xff));
        assert_eq!(n(0xff).shr(100), BigUint::zero());
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = n(17).div_rem(&n(5)).unwrap();
        assert_eq!((q, r), (n(3), n(2)));
        let (q, r) = n(5).div_rem(&n(17)).unwrap();
        assert_eq!((q, r), (BigUint::zero(), n(5)));
        assert!(n(5).div_rem(&BigUint::zero()).is_err());
    }

    #[test]
    fn div_rem_multi_limb() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let abits = 1 + (rng.gen::<usize>() % 512);
            let bbits = 1 + (rng.gen::<usize>() % 320);
            let a = BigUint::random_bits(&mut rng, abits);
            let b = BigUint::random_bits(&mut rng, bbits);
            let (q, r) = a.div_rem(&b).unwrap();
            assert!(r < b, "remainder must be < divisor");
            assert_eq!(q.mul(&b).add(&r), a, "a = q*b + r");
        }
    }

    #[test]
    fn div_rem_knuth_addback_path() {
        // Construct a case known to trigger the rare D6 add-back step:
        // u = b^2/2, v slightly above b/2 style values.
        let b64 = BigUint::one().shl(64);
        let u = b64.shl(64).sub(&BigUint::one().shl(32)); // 2^128 - 2^32
        let v = b64.sub(&n(1)); // 2^64 - 1
        let (q, r) = u.div_rem(&v).unwrap();
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn modpow_known_values() {
        // 4^13 mod 497 = 445 (classic example)
        assert_eq!(n(4).modpow(&n(13), &n(497)).unwrap(), n(445));
        // Fermat: 2^(p-1) mod p = 1 for prime p
        assert_eq!(n(2).modpow(&n(1008), &n(1009)).unwrap(), n(1));
        // exponent zero
        assert_eq!(n(7).modpow(&BigUint::zero(), &n(13)).unwrap(), n(1));
        // modulus one
        assert_eq!(n(7).modpow(&n(3), &n(1)).unwrap(), BigUint::zero());
        assert!(n(7).modpow(&n(3), &BigUint::zero()).is_err());
    }

    #[test]
    fn modpow_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let base = BigUint::random_bits(&mut rng, 40);
            let exp = rng.gen::<u64>() % 50;
            let m = BigUint::random_bits(&mut rng, 50);
            let fast = base.modpow(&n(exp), &m).unwrap();
            let mut naive = BigUint::one().rem(&m).unwrap();
            for _ in 0..exp {
                naive = naive.mul(&base).rem(&m).unwrap();
            }
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(n(12).gcd(&n(18)).unwrap(), n(6));
        assert_eq!(n(17).gcd(&n(31)).unwrap(), n(1));
        assert_eq!(BigUint::zero().gcd(&n(5)).unwrap(), n(5));
        let inv = n(3).mod_inverse(&n(11)).unwrap();
        assert_eq!(inv, n(4)); // 3*4 = 12 ≡ 1 mod 11
        assert!(n(4).mod_inverse(&n(8)).is_err()); // gcd 4
        assert!(n(3).mod_inverse(&n(1)).is_err());
    }

    #[test]
    fn mod_inverse_random() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let m = BigUint::random_bits(&mut rng, 128);
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() || a.gcd(&m).unwrap() != BigUint::one() {
                continue;
            }
            let inv = a.mod_inverse(&m).unwrap();
            assert_eq!(a.mul(&inv).rem(&m).unwrap(), BigUint::one());
            assert!(inv < m);
        }
    }

    #[test]
    fn ordering() {
        assert!(n(1) < n(2));
        assert!(BigUint::one().shl(64) > n(u64::MAX));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1usize, 8, 63, 64, 65, 256, 511] {
            let x = BigUint::random_bits(&mut rng, bits);
            assert_eq!(x.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let bound = n(1000);
        for _ in 0..100 {
            let x = BigUint::random_below(&mut rng, &bound);
            assert!(x < bound);
        }
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(n(1234567890).to_string(), "1234567890");
        // 2^64 = 18446744073709551616
        assert_eq!(BigUint::one().shl(64).to_string(), "18446744073709551616");
        // 10^19 boundary
        assert_eq!(
            n(10_000_000_000_000_000_000).to_string(),
            "10000000000000000000"
        );
    }
}
