//! Probabilistic prime generation for RSA key material.
//!
//! Miller–Rabin with trial division pre-sieving. Witness count follows the
//! usual "error < 4^-k" bound; 20 rounds is far beyond what key sizes here
//! require.

use crate::bignum::BigUint;
use crate::error::{CryptoError, Result};
use rand::Rng;

/// Small primes used for fast trial-division rejection.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Number of Miller–Rabin rounds.
pub const MR_ROUNDS: usize = 20;

/// Miller–Rabin primality test with `rounds` random witnesses.
///
/// Deterministically correct answers for n < 212 via the sieve; for larger
/// `n`, "true" means "probably prime" with error ≤ 4^-rounds.
pub fn is_probably_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n == &two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        if n == &bp {
            return true;
        }
        if n.rem(&bp).expect("nonzero divisor").is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let n_minus_3 = n.sub(&BigUint::from_u64(3));
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3).add(&two);
        let mut x = a.modpow(&d, n).expect("modulus nonzero");
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul(&x).rem(n).expect("modulus nonzero");
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime of exactly `bits` bits.
///
/// # Errors
/// Returns [`CryptoError::GenerationFailed`] if no prime is found within a
/// generous attempt budget (statistically unreachable for `bits ≥ 16`).
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<BigUint> {
    if bits < 8 {
        return Err(CryptoError::GenerationFailed(format!(
            "prime size {bits} bits too small (min 8)"
        )));
    }
    // Expected number of candidates is O(bits/ln 2); budget generously.
    let budget = bits * 40;
    for _ in 0..budget {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bit_len() != bits {
                continue; // overflow to bits+1, retry
            }
        }
        if is_probably_prime(&candidate, MR_ROUNDS, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::GenerationFailed(format!(
        "no {bits}-bit prime found in {budget} attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_values() {
        let mut rng = seeded(1);
        assert!(!is_probably_prime(&n(0), 10, &mut rng));
        assert!(!is_probably_prime(&n(1), 10, &mut rng));
        assert!(is_probably_prime(&n(2), 10, &mut rng));
        assert!(is_probably_prime(&n(3), 10, &mut rng));
        assert!(!is_probably_prime(&n(4), 10, &mut rng));
        assert!(is_probably_prime(&n(5), 10, &mut rng));
    }

    #[test]
    fn known_primes_and_composites() {
        let mut rng = seeded(2);
        for p in [101u64, 257, 65537, 1_000_003, 2_147_483_647] {
            assert!(is_probably_prime(&n(p), MR_ROUNDS, &mut rng), "{p} is prime");
        }
        for c in [100u64, 255, 65535, 1_000_001, 2_147_483_649] {
            assert!(!is_probably_prime(&n(c), MR_ROUNDS, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = seeded(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041] {
            assert!(!is_probably_prime(&n(c), MR_ROUNDS, &mut rng), "{c} is Carmichael");
        }
    }

    #[test]
    fn large_known_prime() {
        let mut rng = seeded(4);
        // 2^127 - 1 is a Mersenne prime.
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probably_prime(&m127, MR_ROUNDS, &mut rng));
        // 2^128 - 1 = 3 * 5 * 17 * ... is composite.
        let m128 = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probably_prime(&m128, MR_ROUNDS, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = seeded(5);
        for bits in [16usize, 64, 128, 256] {
            let p = generate_prime(&mut rng, bits).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(is_probably_prime(&p, MR_ROUNDS, &mut rng));
        }
    }

    #[test]
    fn tiny_request_rejected() {
        let mut rng = seeded(6);
        assert!(generate_prime(&mut rng, 4).is_err());
    }
}
