//! Property-based tests for the cryptographic substrate.

use ig_crypto::bignum::BigUint;
use ig_crypto::chacha20::ChaCha20;
use ig_crypto::encode::{
    base64_decode, base64_encode, hex_decode, hex_encode, pem_decode_all, pem_encode,
};
use ig_crypto::hmac::HmacSha256;
use ig_crypto::sha256::Sha256;
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|b| BigUint::from_bytes_be(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = n.to_bytes_be();
        // Minimal representation: strip leading zeros from input.
        let stripped: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
        prop_assert_eq!(back, stripped);
    }

    #[test]
    fn add_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_then_sub_is_identity(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn div_rem_invariant(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shl_shr_inverse(a in biguint_strategy(), bits in 0usize..200) {
        prop_assert_eq!(a.shl(bits).shr(bits), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint_strategy(), bits in 0usize..100) {
        prop_assert_eq!(a.shl(bits), a.mul(&BigUint::one().shl(bits)));
    }

    #[test]
    fn modpow_fermat_like(a in biguint_strategy()) {
        // a^1 mod m == a mod m for any m >= 2
        let m = BigUint::from_u64(1_000_003);
        let lhs = a.modpow(&BigUint::one(), &m).unwrap();
        prop_assert_eq!(lhs, a.rem(&m).unwrap());
    }

    #[test]
    fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn base64_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let enc = base64_encode(&bytes);
        prop_assert!(enc.bytes().all(|c| (32..=126).contains(&c)));
        prop_assert_eq!(base64_decode(&enc).unwrap(), bytes);
    }

    #[test]
    fn pem_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let pem = pem_encode("TEST BLOCK", &bytes);
        let blocks = pem_decode_all(&pem).unwrap();
        prop_assert_eq!(blocks.len(), 1);
        prop_assert_eq!(&blocks[0].data, &bytes);
    }

    #[test]
    fn chacha_involution(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let ct = ChaCha20::xor(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::xor(&key, &nonce, &ct), data);
    }

    #[test]
    fn chacha_chunked_equals_oneshot(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 1..400),
        chunk in 1usize..64,
    ) {
        let whole = ChaCha20::xor(&key, &nonce, &data);
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut pieces = data.clone();
        for c in pieces.chunks_mut(chunk) {
            cipher.apply(c);
        }
        prop_assert_eq!(pieces, whole);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..1000),
        split in 0usize..1000,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_verify_accepts_own_tags(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let tag = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &tag));
    }

    #[test]
    fn hmac_detects_flipped_bit(
        key in proptest::collection::vec(any::<u8>(), 1..50),
        data in proptest::collection::vec(any::<u8>(), 1..200),
        byte in 0usize..200,
        bit in 0u8..8,
    ) {
        let byte = byte % data.len();
        let tag = HmacSha256::mac(&key, &data);
        let mut tampered = data.clone();
        tampered[byte] ^= 1 << bit;
        prop_assert!(!HmacSha256::verify(&key, &tampered, &tag));
    }
}

/// RSA roundtrips are slow per-case, so run a handful of cases outside
/// proptest with varied deterministic seeds.
#[test]
fn rsa_sign_verify_many_messages() {
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;
    let kp = RsaKeyPair::generate(&mut seeded(1234), 512).unwrap();
    for len in [0usize, 1, 16, 100, 1000] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
        let sig = kp.private.sign(&msg).unwrap();
        kp.public.verify(&msg, &sig).unwrap();
        if !msg.is_empty() {
            let mut bad = msg.clone();
            bad[0] ^= 1;
            assert!(kp.public.verify(&bad, &sig).is_err());
        }
    }
}

#[test]
fn rsa_encrypt_decrypt_many_sizes() {
    use ig_crypto::rng::seeded;
    use ig_crypto::RsaKeyPair;
    let kp = RsaKeyPair::generate(&mut seeded(77), 512).unwrap();
    let mut rng = seeded(78);
    let max = kp.public.byte_len() - 11;
    for len in [0usize, 1, 16, 32, max] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();
        let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }
}
