//! Property tests: the vectorized ChaCha20 must agree with a plain
//! scalar reference implementation for arbitrary keys, nonces, message
//! lengths and chunking patterns (the chunking exercises every mix of
//! leftover-drain, whole-block and tail paths in `ChaCha20::apply`).

use ig_crypto::chacha20::{ChaCha20, KEY_LEN};
use proptest::prelude::*;

/// Straightforward byte-at-a-time RFC 8439 reference, written
/// independently of the library's u64-lane implementation.
mod reference {
    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        let mut w = state;
        for _ in 0..10 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            out[4 * i..4 * i + 4].copy_from_slice(&w[i].wrapping_add(state[i]).to_le_bytes());
        }
        out
    }

    /// XOR the keystream (starting at block counter 0) into `data`.
    pub fn xor(key: &[u8; 32], nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        for (blk, chunk) in out.chunks_mut(64).enumerate() {
            let ks = block(key, blk as u32, nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        out
    }
}

proptest! {
    #[test]
    fn one_shot_matches_reference(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        prop_assert_eq!(key.len(), KEY_LEN);
        let expect = reference::xor(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::xor(&key, &nonce, &data), expect);
    }

    #[test]
    fn chunked_in_place_matches_reference(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..2048),
        // Arbitrary split points: apply() sees the message in irregular
        // pieces, hitting the leftover-keystream path at random offsets.
        chunks in prop::collection::vec(1usize..200, 0..40),
    ) {
        let expect = reference::xor(&key, &nonce, &data);
        let mut got = data.clone();
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut off = 0usize;
        for len in chunks {
            if off >= got.len() {
                break;
            }
            let end = (off + len).min(got.len());
            cipher.apply(&mut got[off..end]);
            off = end;
        }
        cipher.apply(&mut got[off..]);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn xor_is_an_involution(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let ct = ChaCha20::xor(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::xor(&key, &nonce, &ct), data);
    }
}
