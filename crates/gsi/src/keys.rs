//! Key schedule: HKDF over the pre-master secret and both nonces.

use ig_crypto::hkdf;

/// Length of the pre-master secret in bytes.
pub const PREMASTER_LEN: usize = 32;

/// Keys for one direction of the channel.
#[derive(Clone)]
pub struct DirectionKeys {
    /// ChaCha20 key for `Private` records.
    pub enc_key: [u8; 32],
    /// HMAC key for `Safe`/`Private` records.
    pub mac_key: [u8; 32],
    /// 4-byte nonce prefix; the per-record nonce is prefix || seq.
    pub nonce_prefix: [u8; 4],
}

/// Both directions, from the initiator's point of view.
#[derive(Clone)]
pub struct SessionKeys {
    /// Initiator → acceptor.
    pub c2s: DirectionKeys,
    /// Acceptor → initiator.
    pub s2c: DirectionKeys,
    /// Key for Finished MACs.
    pub finished_key: [u8; 32],
}

impl SessionKeys {
    /// Derive the full key block.
    pub fn derive(client_random: &[u8], server_random: &[u8], premaster: &[u8]) -> Self {
        let mut salt = Vec::with_capacity(client_random.len() + server_random.len());
        salt.extend_from_slice(client_random);
        salt.extend_from_slice(server_random);
        let prk = hkdf::extract(&salt, premaster);
        let block = hkdf::expand(&prk, b"ig-gsi key expansion", 32 * 5 + 4 * 2);
        let mut c2s = DirectionKeys {
            enc_key: [0; 32],
            mac_key: [0; 32],
            nonce_prefix: [0; 4],
        };
        let mut s2c = c2s.clone();
        let mut finished_key = [0u8; 32];
        c2s.enc_key.copy_from_slice(&block[0..32]);
        c2s.mac_key.copy_from_slice(&block[32..64]);
        s2c.enc_key.copy_from_slice(&block[64..96]);
        s2c.mac_key.copy_from_slice(&block[96..128]);
        finished_key.copy_from_slice(&block[128..160]);
        c2s.nonce_prefix.copy_from_slice(&block[160..164]);
        s2c.nonce_prefix.copy_from_slice(&block[164..168]);
        SessionKeys { c2s, s2c, finished_key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        let b = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        assert_eq!(a.c2s.enc_key, b.c2s.enc_key);
        assert_eq!(a.s2c.mac_key, b.s2c.mac_key);
        assert_eq!(a.finished_key, b.finished_key);
        assert_eq!(a.c2s.nonce_prefix, b.c2s.nonce_prefix);
    }

    #[test]
    fn directions_are_independent() {
        let k = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        assert_ne!(k.c2s.enc_key, k.s2c.enc_key);
        assert_ne!(k.c2s.mac_key, k.s2c.mac_key);
        assert_ne!(k.c2s.nonce_prefix, k.s2c.nonce_prefix);
    }

    #[test]
    fn inputs_change_all_keys() {
        let base = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        let diff_cr = SessionKeys::derive(&[9; 32], &[2; 32], &[3; 32]);
        let diff_sr = SessionKeys::derive(&[1; 32], &[9; 32], &[3; 32]);
        let diff_pm = SessionKeys::derive(&[1; 32], &[2; 32], &[9; 32]);
        for other in [&diff_cr, &diff_sr, &diff_pm] {
            assert_ne!(base.c2s.enc_key, other.c2s.enc_key);
            assert_ne!(base.s2c.enc_key, other.s2c.enc_key);
            assert_ne!(base.finished_key, other.finished_key);
        }
    }
}
