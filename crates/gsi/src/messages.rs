//! Handshake wire messages.
//!
//! Tokens are JSON — transparent, deterministic, and (crucially for the
//! control channel) they base64 cleanly into `ADAT` arguments. Binary
//! fields ride as hex strings.

use crate::error::{GsiError, Result};
use ig_crypto::encode::{hex_decode, hex_encode};
use ig_pki::Certificate;
use serde::{Deserialize, Serialize};

/// Serde adapter: bytes as hex strings.
mod hexbytes {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &[u8], s: S) -> std::result::Result<S::Ok, S::Error> {
        s.serialize_str(&hex_encode(b))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> std::result::Result<Vec<u8>, D::Error> {
        let s = String::deserialize(d)?;
        hex_decode(&s).map_err(serde::de::Error::custom)
    }
}

/// Serde adapter: optional bytes as hex strings.
mod opt_hexbytes {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        b: &Option<Vec<u8>>,
        s: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        match b {
            Some(b) => s.serialize_some(&hex_encode(b)),
            None => s.serialize_none(),
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> std::result::Result<Option<Vec<u8>>, D::Error> {
        let s: Option<String> = Option::deserialize(d)?;
        s.map(|s| hex_decode(&s).map_err(serde::de::Error::custom))
            .transpose()
    }
}

/// One handshake token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HandshakeMsg {
    /// Token 1, initiator → acceptor.
    Hello {
        /// 32 bytes of initiator randomness.
        #[serde(with = "hexbytes")]
        random: Vec<u8>,
        /// Whether the initiator intends to authenticate itself.
        mutual: bool,
    },
    /// Token 2, acceptor → initiator.
    ServerHello {
        /// 32 bytes of acceptor randomness.
        #[serde(with = "hexbytes")]
        random: Vec<u8>,
        /// Acceptor's certificate chain, leaf first.
        chain: Vec<Certificate>,
    },
    /// Token 3, initiator → acceptor.
    ClientAuth {
        /// Initiator's chain (empty when anonymous).
        chain: Vec<Certificate>,
        /// Pre-master secret encrypted under the acceptor leaf key.
        #[serde(with = "hexbytes")]
        encrypted_premaster: Vec<u8>,
        /// Proof of possession: signature over the bound transcript
        /// (absent when anonymous).
        #[serde(with = "opt_hexbytes")]
        signature: Option<Vec<u8>>,
    },
    /// Token 4, acceptor → initiator.
    ServerFinished {
        /// HMAC over the transcript with the s2c MAC key.
        #[serde(with = "hexbytes")]
        mac: Vec<u8>,
    },
    /// Token 5, initiator → acceptor.
    ClientFinished {
        /// HMAC over the transcript with the c2s MAC key.
        #[serde(with = "hexbytes")]
        mac: Vec<u8>,
    },
}

impl HandshakeMsg {
    /// Short name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            HandshakeMsg::Hello { .. } => "Hello",
            HandshakeMsg::ServerHello { .. } => "ServerHello",
            HandshakeMsg::ClientAuth { .. } => "ClientAuth",
            HandshakeMsg::ServerFinished { .. } => "ServerFinished",
            HandshakeMsg::ClientFinished { .. } => "ClientFinished",
        }
    }

    /// Serialize to token bytes.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("handshake message serialization cannot fail")
    }

    /// Parse token bytes.
    pub fn decode(token: &[u8]) -> Result<Self> {
        serde_json::from_slice(token)
            .map_err(|e| GsiError::Decode(format!("bad handshake token: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_hello() {
        let m = HandshakeMsg::Hello { random: vec![1, 2, 3], mutual: true };
        let back = HandshakeMsg::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.name(), "Hello");
    }

    #[test]
    fn roundtrip_client_auth_with_and_without_signature() {
        for sig in [None, Some(vec![9u8; 64])] {
            let m = HandshakeMsg::ClientAuth {
                chain: vec![],
                encrypted_premaster: vec![5; 64],
                signature: sig.clone(),
            };
            let back = HandshakeMsg::decode(&m.encode()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HandshakeMsg::decode(b"not json").is_err());
        assert!(HandshakeMsg::decode(b"{\"Unknown\":{}}").is_err());
    }

    #[test]
    fn tokens_are_ascii_safe_json() {
        let m = HandshakeMsg::ServerFinished { mac: (0..=255u8).map(|b| b ^ 3).take(32).collect() };
        let tok = m.encode();
        assert!(tok.iter().all(|&b| (0x20..0x7f).contains(&b)));
    }
}
