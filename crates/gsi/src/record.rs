//! Sealed records: the RFC 2228 protection levels.
//!
//! Wire layout (after the transport's own length framing):
//!
//! ```text
//! [ level: u8 ][ seq: u64 BE ][ body ... ][ mac: 32 bytes, Safe/Private only ]
//! ```
//!
//! `Private` encrypts the body with ChaCha20 using nonce
//! `prefix(4) || seq(8)`, then MACs header+ciphertext (encrypt-then-MAC).
//! Sequence numbers are explicit and strictly checked, so replayed,
//! dropped, or reordered records are detected even at `Safe` level.

use crate::error::{GsiError, Result};
use crate::keys::DirectionKeys;
use ig_crypto::chacha20::ChaCha20;
use ig_crypto::hmac::HmacKey;

/// RFC 2228 data-channel protection levels (the `PROT` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtectionLevel {
    /// `PROT C` — no cryptographic protection, framing only.
    Clear,
    /// `PROT S` — integrity protection (HMAC).
    Safe,
    /// `PROT P` — confidentiality + integrity (ChaCha20 + HMAC).
    Private,
}

impl ProtectionLevel {
    /// The one-letter FTP code (`C`/`S`/`P`).
    pub fn code(&self) -> char {
        match self {
            ProtectionLevel::Clear => 'C',
            ProtectionLevel::Safe => 'S',
            ProtectionLevel::Private => 'P',
        }
    }

    /// Parse the FTP code.
    pub fn from_code(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'C' => Some(ProtectionLevel::Clear),
            'S' => Some(ProtectionLevel::Safe),
            'P' => Some(ProtectionLevel::Private),
            // RFC 2228 also defines E (confidential-only); GridFTP maps it
            // to Private in practice.
            'E' => Some(ProtectionLevel::Private),
            _ => None,
        }
    }

    /// Stable name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            ProtectionLevel::Clear => "Clear",
            ProtectionLevel::Safe => "Safe",
            ProtectionLevel::Private => "Private",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            ProtectionLevel::Clear => 0,
            ProtectionLevel::Safe => 1,
            ProtectionLevel::Private => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(ProtectionLevel::Clear),
            1 => Ok(ProtectionLevel::Safe),
            2 => Ok(ProtectionLevel::Private),
            other => Err(GsiError::Decode(format!("bad protection byte {other}"))),
        }
    }
}

/// Outgoing record sealer for one direction.
pub struct Sealer {
    keys: DirectionKeys,
    /// HMAC key with ipad/opad states precomputed once per direction.
    mac: HmacKey,
    seq: u64,
}

/// Incoming record opener for one direction.
pub struct Opener {
    keys: DirectionKeys,
    /// HMAC key with ipad/opad states precomputed once per direction.
    mac: HmacKey,
    seq: u64,
}

const HEADER_LEN: usize = 1 + 8;
const MAC_LEN: usize = 32;

fn nonce_for(prefix: &[u8; 4], seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(prefix);
    n[4..].copy_from_slice(&seq.to_be_bytes());
    n
}

impl Sealer {
    /// Create a sealer starting at sequence 0.
    pub fn new(keys: DirectionKeys) -> Self {
        let mac = HmacKey::new(&keys.mac_key);
        Sealer { keys, mac, seq: 0 }
    }

    /// Seal `plaintext` at `level`, consuming one sequence number.
    pub fn seal(&mut self, level: ProtectionLevel, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + plaintext.len() + MAC_LEN);
        self.seal_into(level, plaintext, &mut out);
        out
    }

    /// Seal `plaintext` at `level` into `out`, consuming one sequence
    /// number. `out` is cleared first and reused: once it has grown to
    /// the steady-state record size, sealing performs no allocations and
    /// no intermediate plaintext copy — `Private` encrypts in place in
    /// the output buffer.
    pub fn seal_into(&mut self, level: ProtectionLevel, plaintext: &[u8], out: &mut Vec<u8>) {
        self.seal_parts_into(level, std::iter::once(plaintext), out)
    }

    /// Like [`Sealer::seal_into`] but gathers the plaintext from multiple
    /// segments (e.g. a frame header and a payload slice) without the
    /// caller having to concatenate them first.
    pub fn seal_parts_into<'a, I>(&mut self, level: ProtectionLevel, parts: I, out: &mut Vec<u8>)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let seq = self.seq;
        self.seq += 1;
        out.clear();
        out.push(level.to_byte());
        out.extend_from_slice(&seq.to_be_bytes());
        for part in parts {
            out.extend_from_slice(part);
        }
        if level == ProtectionLevel::Private {
            let nonce = nonce_for(&self.keys.nonce_prefix, seq);
            ChaCha20::new(&self.keys.enc_key, &nonce).apply(&mut out[HEADER_LEN..]);
        }
        if level != ProtectionLevel::Clear {
            let tag = self.mac.mac(out);
            out.extend_from_slice(&tag);
        }
    }

    /// Next sequence number (for diagnostics).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Opener {
    /// Create an opener expecting sequence 0 first.
    pub fn new(keys: DirectionKeys) -> Self {
        let mac = HmacKey::new(&keys.mac_key);
        Opener { keys, mac, seq: 0 }
    }

    /// Open a sealed record, enforcing sequence order and MAC.
    pub fn open(&mut self, record: &[u8]) -> Result<(ProtectionLevel, Vec<u8>)> {
        let mut buf = record.to_vec();
        let (level, payload) = self.open_in_place(&mut buf)?;
        let payload_len = payload.len();
        // Trim the buffer down to just the payload — one memmove, no
        // second allocation.
        buf.truncate(HEADER_LEN + payload_len);
        buf.drain(..HEADER_LEN);
        Ok((level, buf))
    }

    /// Open a sealed record in place, enforcing sequence order and MAC.
    ///
    /// `Private` bodies are decrypted directly inside `record`; the
    /// returned slice borrows the plaintext payload from it. On error the
    /// buffer is left unmodified and the expected sequence number does
    /// not advance.
    pub fn open_in_place<'a>(
        &mut self,
        record: &'a mut [u8],
    ) -> Result<(ProtectionLevel, &'a mut [u8])> {
        if record.len() < HEADER_LEN {
            return Err(GsiError::Decode("record shorter than header".into()));
        }
        let level = ProtectionLevel::from_byte(record[0])?;
        let seq = u64::from_be_bytes(record[1..9].try_into().expect("9-byte header"));
        if seq != self.seq {
            return Err(GsiError::BadSequence { expected: self.seq, got: seq });
        }
        let body_end = match level {
            ProtectionLevel::Clear => record.len(),
            ProtectionLevel::Safe | ProtectionLevel::Private => {
                if record.len() < HEADER_LEN + MAC_LEN {
                    return Err(GsiError::Decode("record shorter than MAC".into()));
                }
                let split = record.len() - MAC_LEN;
                let (signed, mac) = record.split_at(split);
                if !self.mac.verify(signed, mac) {
                    return Err(GsiError::RecordMac);
                }
                split
            }
        };
        let body = &mut record[HEADER_LEN..body_end];
        if level == ProtectionLevel::Private {
            let nonce = nonce_for(&self.keys.nonce_prefix, seq);
            ChaCha20::new(&self.keys.enc_key, &nonce).apply(body);
        }
        self.seq += 1;
        Ok((level, body))
    }

    /// Next expected sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SessionKeys;

    fn pair() -> (Sealer, Opener) {
        let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        (Sealer::new(keys.c2s.clone()), Opener::new(keys.c2s))
    }

    #[test]
    fn level_codes() {
        assert_eq!(ProtectionLevel::Clear.code(), 'C');
        assert_eq!(ProtectionLevel::from_code('p'), Some(ProtectionLevel::Private));
        assert_eq!(ProtectionLevel::from_code('E'), Some(ProtectionLevel::Private));
        assert_eq!(ProtectionLevel::from_code('X'), None);
        assert!(ProtectionLevel::Clear < ProtectionLevel::Safe);
        assert!(ProtectionLevel::Safe < ProtectionLevel::Private);
    }

    #[test]
    fn seal_open_all_levels() {
        let (mut s, mut o) = pair();
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let msg = format!("payload at {level:?}");
            let rec = s.seal(level, msg.as_bytes());
            let (got_level, got) = o.open(&rec).unwrap();
            assert_eq!(got_level, level);
            assert_eq!(got, msg.as_bytes());
        }
    }

    #[test]
    fn private_hides_plaintext() {
        let (mut s, _) = pair();
        let rec = s.seal(ProtectionLevel::Private, b"secret-data-here");
        let body = &rec[9..rec.len() - 32];
        assert_ne!(body, b"secret-data-here");
        // Clear level leaves it visible.
        let (mut s2, _) = pair();
        let rec2 = s2.seal(ProtectionLevel::Clear, b"visible-data");
        assert_eq!(&rec2[9..], b"visible-data");
    }

    #[test]
    fn tamper_detected_on_safe_and_private() {
        for level in [ProtectionLevel::Safe, ProtectionLevel::Private] {
            let (mut s, mut o) = pair();
            let mut rec = s.seal(level, b"do not touch");
            rec[10] ^= 1;
            assert!(matches!(o.open(&rec), Err(GsiError::RecordMac)));
        }
    }

    #[test]
    fn replay_and_reorder_detected() {
        let (mut s, mut o) = pair();
        let r0 = s.seal(ProtectionLevel::Safe, b"zero");
        let r1 = s.seal(ProtectionLevel::Safe, b"one");
        o.open(&r0).unwrap();
        // Replay of r0.
        assert!(matches!(o.open(&r0), Err(GsiError::BadSequence { .. })));
        // r1 still fine after the failed attempt.
        o.open(&r1).unwrap();
        // Skipping ahead (drop) detected.
        let _r2 = s.seal(ProtectionLevel::Safe, b"two");
        let r3 = s.seal(ProtectionLevel::Safe, b"three");
        assert!(matches!(o.open(&r3), Err(GsiError::BadSequence { .. })));
    }

    #[test]
    fn wrong_key_rejected() {
        let keys_a = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        let keys_b = SessionKeys::derive(&[1; 32], &[2; 32], &[4; 32]);
        let mut s = Sealer::new(keys_a.c2s);
        let mut o = Opener::new(keys_b.c2s);
        let rec = s.seal(ProtectionLevel::Private, b"cross-key");
        assert!(matches!(o.open(&rec), Err(GsiError::RecordMac)));
    }

    #[test]
    fn truncated_records_rejected() {
        let (mut s, mut o) = pair();
        let rec = s.seal(ProtectionLevel::Safe, b"x");
        assert!(o.open(&rec[..5]).is_err());
        assert!(o.open(&rec[..HEADER_LEN + 3]).is_err());
        assert!(o.open(&[]).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let (mut s, mut o) = pair();
        let rec = s.seal(ProtectionLevel::Private, b"");
        let (_, body) = o.open(&rec).unwrap();
        assert!(body.is_empty());
    }

    #[test]
    fn large_payload_roundtrip() {
        let (mut s, mut o) = pair();
        // A true 1 MiB payload (the old constant 1_000_00 was 100 000 —
        // ten times smaller than the "1 MB" the test claimed to cover).
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        let rec = s.seal(ProtectionLevel::Private, &data);
        let (_, body) = o.open(&rec).unwrap();
        assert_eq!(body, data);
    }

    /// Manually construct the expected wire bytes for a record using the
    /// raw primitives — the golden reference the zero-copy paths must hit.
    fn golden_record(keys: &DirectionKeys, level: ProtectionLevel, seq: u64, pt: &[u8]) -> Vec<u8> {
        use ig_crypto::hmac::HmacSha256;
        let mut rec = Vec::new();
        rec.push(level.to_byte());
        rec.extend_from_slice(&seq.to_be_bytes());
        if level == ProtectionLevel::Private {
            let nonce = nonce_for(&keys.nonce_prefix, seq);
            rec.extend_from_slice(&ChaCha20::xor(&keys.enc_key, &nonce, pt));
        } else {
            rec.extend_from_slice(pt);
        }
        if level != ProtectionLevel::Clear {
            let tag = HmacSha256::mac(&keys.mac_key, &rec);
            rec.extend_from_slice(&tag);
        }
        rec
    }

    #[test]
    fn seal_into_matches_golden_vectors() {
        let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]).c2s;
        let payloads: [&[u8]; 4] = [b"", b"x", b"hello sealed world", &[0xa5; 300]];
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let mut legacy = Sealer::new(keys.clone());
            let mut zero_copy = Sealer::new(keys.clone());
            let mut buf = Vec::new();
            for (seq, pt) in payloads.iter().enumerate() {
                let golden = golden_record(&keys, level, seq as u64, pt);
                assert_eq!(legacy.seal(level, pt), golden, "seal {level:?} seq={seq}");
                zero_copy.seal_into(level, pt, &mut buf);
                assert_eq!(buf, golden, "seal_into {level:?} seq={seq}");
            }
        }
    }

    #[test]
    fn seal_parts_matches_contiguous() {
        let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]).c2s;
        let header = [0x40u8, 1, 2, 3];
        let payload = vec![0x9cu8; 777];
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let mut whole = Sealer::new(keys.clone());
            let mut parts = Sealer::new(keys.clone());
            let mut contiguous = header.to_vec();
            contiguous.extend_from_slice(&payload);
            let expect = whole.seal(level, &contiguous);
            let mut buf = Vec::new();
            parts.seal_parts_into(level, [&header[..], &payload[..]], &mut buf);
            assert_eq!(buf, expect, "{level:?}");
        }
    }

    #[test]
    fn open_in_place_matches_open() {
        let (mut s, _) = pair();
        let (_, mut o_legacy) = pair();
        let (_, mut o_inplace) = pair();
        for (i, level) in [
            ProtectionLevel::Clear,
            ProtectionLevel::Safe,
            ProtectionLevel::Private,
            ProtectionLevel::Private,
        ]
        .iter()
        .enumerate()
        {
            let pt: Vec<u8> = (0..i * 97).map(|b| (b % 251) as u8).collect();
            let rec = s.seal(*level, &pt);
            let (lvl_a, body_a) = o_legacy.open(&rec).unwrap();
            let mut buf = rec.clone();
            let (lvl_b, body_b) = o_inplace.open_in_place(&mut buf).unwrap();
            assert_eq!(lvl_a, *level);
            assert_eq!(lvl_b, *level);
            assert_eq!(body_a, pt);
            assert_eq!(body_b, &pt[..]);
        }
        assert_eq!(o_legacy.seq(), o_inplace.seq());
    }

    #[test]
    fn open_in_place_rejects_tamper_and_replay() {
        let (mut s, mut o) = pair();
        let rec = s.seal(ProtectionLevel::Private, b"guarded");
        let mut bad = rec.clone();
        bad[10] ^= 1;
        assert!(matches!(o.open_in_place(&mut bad), Err(GsiError::RecordMac)));
        // Failed open must not advance the sequence; the pristine record
        // still opens.
        let mut ok = rec.clone();
        o.open_in_place(&mut ok).unwrap();
        // Replay now fails on sequence.
        let mut replay = rec;
        assert!(matches!(
            o.open_in_place(&mut replay),
            Err(GsiError::BadSequence { .. })
        ));
    }

    #[test]
    fn reused_buffer_shrinks_and_grows() {
        // A reused output buffer must not leak bytes from a previous,
        // larger record into a smaller one.
        let (mut s, mut o) = pair();
        let mut buf = Vec::new();
        s.seal_into(ProtectionLevel::Safe, &[0xffu8; 512], &mut buf);
        o.open(&buf).unwrap();
        s.seal_into(ProtectionLevel::Safe, b"tiny", &mut buf);
        let (_, body) = o.open(&buf).unwrap();
        assert_eq!(body, b"tiny");
    }
}
