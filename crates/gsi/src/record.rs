//! Sealed records: the RFC 2228 protection levels.
//!
//! Wire layout (after the transport's own length framing):
//!
//! ```text
//! [ level: u8 ][ seq: u64 BE ][ body ... ][ mac: 32 bytes, Safe/Private only ]
//! ```
//!
//! `Private` encrypts the body with ChaCha20 using nonce
//! `prefix(4) || seq(8)`, then MACs header+ciphertext (encrypt-then-MAC).
//! Sequence numbers are explicit and strictly checked, so replayed,
//! dropped, or reordered records are detected even at `Safe` level.

use crate::error::{GsiError, Result};
use crate::keys::DirectionKeys;
use ig_crypto::chacha20::ChaCha20;
use ig_crypto::hmac::HmacSha256;

/// RFC 2228 data-channel protection levels (the `PROT` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtectionLevel {
    /// `PROT C` — no cryptographic protection, framing only.
    Clear,
    /// `PROT S` — integrity protection (HMAC).
    Safe,
    /// `PROT P` — confidentiality + integrity (ChaCha20 + HMAC).
    Private,
}

impl ProtectionLevel {
    /// The one-letter FTP code (`C`/`S`/`P`).
    pub fn code(&self) -> char {
        match self {
            ProtectionLevel::Clear => 'C',
            ProtectionLevel::Safe => 'S',
            ProtectionLevel::Private => 'P',
        }
    }

    /// Parse the FTP code.
    pub fn from_code(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'C' => Some(ProtectionLevel::Clear),
            'S' => Some(ProtectionLevel::Safe),
            'P' => Some(ProtectionLevel::Private),
            // RFC 2228 also defines E (confidential-only); GridFTP maps it
            // to Private in practice.
            'E' => Some(ProtectionLevel::Private),
            _ => None,
        }
    }

    /// Stable name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            ProtectionLevel::Clear => "Clear",
            ProtectionLevel::Safe => "Safe",
            ProtectionLevel::Private => "Private",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            ProtectionLevel::Clear => 0,
            ProtectionLevel::Safe => 1,
            ProtectionLevel::Private => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(ProtectionLevel::Clear),
            1 => Ok(ProtectionLevel::Safe),
            2 => Ok(ProtectionLevel::Private),
            other => Err(GsiError::Decode(format!("bad protection byte {other}"))),
        }
    }
}

/// Outgoing record sealer for one direction.
pub struct Sealer {
    keys: DirectionKeys,
    seq: u64,
}

/// Incoming record opener for one direction.
pub struct Opener {
    keys: DirectionKeys,
    seq: u64,
}

const HEADER_LEN: usize = 1 + 8;
const MAC_LEN: usize = 32;

fn nonce_for(prefix: &[u8; 4], seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(prefix);
    n[4..].copy_from_slice(&seq.to_be_bytes());
    n
}

impl Sealer {
    /// Create a sealer starting at sequence 0.
    pub fn new(keys: DirectionKeys) -> Self {
        Sealer { keys, seq: 0 }
    }

    /// Seal `plaintext` at `level`, consuming one sequence number.
    pub fn seal(&mut self, level: ProtectionLevel, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.seq;
        self.seq += 1;
        let mut out = Vec::with_capacity(HEADER_LEN + plaintext.len() + MAC_LEN);
        out.push(level.to_byte());
        out.extend_from_slice(&seq.to_be_bytes());
        match level {
            ProtectionLevel::Clear => {
                out.extend_from_slice(plaintext);
            }
            ProtectionLevel::Safe => {
                out.extend_from_slice(plaintext);
                let mac = HmacSha256::mac(&self.keys.mac_key, &out);
                out.extend_from_slice(&mac);
            }
            ProtectionLevel::Private => {
                let nonce = nonce_for(&self.keys.nonce_prefix, seq);
                let mut body = plaintext.to_vec();
                ChaCha20::new(&self.keys.enc_key, &nonce).apply(&mut body);
                out.extend_from_slice(&body);
                let mac = HmacSha256::mac(&self.keys.mac_key, &out);
                out.extend_from_slice(&mac);
            }
        }
        out
    }

    /// Next sequence number (for diagnostics).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Opener {
    /// Create an opener expecting sequence 0 first.
    pub fn new(keys: DirectionKeys) -> Self {
        Opener { keys, seq: 0 }
    }

    /// Open a sealed record, enforcing sequence order and MAC.
    pub fn open(&mut self, record: &[u8]) -> Result<(ProtectionLevel, Vec<u8>)> {
        if record.len() < HEADER_LEN {
            return Err(GsiError::Decode("record shorter than header".into()));
        }
        let level = ProtectionLevel::from_byte(record[0])?;
        let seq = u64::from_be_bytes(record[1..9].try_into().expect("9-byte header"));
        if seq != self.seq {
            return Err(GsiError::BadSequence { expected: self.seq, got: seq });
        }
        let payload = match level {
            ProtectionLevel::Clear => record[HEADER_LEN..].to_vec(),
            ProtectionLevel::Safe | ProtectionLevel::Private => {
                if record.len() < HEADER_LEN + MAC_LEN {
                    return Err(GsiError::Decode("record shorter than MAC".into()));
                }
                let (signed, mac) = record.split_at(record.len() - MAC_LEN);
                if !HmacSha256::verify(&self.keys.mac_key, signed, mac) {
                    return Err(GsiError::RecordMac);
                }
                let mut body = signed[HEADER_LEN..].to_vec();
                if level == ProtectionLevel::Private {
                    let nonce = nonce_for(&self.keys.nonce_prefix, seq);
                    ChaCha20::new(&self.keys.enc_key, &nonce).apply(&mut body);
                }
                body
            }
        };
        self.seq += 1;
        Ok((level, payload))
    }

    /// Next expected sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SessionKeys;

    fn pair() -> (Sealer, Opener) {
        let keys = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        (Sealer::new(keys.c2s.clone()), Opener::new(keys.c2s))
    }

    #[test]
    fn level_codes() {
        assert_eq!(ProtectionLevel::Clear.code(), 'C');
        assert_eq!(ProtectionLevel::from_code('p'), Some(ProtectionLevel::Private));
        assert_eq!(ProtectionLevel::from_code('E'), Some(ProtectionLevel::Private));
        assert_eq!(ProtectionLevel::from_code('X'), None);
        assert!(ProtectionLevel::Clear < ProtectionLevel::Safe);
        assert!(ProtectionLevel::Safe < ProtectionLevel::Private);
    }

    #[test]
    fn seal_open_all_levels() {
        let (mut s, mut o) = pair();
        for level in [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private] {
            let msg = format!("payload at {level:?}");
            let rec = s.seal(level, msg.as_bytes());
            let (got_level, got) = o.open(&rec).unwrap();
            assert_eq!(got_level, level);
            assert_eq!(got, msg.as_bytes());
        }
    }

    #[test]
    fn private_hides_plaintext() {
        let (mut s, _) = pair();
        let rec = s.seal(ProtectionLevel::Private, b"secret-data-here");
        let body = &rec[9..rec.len() - 32];
        assert_ne!(body, b"secret-data-here");
        // Clear level leaves it visible.
        let (mut s2, _) = pair();
        let rec2 = s2.seal(ProtectionLevel::Clear, b"visible-data");
        assert_eq!(&rec2[9..], b"visible-data");
    }

    #[test]
    fn tamper_detected_on_safe_and_private() {
        for level in [ProtectionLevel::Safe, ProtectionLevel::Private] {
            let (mut s, mut o) = pair();
            let mut rec = s.seal(level, b"do not touch");
            rec[10] ^= 1;
            assert!(matches!(o.open(&rec), Err(GsiError::RecordMac)));
        }
    }

    #[test]
    fn replay_and_reorder_detected() {
        let (mut s, mut o) = pair();
        let r0 = s.seal(ProtectionLevel::Safe, b"zero");
        let r1 = s.seal(ProtectionLevel::Safe, b"one");
        o.open(&r0).unwrap();
        // Replay of r0.
        assert!(matches!(o.open(&r0), Err(GsiError::BadSequence { .. })));
        // r1 still fine after the failed attempt.
        o.open(&r1).unwrap();
        // Skipping ahead (drop) detected.
        let _r2 = s.seal(ProtectionLevel::Safe, b"two");
        let r3 = s.seal(ProtectionLevel::Safe, b"three");
        assert!(matches!(o.open(&r3), Err(GsiError::BadSequence { .. })));
    }

    #[test]
    fn wrong_key_rejected() {
        let keys_a = SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32]);
        let keys_b = SessionKeys::derive(&[1; 32], &[2; 32], &[4; 32]);
        let mut s = Sealer::new(keys_a.c2s);
        let mut o = Opener::new(keys_b.c2s);
        let rec = s.seal(ProtectionLevel::Private, b"cross-key");
        assert!(matches!(o.open(&rec), Err(GsiError::RecordMac)));
    }

    #[test]
    fn truncated_records_rejected() {
        let (mut s, mut o) = pair();
        let rec = s.seal(ProtectionLevel::Safe, b"x");
        assert!(o.open(&rec[..5]).is_err());
        assert!(o.open(&rec[..HEADER_LEN + 3]).is_err());
        assert!(o.open(&[]).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let (mut s, mut o) = pair();
        let rec = s.seal(ProtectionLevel::Private, b"");
        let (_, body) = o.open(&rec).unwrap();
        assert!(body.is_empty());
    }

    #[test]
    fn large_payload_roundtrip() {
        let (mut s, mut o) = pair();
        let data: Vec<u8> = (0..1_000_00).map(|i| (i % 251) as u8).collect();
        let rec = s.seal(ProtectionLevel::Private, &data);
        let (_, body) = o.open(&rec).unwrap();
        assert_eq!(body, data);
    }
}
