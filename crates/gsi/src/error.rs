//! GSI error taxonomy.

use std::fmt;

/// Errors from handshakes, sealing, and delegation.
#[derive(Debug)]
pub enum GsiError {
    /// Malformed token or record.
    Decode(String),
    /// Handshake message arrived out of order.
    UnexpectedMessage { expected: &'static str, got: String },
    /// Peer certificate chain failed validation.
    PeerValidation(ig_pki::PkiError),
    /// Peer did not present a certificate but one was required.
    PeerAnonymous,
    /// Finished MAC mismatch — transcripts diverged (tampering or bug).
    TranscriptMismatch,
    /// Record sequence number mismatch (reorder/replay/drop).
    BadSequence { expected: u64, got: u64 },
    /// Record MAC failed.
    RecordMac,
    /// Record protection level below what the receiver requires.
    InsufficientProtection { required: &'static str, got: &'static str },
    /// Local credential missing for an operation that needs one.
    NoCredential(String),
    /// Underlying cryptographic failure.
    Crypto(ig_crypto::CryptoError),
    /// Underlying I/O failure (stream helpers only).
    Io(std::io::Error),
}

impl fmt::Display for GsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsiError::Decode(m) => write!(f, "token decode error: {m}"),
            GsiError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected handshake message: expected {expected}, got {got}")
            }
            GsiError::PeerValidation(e) => write!(f, "peer validation failed: {e}"),
            GsiError::PeerAnonymous => write!(f, "peer did not authenticate but auth is required"),
            GsiError::TranscriptMismatch => write!(f, "handshake transcript mismatch"),
            GsiError::BadSequence { expected, got } => {
                write!(f, "record sequence error: expected {expected}, got {got}")
            }
            GsiError::RecordMac => write!(f, "record MAC verification failed"),
            GsiError::InsufficientProtection { required, got } => {
                write!(f, "record protection {got} below required {required}")
            }
            GsiError::NoCredential(m) => write!(f, "no credential: {m}"),
            GsiError::Crypto(e) => write!(f, "crypto error: {e}"),
            GsiError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GsiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GsiError::PeerValidation(e) => Some(e),
            GsiError::Crypto(e) => Some(e),
            GsiError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_crypto::CryptoError> for GsiError {
    fn from(e: ig_crypto::CryptoError) -> Self {
        GsiError::Crypto(e)
    }
}

impl From<ig_pki::PkiError> for GsiError {
    fn from(e: ig_pki::PkiError) -> Self {
        GsiError::PeerValidation(e)
    }
}

impl From<std::io::Error> for GsiError {
    fn from(e: std::io::Error) -> Self {
        GsiError::Io(e)
    }
}

/// Result alias for GSI operations.
pub type Result<T> = std::result::Result<T, GsiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GsiError::BadSequence { expected: 3, got: 5 };
        assert!(e.to_string().contains("expected 3"));
        assert!(GsiError::PeerAnonymous.to_string().contains("auth is required"));
        let e = GsiError::InsufficientProtection { required: "Private", got: "Clear" };
        assert!(e.to_string().contains("Private"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = GsiError::from(ig_crypto::CryptoError::BadMac);
        assert!(e.source().is_some());
        let e = GsiError::from(ig_pki::PkiError::UntrustedIssuer("x".into()));
        assert!(e.source().is_some());
    }
}
