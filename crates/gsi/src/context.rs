//! Security contexts and the framed secure stream.

use crate::error::{GsiError, Result};
use crate::handshake::{Acceptor, Initiator, Step};
use crate::keys::SessionKeys;
use crate::record::{Opener, ProtectionLevel, Sealer};
use ig_pki::time::Clock;
use ig_pki::validate::ValidatedIdentity;
use ig_pki::{Credential, TrustStore};
use rand::Rng;
use std::io::{Read, Write};

/// Maximum accepted record size (plaintext 16 MiB + overhead).
pub const MAX_RECORD: usize = 16 * 1024 * 1024 + 64;

/// Which side of the handshake we were.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The connecting/initiating party.
    Initiator,
    /// The listening/accepting party.
    Acceptor,
}

/// Everything a completed handshake yields.
pub struct Established {
    /// Local role.
    pub role: Role,
    /// Session keys (initiator-relative directions).
    pub keys: SessionKeys,
    /// The authenticated peer (None = anonymous client).
    pub peer: Option<ValidatedIdentity>,
}

impl std::fmt::Debug for Established {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Custom impl so session keys never appear in logs or panics.
        f.debug_struct("Established")
            .field("role", &self.role)
            .field("peer", &self.peer.as_ref().map(|p| p.subject.to_string()))
            .finish_non_exhaustive()
    }
}

/// Configuration for one side of a handshake.
///
/// Swapping `credential` + `trust` per-connection is how `DCSC` changes
/// the data-channel security context (§V) without touching the control
/// channel's.
#[derive(Clone)]
pub struct GsiConfig {
    /// Local identity; `None` = anonymous (initiators only).
    pub credential: Option<Credential>,
    /// Trust roots for validating the peer.
    pub trust: TrustStore,
    /// Acceptors: refuse anonymous initiators when true.
    pub require_peer_auth: bool,
    /// Clock for validity checks.
    pub clock: Clock,
    /// Initiators only: accept the peer's leaf certificate without chain
    /// validation (trust-on-first-use). This models `myproxy-logon -b`
    /// bootstrapping, where the client has no trust roots yet and
    /// retrieves them from the server (§IV-E).
    pub insecure_skip_peer_validation: bool,
}

impl GsiConfig {
    /// Config with a credential and trust store, peer auth required.
    pub fn new(credential: Credential, trust: TrustStore) -> Self {
        GsiConfig {
            credential: Some(credential),
            trust,
            require_peer_auth: true,
            clock: Clock::System,
            insecure_skip_peer_validation: false,
        }
    }

    /// Anonymous initiator config (e.g. a MyProxy client before it has
    /// any certificate — it authenticates with a password instead).
    pub fn anonymous(trust: TrustStore) -> Self {
        GsiConfig {
            credential: None,
            trust,
            require_peer_auth: false,
            clock: Clock::System,
            insecure_skip_peer_validation: false,
        }
    }

    /// Builder-style: set the clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder-style: allow anonymous peers.
    pub fn allow_anonymous(mut self) -> Self {
        self.require_peer_auth = false;
        self
    }

    /// Builder-style: trust-on-first-use (the `myproxy-logon -b` mode).
    pub fn bootstrap(mut self) -> Self {
        self.insecure_skip_peer_validation = true;
        self
    }
}

/// A completed security context: seal/open records in both directions.
pub struct SecureContext {
    sealer: Sealer,
    opener: Opener,
    peer: Option<ValidatedIdentity>,
    role: Role,
}

impl SecureContext {
    /// Build from handshake output.
    pub fn from_established(est: Established) -> Self {
        let (send_keys, recv_keys) = match est.role {
            Role::Initiator => (est.keys.c2s.clone(), est.keys.s2c.clone()),
            Role::Acceptor => (est.keys.s2c.clone(), est.keys.c2s.clone()),
        };
        SecureContext {
            sealer: Sealer::new(send_keys),
            opener: Opener::new(recv_keys),
            peer: est.peer,
            role: est.role,
        }
    }

    /// Seal an outgoing message at `level`.
    pub fn seal(&mut self, level: ProtectionLevel, plaintext: &[u8]) -> Vec<u8> {
        let t0 = std::time::Instant::now();
        let out = self.sealer.seal(level, plaintext);
        crate::obs_hooks::record_seal(t0.elapsed());
        out
    }

    /// Seal an outgoing message at `level` into a reused output buffer
    /// (allocation-free once `out` has reached steady-state capacity).
    pub fn seal_into(&mut self, level: ProtectionLevel, plaintext: &[u8], out: &mut Vec<u8>) {
        let t0 = std::time::Instant::now();
        self.sealer.seal_into(level, plaintext, out);
        crate::obs_hooks::record_seal(t0.elapsed());
    }

    /// Seal a message gathered from multiple plaintext segments (e.g. a
    /// frame header and a payload slice) into a reused output buffer.
    pub fn seal_parts_into<'a, I>(&mut self, level: ProtectionLevel, parts: I, out: &mut Vec<u8>)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let t0 = std::time::Instant::now();
        self.sealer.seal_parts_into(level, parts, out);
        crate::obs_hooks::record_seal(t0.elapsed());
    }

    /// Open an incoming record.
    pub fn open(&mut self, record: &[u8]) -> Result<(ProtectionLevel, Vec<u8>)> {
        let t0 = std::time::Instant::now();
        let out = self.opener.open(record);
        crate::obs_hooks::record_open(t0.elapsed());
        out
    }

    /// Open an incoming record in place, decrypting inside `record` and
    /// returning the payload as a borrowed slice (no allocation).
    pub fn open_in_place<'a>(
        &mut self,
        record: &'a mut [u8],
    ) -> Result<(ProtectionLevel, &'a mut [u8])> {
        let t0 = std::time::Instant::now();
        let out = self.opener.open_in_place(record);
        crate::obs_hooks::record_open(t0.elapsed());
        out
    }

    /// Open a record in place and enforce a minimum protection level.
    pub fn open_in_place_expecting<'a>(
        &mut self,
        record: &'a mut [u8],
        min_level: ProtectionLevel,
    ) -> Result<&'a mut [u8]> {
        let (level, payload) = self.opener.open_in_place(record)?;
        if level < min_level {
            return Err(GsiError::InsufficientProtection {
                required: min_level.name(),
                got: level.name(),
            });
        }
        Ok(payload)
    }

    /// Open an incoming record and enforce a minimum protection level.
    pub fn open_expecting(
        &mut self,
        record: &[u8],
        min_level: ProtectionLevel,
    ) -> Result<Vec<u8>> {
        let (level, payload) = self.open(record)?;
        if level < min_level {
            return Err(GsiError::InsufficientProtection {
                required: min_level.name(),
                got: level.name(),
            });
        }
        Ok(payload)
    }

    /// Authenticated peer identity, if any.
    pub fn peer(&self) -> Option<&ValidatedIdentity> {
        self.peer.as_ref()
    }

    /// Peer identity or an error (for paths that require auth).
    pub fn require_peer(&self) -> Result<&ValidatedIdentity> {
        self.peer.as_ref().ok_or(GsiError::PeerAnonymous)
    }

    /// Local role in the handshake.
    pub fn role(&self) -> Role {
        self.role
    }
}

// ---------------------------------------------------------------------------
// Stream helpers: length-framed handshakes and secure streams over any
// Read+Write transport (TCP data channels use these directly).
// ---------------------------------------------------------------------------

/// Write one length-framed blob.
pub fn write_frame<W: Write>(w: &mut W, data: &[u8]) -> Result<()> {
    if data.len() > MAX_RECORD {
        return Err(GsiError::Decode(format!("frame of {} bytes exceeds maximum", data.len())));
    }
    w.write_all(&(data.len() as u32).to_be_bytes())?;
    w.write_all(data)?;
    w.flush()?;
    Ok(())
}

/// Read one length-framed blob.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_RECORD {
        return Err(GsiError::Decode(format!("frame of {len} bytes exceeds maximum")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Run the client handshake over a stream.
pub fn client_handshake<S: Read + Write, R: Rng + ?Sized>(
    stream: &mut S,
    config: GsiConfig,
    rng: &mut R,
) -> Result<SecureContext> {
    let (mut init, token) = Initiator::start(config, rng);
    write_frame(stream, &token)?;
    loop {
        let token = read_frame(stream)?;
        match init.step(&token, rng)? {
            Step::Send(t) => write_frame(stream, &t)?,
            Step::SendAndDone(t, est) => {
                write_frame(stream, &t)?;
                return Ok(SecureContext::from_established(est));
            }
            Step::Done(est) => return Ok(SecureContext::from_established(est)),
        }
    }
}

/// Run the server handshake over a stream.
pub fn server_handshake<S: Read + Write, R: Rng + ?Sized>(
    stream: &mut S,
    config: GsiConfig,
    rng: &mut R,
) -> Result<SecureContext> {
    let mut acceptor = Acceptor::new(config)?;
    loop {
        let token = read_frame(stream)?;
        match acceptor.step(&token, rng)? {
            Step::Send(t) => write_frame(stream, &t)?,
            Step::SendAndDone(t, est) => {
                write_frame(stream, &t)?;
                return Ok(SecureContext::from_established(est));
            }
            Step::Done(est) => return Ok(SecureContext::from_established(est)),
        }
    }
}

/// A secure message stream: a transport plus a context plus protection
/// policy. This is what a `PROT`-protected data channel is.
pub struct SecureStream<S: Read + Write> {
    stream: S,
    ctx: SecureContext,
    /// Level applied to outgoing messages.
    pub send_level: ProtectionLevel,
    /// Minimum level accepted on incoming messages.
    pub min_recv_level: ProtectionLevel,
}

impl<S: Read + Write> SecureStream<S> {
    /// Wrap an established context around a transport.
    pub fn new(stream: S, ctx: SecureContext, level: ProtectionLevel) -> Self {
        SecureStream { stream, ctx, send_level: level, min_recv_level: level }
    }

    /// Send one message.
    pub fn send(&mut self, data: &[u8]) -> Result<()> {
        let record = self.ctx.seal(self.send_level, data);
        write_frame(&mut self.stream, &record)
    }

    /// Receive one message.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        let record = read_frame(&mut self.stream)?;
        self.ctx.open_expecting(&record, self.min_recv_level)
    }

    /// The authenticated peer.
    pub fn peer(&self) -> Option<&ValidatedIdentity> {
        self.ctx.peer()
    }

    /// Split back into parts.
    pub fn into_parts(self) -> (S, SecureContext) {
        (self.stream, self.ctx)
    }

    /// Access the underlying transport (e.g. to shutdown a TCP socket).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

/// Shared helpers for tests across this crate.
#[doc(hidden)]
pub mod test_support {
    use super::*;
    use ig_pki::cert::Validity;
    use ig_pki::{CertificateAuthority, DistinguishedName};

    /// Create a CA and a credential issued by it.
    pub fn ca_and_credential<R: Rng + ?Sized>(
        rng: &mut R,
        ca_name: &str,
        subject: &str,
    ) -> (CertificateAuthority, Credential) {
        let mut ca = CertificateAuthority::create(
            rng,
            DistinguishedName::parse(ca_name).expect("valid CA DN"),
            512,
            0,
            u64::MAX / 4,
        )
        .expect("CA creation");
        let keys = ig_crypto::RsaKeyPair::generate(rng, 512).expect("keygen");
        let cert = ca
            .issue(
                DistinguishedName::parse(subject).expect("valid subject DN"),
                &keys.public,
                Validity::starting_at(0, u64::MAX / 4),
                vec![],
            )
            .expect("issue");
        (ca, Credential::new(vec![cert], keys.private).expect("credential"))
    }

    /// Build a GsiConfig trusting the given CAs, with a fixed early clock.
    pub fn config_with(
        credential: Option<Credential>,
        cas: &[&CertificateAuthority],
        require_peer_auth: bool,
    ) -> GsiConfig {
        let mut trust = TrustStore::new();
        for ca in cas {
            trust.add_root(ca.root_cert().clone());
        }
        GsiConfig {
            credential,
            trust,
            require_peer_auth,
            clock: Clock::Fixed(1000),
            insecure_skip_peer_validation: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::handshake::pump;
    use ig_crypto::rng::seeded;

    fn contexts(seed: u64) -> (SecureContext, SecureContext) {
        let mut rng = seeded(seed);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=client");
        let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
        let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);
        let (ie, ae) = pump(client_cfg, server_cfg, &mut rng).unwrap();
        (
            SecureContext::from_established(ie),
            SecureContext::from_established(ae),
        )
    }

    #[test]
    fn bidirectional_sealed_traffic() {
        let (mut client, mut server) = contexts(10);
        for i in 0..5 {
            let msg = format!("c2s message {i}");
            let rec = client.seal(ProtectionLevel::Private, msg.as_bytes());
            let (_, got) = server.open(&rec).unwrap();
            assert_eq!(got, msg.as_bytes());
            let reply = format!("s2c reply {i}");
            let rec = server.seal(ProtectionLevel::Safe, reply.as_bytes());
            let (_, got) = client.open(&rec).unwrap();
            assert_eq!(got, reply.as_bytes());
        }
    }

    #[test]
    fn open_expecting_enforces_floor() {
        let (mut client, mut server) = contexts(11);
        let rec = client.seal(ProtectionLevel::Clear, b"plain");
        let err = server
            .open_expecting(&rec, ProtectionLevel::Safe)
            .unwrap_err();
        assert!(matches!(err, GsiError::InsufficientProtection { .. }));
        // Higher-than-required level passes.
        let rec = client.seal(ProtectionLevel::Private, b"strong");
        // (fresh sequence: the failed record consumed seq 0 on open? No —
        // open_expecting failed *after* opening, so seq advanced.)
        let got = server.open_expecting(&rec, ProtectionLevel::Safe).unwrap();
        assert_eq!(got, b"strong");
    }

    #[test]
    fn cross_direction_records_rejected() {
        let (mut client, server) = contexts(12);
        // A record client sealed cannot be opened by client itself
        // (directional keys differ).
        let rec = client.seal(ProtectionLevel::Private, b"loop");
        assert!(client.open(&rec).is_err());
        let _ = server; // the peer is never exercised in this scenario
    }

    #[test]
    fn peer_identities_exposed() {
        let (client, server) = contexts(13);
        assert_eq!(client.peer().unwrap().identity.to_string(), "/CN=server");
        assert_eq!(server.peer().unwrap().identity.to_string(), "/CN=client");
        client.require_peer().unwrap();
        assert_eq!(client.role(), Role::Initiator);
        assert_eq!(server.role(), Role::Acceptor);
    }

    #[test]
    fn frames_roundtrip_over_cursor() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(read_frame(&mut cursor).is_err()); // EOF
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(GsiError::Decode(_))));
        let big = vec![0u8; MAX_RECORD + 1];
        let mut out: Vec<u8> = Vec::new();
        assert!(write_frame(&mut out, &big).is_err());
    }

    #[test]
    fn handshake_over_tcp_loopback() {
        use std::net::{TcpListener, TcpStream};
        let mut rng = seeded(14);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=tcp-server");
        let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=tcp-client");
        let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
        let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut rng = seeded(15);
            let ctx = server_handshake(&mut sock, server_cfg, &mut rng).unwrap();
            let mut ss = SecureStream::new(sock, ctx, ProtectionLevel::Private);
            let msg = ss.recv().unwrap();
            assert_eq!(msg, b"ping over tcp");
            ss.send(b"pong over tcp").unwrap();
        });

        let mut sock = TcpStream::connect(addr).unwrap();
        let ctx = client_handshake(&mut sock, client_cfg, &mut rng).unwrap();
        let mut cs = SecureStream::new(sock, ctx, ProtectionLevel::Private);
        assert_eq!(cs.peer().unwrap().identity.to_string(), "/CN=tcp-server");
        cs.send(b"ping over tcp").unwrap();
        assert_eq!(cs.recv().unwrap(), b"pong over tcp");
        handle.join().unwrap();
    }
}
