//! The GSI handshake, as a GSSAPI-style token pump.
//!
//! Five tokens establish a mutually authenticated channel:
//!
//! ```text
//! initiator                                   acceptor
//!   | -- Hello {random, mutual} ----------------> |
//!   | <- ServerHello {random, chain} ------------ |  (initiator validates)
//!   | -- ClientAuth {chain, E(premaster), sig} -> |  (acceptor validates)
//!   | <- ServerFinished {mac} ------------------- |  (proves key possession)
//!   | -- ClientFinished {mac} ------------------> |
//! ```
//!
//! The pump shape matters: GridFTP carries these tokens in `ADAT` commands
//! on the control channel and raw (length-framed) on data channels, so the
//! state machines never touch a socket themselves.

use crate::context::{Established, GsiConfig, Role};
use crate::error::{GsiError, Result};
use crate::keys::{SessionKeys, PREMASTER_LEN};
use crate::messages::HandshakeMsg;
use ig_crypto::hmac::HmacSha256;
use ig_crypto::rng::random_array;
use ig_crypto::Sha256;
use ig_pki::validate::ValidatedIdentity;
use ig_pki::Certificate;
use rand::Rng;

/// Result of feeding one token to a handshake state machine.
#[derive(Debug)]
pub enum Step {
    /// Send this token and expect more.
    Send(Vec<u8>),
    /// Send this token; the handshake is complete on this side.
    SendAndDone(Vec<u8>, Established),
    /// Handshake complete, nothing more to send.
    Done(Established),
}

/// Proof-of-possession signing payload: binds both nonces, the encrypted
/// premaster and the client chain to the client's signature.
fn pop_payload(
    client_random: &[u8],
    server_random: &[u8],
    encrypted_premaster: &[u8],
    chain: &[Certificate],
) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(b"ig-gsi-pop-v1");
    h.update(client_random);
    h.update(server_random);
    h.update(encrypted_premaster);
    h.update(&serde_json::to_vec(chain).expect("chain serialization cannot fail"));
    h.finalize().to_vec()
}

fn finished_mac(keys: &SessionKeys, label: &[u8], transcript: &Sha256) -> Vec<u8> {
    let digest = transcript.clone().finalize();
    let mut mac = HmacSha256::new(&keys.finished_key);
    mac.update(label);
    mac.update(&digest);
    mac.finalize().to_vec()
}

// ---------------------------------------------------------------------------
// Initiator
// ---------------------------------------------------------------------------

enum InitState {
    AwaitServerHello,
    AwaitServerFinished { keys: SessionKeys, peer: ValidatedIdentity },
    Terminal,
}

/// Client side of the handshake.
pub struct Initiator {
    config: GsiConfig,
    state: InitState,
    transcript: Sha256,
    client_random: [u8; 32],
}

impl Initiator {
    /// Start a handshake; returns the machine and the first token.
    pub fn start<R: Rng + ?Sized>(config: GsiConfig, rng: &mut R) -> (Self, Vec<u8>) {
        let client_random: [u8; 32] = random_array(rng);
        let mutual = config.credential.is_some();
        let hello = HandshakeMsg::Hello { random: client_random.to_vec(), mutual };
        let token = hello.encode();
        let mut transcript = Sha256::new();
        transcript.update(&token);
        (
            Initiator { config, state: InitState::AwaitServerHello, transcript, client_random },
            token,
        )
    }

    /// Feed the next acceptor token.
    pub fn step<R: Rng + ?Sized>(&mut self, token: &[u8], rng: &mut R) -> Result<Step> {
        let t0 = std::time::Instant::now();
        let out = self.step_inner(token, rng);
        crate::obs_hooks::record_handshake_step("initiator", t0.elapsed());
        out
    }

    fn step_inner<R: Rng + ?Sized>(&mut self, token: &[u8], rng: &mut R) -> Result<Step> {
        let msg = HandshakeMsg::decode(token)?;
        match std::mem::replace(&mut self.state, InitState::Terminal) {
            InitState::AwaitServerHello => {
                let (server_random, chain) = match msg {
                    HandshakeMsg::ServerHello { random, chain } => (random, chain),
                    other => {
                        return Err(GsiError::UnexpectedMessage {
                            expected: "ServerHello",
                            got: other.name().into(),
                        })
                    }
                };
                self.transcript.update(token);
                // Authenticate the server (or TOFU-accept when
                // bootstrapping trust, as myproxy-logon -b does).
                let now = self.config.clock.now();
                let peer = if self.config.insecure_skip_peer_validation {
                    if chain.is_empty() {
                        return Err(GsiError::PeerAnonymous);
                    }
                    chain[0].check_validity(now)?;
                    ig_pki::validate::ValidatedIdentity {
                        subject: chain[0].subject().clone(),
                        identity: chain[0].subject().clone(),
                        anchor: chain[0].issuer().clone(),
                        online_ca_endpoint: chain[0].online_ca_endpoint().map(str::to_string),
                    }
                } else {
                    ig_pki::validate_chain(&chain, &self.config.trust, now)?
                };
                let server_key = chain[0].public_key()?;
                // Key transport.
                let premaster: [u8; PREMASTER_LEN] = random_array(rng);
                let encrypted_premaster = server_key.encrypt(rng, &premaster)?;
                // Client auth (or anonymous).
                let (client_chain, signature) = match &self.config.credential {
                    Some(cred) => {
                        let chain = cred.chain().to_vec();
                        let payload = pop_payload(
                            &self.client_random,
                            &server_random,
                            &encrypted_premaster,
                            &chain,
                        );
                        (chain, Some(cred.key().sign(&payload)?))
                    }
                    None => (Vec::new(), None),
                };
                let auth = HandshakeMsg::ClientAuth {
                    chain: client_chain,
                    encrypted_premaster,
                    signature,
                };
                let auth_token = auth.encode();
                self.transcript.update(&auth_token);
                let keys = SessionKeys::derive(&self.client_random, &server_random, &premaster);
                self.state = InitState::AwaitServerFinished { keys, peer };
                Ok(Step::Send(auth_token))
            }
            InitState::AwaitServerFinished { keys, peer } => {
                let mac = match msg {
                    HandshakeMsg::ServerFinished { mac } => mac,
                    other => {
                        return Err(GsiError::UnexpectedMessage {
                            expected: "ServerFinished",
                            got: other.name().into(),
                        })
                    }
                };
                // Server's MAC covers the transcript up to ClientAuth.
                let expect = finished_mac(&keys, b"server-finished", &self.transcript);
                if !ig_crypto::ct::ct_eq(&expect, &mac) {
                    return Err(GsiError::TranscriptMismatch);
                }
                self.transcript.update(token);
                let fin_mac = finished_mac(&keys, b"client-finished", &self.transcript);
                let fin = HandshakeMsg::ClientFinished { mac: fin_mac };
                let fin_token = fin.encode();
                self.transcript.update(&fin_token);
                let established = Established {
                    role: Role::Initiator,
                    keys,
                    peer: Some(peer),
                };
                Ok(Step::SendAndDone(fin_token, established))
            }
            InitState::Terminal => Err(GsiError::UnexpectedMessage {
                expected: "(none — handshake finished or failed)",
                got: msg.name().into(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

enum AcceptState {
    AwaitHello,
    AwaitClientAuth { server_random: [u8; 32], client_random: Vec<u8>, mutual: bool },
    AwaitClientFinished { keys: SessionKeys, peer: Option<ValidatedIdentity> },
    Terminal,
}

/// Server side of the handshake.
pub struct Acceptor {
    config: GsiConfig,
    state: AcceptState,
    transcript: Sha256,
}

impl Acceptor {
    /// Create an acceptor. The acceptor *must* hold a credential.
    pub fn new(config: GsiConfig) -> Result<Self> {
        if config.credential.is_none() {
            return Err(GsiError::NoCredential("acceptor requires a credential".into()));
        }
        Ok(Acceptor { config, state: AcceptState::AwaitHello, transcript: Sha256::new() })
    }

    /// Feed the next initiator token.
    pub fn step<R: Rng + ?Sized>(&mut self, token: &[u8], rng: &mut R) -> Result<Step> {
        let t0 = std::time::Instant::now();
        let out = self.step_inner(token, rng);
        crate::obs_hooks::record_handshake_step("acceptor", t0.elapsed());
        out
    }

    fn step_inner<R: Rng + ?Sized>(&mut self, token: &[u8], rng: &mut R) -> Result<Step> {
        let msg = HandshakeMsg::decode(token)?;
        match std::mem::replace(&mut self.state, AcceptState::Terminal) {
            AcceptState::AwaitHello => {
                let (client_random, mutual) = match msg {
                    HandshakeMsg::Hello { random, mutual } => (random, mutual),
                    other => {
                        return Err(GsiError::UnexpectedMessage {
                            expected: "Hello",
                            got: other.name().into(),
                        })
                    }
                };
                if self.config.require_peer_auth && !mutual {
                    return Err(GsiError::PeerAnonymous);
                }
                self.transcript.update(token);
                let server_random: [u8; 32] = random_array(rng);
                let cred = self.config.credential.as_ref().expect("checked in new");
                let hello = HandshakeMsg::ServerHello {
                    random: server_random.to_vec(),
                    chain: cred.chain().to_vec(),
                };
                let hello_token = hello.encode();
                self.transcript.update(&hello_token);
                self.state =
                    AcceptState::AwaitClientAuth { server_random, client_random, mutual };
                Ok(Step::Send(hello_token))
            }
            AcceptState::AwaitClientAuth { server_random, client_random, mutual } => {
                let (chain, encrypted_premaster, signature) = match msg {
                    HandshakeMsg::ClientAuth { chain, encrypted_premaster, signature } => {
                        (chain, encrypted_premaster, signature)
                    }
                    other => {
                        return Err(GsiError::UnexpectedMessage {
                            expected: "ClientAuth",
                            got: other.name().into(),
                        })
                    }
                };
                self.transcript.update(token);
                let cred = self.config.credential.as_ref().expect("checked in new");
                let premaster = cred.key().decrypt(&encrypted_premaster)?;
                // Authenticate the client if it presented a chain.
                let peer = if chain.is_empty() {
                    if self.config.require_peer_auth || mutual {
                        return Err(GsiError::PeerAnonymous);
                    }
                    None
                } else {
                    let now = self.config.clock.now();
                    let id = ig_pki::validate_chain(&chain, &self.config.trust, now)?;
                    let payload =
                        pop_payload(&client_random, &server_random, &encrypted_premaster, &chain);
                    let sig = signature.ok_or(GsiError::PeerAnonymous)?;
                    chain[0]
                        .public_key()?
                        .verify(&payload, &sig)
                        .map_err(|_| GsiError::TranscriptMismatch)?;
                    Some(id)
                };
                let keys = SessionKeys::derive(&client_random, &server_random, &premaster);
                let mac = finished_mac(&keys, b"server-finished", &self.transcript);
                let fin = HandshakeMsg::ServerFinished { mac };
                let fin_token = fin.encode();
                self.transcript.update(&fin_token);
                self.state = AcceptState::AwaitClientFinished { keys, peer };
                Ok(Step::Send(fin_token))
            }
            AcceptState::AwaitClientFinished { keys, peer } => {
                let mac = match msg {
                    HandshakeMsg::ClientFinished { mac } => mac,
                    other => {
                        return Err(GsiError::UnexpectedMessage {
                            expected: "ClientFinished",
                            got: other.name().into(),
                        })
                    }
                };
                let expect = finished_mac(&keys, b"client-finished", &self.transcript);
                if !ig_crypto::ct::ct_eq(&expect, &mac) {
                    return Err(GsiError::TranscriptMismatch);
                }
                self.transcript.update(token);
                Ok(Step::Done(Established { role: Role::Acceptor, keys, peer }))
            }
            AcceptState::Terminal => Err(GsiError::UnexpectedMessage {
                expected: "(none — handshake finished or failed)",
                got: msg.name().into(),
            }),
        }
    }
}

/// Drive an initiator and acceptor to completion in memory (no sockets).
/// Used by tests and by in-process transfers in the simulator.
pub fn pump<R: Rng + ?Sized>(
    init_config: GsiConfig,
    accept_config: GsiConfig,
    rng: &mut R,
) -> Result<(Established, Established)> {
    let (mut init, mut token) = Initiator::start(init_config, rng);
    let mut acceptor = Acceptor::new(accept_config)?;
    let mut init_done = None;
    loop {
        // Token goes to the acceptor.
        match acceptor.step(&token, rng)? {
            Step::Send(t) => token = t,
            Step::Done(est) => {
                let init_est = init_done.ok_or(GsiError::TranscriptMismatch)?;
                return Ok((init_est, est));
            }
            Step::SendAndDone(_, _) => unreachable!("acceptor never finishes with a send"),
        }
        // Reply goes to the initiator.
        match init.step(&token, rng)? {
            Step::Send(t) => token = t,
            Step::SendAndDone(t, est) => {
                init_done = Some(est);
                token = t;
            }
            Step::Done(_) => unreachable!("initiator always sends ClientFinished"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::{ca_and_credential, config_with};
    use ig_crypto::rng::seeded;

    #[test]
    fn mutual_handshake_succeeds() {
        let mut rng = seeded(1);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/O=Site/CN=server");
        let (_, client_cred) = {
            // Client issued by the same CA for this test.
            let mut rng2 = seeded(2);
            ca_and_credential(&mut rng2, "/O=CA2", "/O=Grid/CN=alice")
        };
        // Build a shared trust store: both CAs trusted by both sides.
        let mut rng2 = seeded(2);
        let (ca2, _) = ca_and_credential(&mut rng2, "/O=CA2", "/O=Grid/CN=unused");
        let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
        let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);
        let (ie, ae) = pump(client_cfg, server_cfg, &mut rng).unwrap();
        assert_eq!(ie.peer.as_ref().unwrap().identity.to_string(), "/O=Site/CN=server");
        assert_eq!(ae.peer.as_ref().unwrap().identity.to_string(), "/O=Grid/CN=alice");
    }

    #[test]
    fn anonymous_client_allowed_when_not_required() {
        let mut rng = seeded(3);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let server_cfg = config_with(Some(server_cred), &[&ca], false);
        let client_cfg = config_with(None, &[&ca], false);
        let (ie, ae) = pump(client_cfg, server_cfg, &mut rng).unwrap();
        assert!(ie.peer.is_some());
        assert!(ae.peer.is_none());
    }

    #[test]
    fn anonymous_client_rejected_when_required() {
        let mut rng = seeded(4);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let server_cfg = config_with(Some(server_cred), &[&ca], true);
        let client_cfg = config_with(None, &[&ca], false);
        let err = pump(client_cfg, server_cfg, &mut rng).unwrap_err();
        assert!(matches!(err, GsiError::PeerAnonymous));
    }

    #[test]
    fn client_rejects_untrusted_server() {
        // Fig 4's failure, on the handshake path: the client's trust store
        // does not contain the server's CA.
        let mut rng = seeded(5);
        let (_ca_a, server_cred) = ca_and_credential(&mut rng, "/O=CA-A", "/CN=server");
        let (ca_b, client_cred) = ca_and_credential(&mut rng, "/O=CA-B", "/CN=client");
        let server_cfg = config_with(Some(server_cred), &[&ca_b], false);
        let client_cfg = config_with(Some(client_cred), &[&ca_b], false); // trusts only CA-B
        let err = pump(client_cfg, server_cfg, &mut rng).unwrap_err();
        assert!(matches!(err, GsiError::PeerValidation(ig_pki::PkiError::UntrustedIssuer(_))));
    }

    #[test]
    fn server_rejects_untrusted_client() {
        let mut rng = seeded(6);
        let (ca_a, server_cred) = ca_and_credential(&mut rng, "/O=CA-A", "/CN=server");
        let (_ca_b, client_cred) = ca_and_credential(&mut rng, "/O=CA-B", "/CN=client");
        let server_cfg = config_with(Some(server_cred), &[&ca_a], true); // trusts only CA-A
        let client_cfg = config_with(Some(client_cred), &[&ca_a], false);
        let err = pump(client_cfg, server_cfg, &mut rng).unwrap_err();
        assert!(matches!(err, GsiError::PeerValidation(ig_pki::PkiError::UntrustedIssuer(_))));
    }

    #[test]
    fn acceptor_requires_credential() {
        let cfg = config_with(None, &[], false);
        assert!(matches!(Acceptor::new(cfg), Err(GsiError::NoCredential(_))));
    }

    #[test]
    fn out_of_order_token_rejected() {
        let mut rng = seeded(7);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let server_cfg = config_with(Some(server_cred), &[&ca], false);
        let mut acceptor = Acceptor::new(server_cfg).unwrap();
        let bogus = HandshakeMsg::ClientFinished { mac: vec![0; 32] }.encode();
        let err = acceptor.step(&bogus, &mut rng).unwrap_err();
        assert!(matches!(err, GsiError::UnexpectedMessage { expected: "Hello", .. }));
    }

    #[test]
    fn garbage_token_rejected() {
        let mut rng = seeded(8);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let mut acceptor = Acceptor::new(config_with(Some(server_cred), &[&ca], false)).unwrap();
        assert!(matches!(
            acceptor.step(b"junk", &mut rng),
            Err(GsiError::Decode(_))
        ));
    }

    #[test]
    fn expired_server_cert_rejected() {
        let mut rng = seeded(9);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let server_cfg = config_with(Some(server_cred), &[&ca], false);
        let mut client_cfg = config_with(None, &[&ca], false);
        // Jump the client clock past the credential lifetime.
        client_cfg.clock = ig_pki::time::Clock::Fixed(u64::MAX / 2);
        let err = pump(client_cfg, server_cfg, &mut rng).unwrap_err();
        assert!(matches!(err, GsiError::PeerValidation(ig_pki::PkiError::Expired { .. })));
    }
}
