//! Credential delegation over an established secure context.
//!
//! Three sealed messages implement GSI delegation: the acceptor generates
//! a key pair locally and sends a CSR; the initiator signs a proxy
//! certificate with its credential; the acceptor assembles the delegated
//! credential. The private key never leaves the acceptor.
//!
//! This is the mechanism behind two paper behaviours:
//! * third-party DCAU: "the server performs a delegation, and both ends
//!   of the authentication must present the user's proxy certificate"
//!   (§IIC);
//! * Globus Online restart: GO holds a delegated/short-term credential it
//!   can use to "re-authenticate with the endpoints on the user's behalf
//!   and restart the transfer from the last checkpoint" (§VI-B).
//!
//! GridFTP-Lite's SSH authentication cannot do this — "since SSH does not
//! support delegation, users cannot hand off SSH-based GridFTP transfers
//! to transfer agents such as Globus Online" (§III-B) — which experiment
//! E8 records as a capability column.

use crate::error::{GsiError, Result};
use ig_pki::proxy::{issue_proxy, ProxyOptions};
use ig_pki::{Certificate, CertificateSigningRequest, Credential, DistinguishedName};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Message 1: acceptor → initiator (a CSR for a freshly generated key).
#[derive(Serialize, Deserialize)]
pub struct DelegationRequest {
    /// CSR carrying the acceptor-generated public key.
    pub csr: CertificateSigningRequest,
}

/// Message 2: initiator → acceptor (signed proxy + issuer chain).
#[derive(Serialize, Deserialize)]
pub struct DelegationGrant {
    /// Chain for the delegated credential: proxy first, then the
    /// initiator's own chain.
    pub chain: Vec<Certificate>,
}

/// Acceptor state between offer and completion (holds the private key).
pub struct PendingDelegation {
    keys: ig_crypto::RsaKeyPair,
}

/// Acceptor: generate a key pair and produce the CSR message bytes.
pub fn offer<R: Rng + ?Sized>(rng: &mut R, key_bits: usize) -> Result<(Vec<u8>, PendingDelegation)> {
    let keys = ig_crypto::RsaKeyPair::generate(rng, key_bits)?;
    // The CSR subject is advisory; the initiator names the proxy itself.
    let csr = CertificateSigningRequest::create(
        DistinguishedName::from_pairs([("CN", "delegation-request")]),
        &keys.private,
    )?;
    let msg = DelegationRequest { csr };
    let bytes = serde_json::to_vec(&msg).expect("delegation request serialization cannot fail");
    Ok((bytes, PendingDelegation { keys }))
}

/// Initiator: sign a proxy for the CSR's key using `credential`.
pub fn grant<R: Rng + ?Sized>(
    rng: &mut R,
    credential: &Credential,
    request_bytes: &[u8],
    now: u64,
    options: ProxyOptions,
) -> Result<Vec<u8>> {
    let req: DelegationRequest = serde_json::from_slice(request_bytes)
        .map_err(|e| GsiError::Decode(format!("bad delegation request: {e}")))?;
    let key = req.csr.verify()?; // proof of possession
    let proxy = issue_proxy(rng, credential, &key, now, options)?;
    let mut chain = vec![proxy];
    chain.extend(credential.chain().iter().cloned());
    let msg = DelegationGrant { chain };
    Ok(serde_json::to_vec(&msg).expect("delegation grant serialization cannot fail"))
}

/// Acceptor: combine the grant with the pending key into a credential.
pub fn complete(pending: PendingDelegation, grant_bytes: &[u8]) -> Result<Credential> {
    let msg: DelegationGrant = serde_json::from_slice(grant_bytes)
        .map_err(|e| GsiError::Decode(format!("bad delegation grant: {e}")))?;
    Ok(Credential::new(msg.chain, pending.keys.private)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::ca_and_credential;
    use ig_crypto::rng::seeded;
    use ig_pki::TrustStore;

    #[test]
    fn full_delegation_roundtrip() {
        let mut rng = seeded(1);
        let (ca, user_cred) = ca_and_credential(&mut rng, "/O=CA", "/O=Grid/CN=alice");
        let (req, pending) = offer(&mut rng, 512).unwrap();
        let grant_bytes =
            grant(&mut rng, &user_cred, &req, 100, ProxyOptions::default()).unwrap();
        let delegated = complete(pending, &grant_bytes).unwrap();
        // Delegated credential validates and maps back to alice.
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert().clone());
        let id = ig_pki::validate_chain(delegated.chain(), &trust, 200).unwrap();
        assert_eq!(id.identity.to_string(), "/O=Grid/CN=alice");
        assert!(id.subject.extends(&id.identity, 1));
        // The delegated key is usable (sign/verify).
        let sig = delegated.key().sign(b"act on behalf").unwrap();
        delegated.leaf().public_key().unwrap().verify(b"act on behalf", &sig).unwrap();
    }

    #[test]
    fn grant_rejects_bad_csr() {
        let mut rng = seeded(2);
        let (_, user_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=u");
        assert!(grant(&mut rng, &user_cred, b"garbage", 0, ProxyOptions::default()).is_err());
        // Tampered CSR (signature broken).
        let (req, _) = offer(&mut rng, 512).unwrap();
        let mut parsed: DelegationRequest = serde_json::from_slice(&req).unwrap();
        parsed.csr.body.subject = DistinguishedName::from_pairs([("CN", "evil")]);
        let tampered = serde_json::to_vec(&parsed).unwrap();
        assert!(grant(&mut rng, &user_cred, &tampered, 0, ProxyOptions::default()).is_err());
    }

    #[test]
    fn complete_rejects_mismatched_grant() {
        let mut rng = seeded(3);
        let (_, user_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=u");
        // Two pending delegations; grant for the first used with the second.
        let (req1, _pending1) = offer(&mut rng, 512).unwrap();
        let (_req2, pending2) = offer(&mut rng, 512).unwrap();
        let grant1 = grant(&mut rng, &user_cred, &req1, 0, ProxyOptions::default()).unwrap();
        // pending2's key does not match the proxy in grant1.
        assert!(complete(pending2, &grant1).is_err());
        assert!(complete(offer(&mut rng, 512).unwrap().1, b"junk").is_err());
    }

    #[test]
    fn delegation_depth_limits_respected() {
        let mut rng = seeded(4);
        let (_, user_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=u");
        let (req, pending) = offer(&mut rng, 512).unwrap();
        let g = grant(
            &mut rng,
            &user_cred,
            &req,
            0,
            ProxyOptions { lifetime: 3600, path_len: Some(0) },
        )
        .unwrap();
        let limited = complete(pending, &g).unwrap();
        // Second-level delegation from the limited credential must fail
        // at grant time.
        let (req2, _) = offer(&mut rng, 512).unwrap();
        assert!(grant(&mut rng, &limited, &req2, 0, ProxyOptions::default()).is_err());
    }
}
