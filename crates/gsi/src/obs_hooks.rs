//! Cached handles into the process-global `ig-obs` registry.
//!
//! `ig-gsi` is a leaf library — no server/client config threads an
//! [`ig_obs::Obs`] hub into it — so record seal/open times and handshake
//! step counts land in [`ig_obs::Obs::global`]. Metric handles are
//! resolved once per process and cached, keeping the per-record cost to
//! one `Instant::now` pair and a few relaxed atomics.

use ig_obs::{Counter, Histogram, Obs};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn seal_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Obs::global().metrics().histogram("gsi.seal_ns"))
}

fn open_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Obs::global().metrics().histogram("gsi.open_ns"))
}

/// Time taken to seal one record.
pub(crate) fn record_seal(elapsed: Duration) {
    seal_hist().record(elapsed.as_nanos() as u64);
}

/// Time taken to open one record.
pub(crate) fn record_open(elapsed: Duration) {
    open_hist().record(elapsed.as_nanos() as u64);
}

/// Time and count one handshake state-machine step for `role`
/// (`"initiator"` or `"acceptor"`).
pub(crate) fn record_handshake_step(role: &'static str, elapsed: Duration) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Obs::global().metrics().histogram("gsi.handshake_step_ns"))
        .record(elapsed.as_nanos() as u64);
    static INIT: OnceLock<Arc<Counter>> = OnceLock::new();
    static ACC: OnceLock<Arc<Counter>> = OnceLock::new();
    let counter = if role == "initiator" {
        INIT.get_or_init(|| Obs::global().metrics().counter("gsi.handshake_initiator_steps"))
    } else {
        ACC.get_or_init(|| Obs::global().metrics().counter("gsi.handshake_acceptor_steps"))
    };
    counter.add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_feed_the_global_registry() {
        record_seal(Duration::from_nanos(500));
        record_open(Duration::from_nanos(700));
        record_handshake_step("initiator", Duration::from_nanos(900));
        let m = Obs::global().metrics();
        assert!(m.histogram("gsi.seal_ns").count() >= 1);
        assert!(m.histogram("gsi.open_ns").count() >= 1);
        assert!(m.counter_value("gsi.handshake_initiator_steps") >= 1);
    }
}
