//! # ig-gsi — a GSI-style security context for Instant GridFTP
//!
//! Reproduces the Grid Security Infrastructure behaviours the paper relies
//! on (§IIC, §V):
//!
//! * **Token-based handshake** ([`handshake`]): mutual authentication with
//!   X.509-style certificate chains, modelled on the GSSAPI
//!   `init_sec_context`/`accept_sec_context` pump so the same code runs
//!   inside `AUTH GSSAPI`/`ADAT` on the control channel *and* raw on data
//!   channels (DCAU). Server-auth-only and anonymous-client modes cover
//!   the MyProxy bootstrap ("authenticates ... using the user's
//!   credentials for the site (username/password)").
//! * **Sealed records** ([`record`]): the three RFC 2228 protection
//!   levels — `Clear` (framing only), `Safe` (HMAC integrity), `Private`
//!   (ChaCha20 + HMAC). The control channel defaults to `Private`
//!   ("encrypted and integrity protected by default"); the data channel
//!   defaults to `Clear` "because of cost" — experiment E3 measures that
//!   cost.
//! * **Delegation** ([`delegation`]): the acceptor generates a key pair
//!   and CSR; the initiator signs a proxy certificate. This is what lets
//!   a third-party-transfer server or Globus Online act on the user's
//!   behalf (§IIC, §VI-B).
//! * **Context configuration** ([`context::GsiConfig`]) carries the
//!   credential and trust store; swapping them per data channel is
//!   exactly what the DCSC command does (§V: "tell a DCSC-enabled GridFTP
//!   endpoint to both accept and present to the other endpoint a
//!   credential different from that used to authenticate the control
//!   channel").

#![deny(rust_2018_idioms)]

pub mod context;
pub mod delegation;
pub mod error;
pub mod handshake;
pub mod keys;
pub mod messages;
mod obs_hooks;
pub mod record;

pub use context::{GsiConfig, SecureContext, SecureStream};
pub use error::GsiError;
pub use handshake::{Acceptor, Initiator};
pub use record::ProtectionLevel;
