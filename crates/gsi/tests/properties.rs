//! Property tests for the sealed record layer: arbitrary corruption must
//! never yield a different plaintext, and roundtrips must be exact.

use ig_gsi::keys::SessionKeys;
use ig_gsi::record::{Opener, ProtectionLevel, Sealer};
use proptest::prelude::*;

fn keys(seed: u8) -> SessionKeys {
    SessionKeys::derive(&[seed; 32], &[seed ^ 0xff; 32], &[seed.wrapping_add(7); 32])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn seal_open_roundtrip_all_levels(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        level_idx in 0usize..3,
        seed in any::<u8>(),
    ) {
        let level = [ProtectionLevel::Clear, ProtectionLevel::Safe, ProtectionLevel::Private][level_idx];
        let k = keys(seed);
        let mut sealer = Sealer::new(k.c2s.clone());
        let mut opener = Opener::new(k.c2s);
        let record = sealer.seal(level, &payload);
        let (got_level, got) = opener.open(&record).unwrap();
        prop_assert_eq!(got_level, level);
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn corruption_never_changes_protected_plaintext(
        payload in proptest::collection::vec(any::<u8>(), 1..500),
        byte in any::<usize>(),
        bit in 0u8..8,
        private in any::<bool>(),
    ) {
        let level = if private { ProtectionLevel::Private } else { ProtectionLevel::Safe };
        let k = keys(42);
        let mut sealer = Sealer::new(k.c2s.clone());
        let mut opener = Opener::new(k.c2s);
        let mut record = sealer.seal(level, &payload);
        let idx = byte % record.len();
        record[idx] ^= 1 << bit;
        match opener.open(&record) {
            // Any successful open must return the exact original payload
            // at the original level (flipping a bit and still matching
            // would be a MAC forgery).
            Ok((l, p)) => {
                prop_assert_eq!(l, level);
                prop_assert_eq!(p, payload);
            }
            Err(_) => {}
        }
    }

    #[test]
    fn clear_records_are_transparent_but_ordered(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..10),
    ) {
        let k = keys(9);
        let mut sealer = Sealer::new(k.c2s.clone());
        let mut opener = Opener::new(k.c2s);
        let records: Vec<Vec<u8>> =
            payloads.iter().map(|p| sealer.seal(ProtectionLevel::Clear, p)).collect();
        // In-order opens succeed…
        for (rec, expect) in records.iter().zip(&payloads) {
            let (_, got) = opener.open(rec).unwrap();
            prop_assert_eq!(&got, expect);
        }
        // …and replaying the first record afterwards fails (sequence).
        if payloads.len() > 1 {
            prop_assert!(opener.open(&records[0]).is_err());
        }
    }

    #[test]
    fn cross_key_records_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        s1 in any::<u8>(),
        s2 in any::<u8>(),
    ) {
        prop_assume!(s1 != s2);
        let mut sealer = Sealer::new(keys(s1).c2s);
        let mut opener = Opener::new(keys(s2).c2s);
        let record = sealer.seal(ProtectionLevel::Private, &payload);
        prop_assert!(opener.open(&record).is_err());
    }
}
