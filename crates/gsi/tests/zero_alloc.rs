//! Proof that the steady-state sealed-record hot path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after warming
//! the reusable buffers up to steady-state capacity, sealing and opening
//! records via `seal_into` / `open_in_place` must perform exactly zero
//! heap allocations. Counting is gated on a thread-local flag so that
//! allocations made by the libtest harness's own threads (timers, output
//! capture) cannot race the measurement — only the test thread, and only
//! inside the measured window, increments the counter.

use ig_gsi::record::{Opener, ProtectionLevel, Sealer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_here(on: bool) {
    TRACKING.with(|t| t.set(on));
}

fn counting() -> bool {
    // `try_with` so allocator calls during TLS teardown stay safe.
    TRACKING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn keys() -> ig_gsi::keys::SessionKeys {
    ig_gsi::keys::SessionKeys::derive(&[1; 32], &[2; 32], &[3; 32])
}

#[test]
fn steady_state_seal_open_allocates_nothing() {
    let session = keys();
    let mut sealer = Sealer::new(session.c2s.clone());
    let mut opener = Opener::new(session.c2s);
    let payload = vec![0xabu8; 64 * 1024];
    let mut record = Vec::new();

    for level in [
        ProtectionLevel::Clear,
        ProtectionLevel::Safe,
        ProtectionLevel::Private,
    ] {
        // Warm-up: let `record` grow to its steady-state capacity.
        sealer.seal_into(level, &payload, &mut record);
        {
            let (got_level, body) = opener.open_in_place(&mut record).unwrap();
            assert_eq!(got_level, level);
            assert_eq!(body.len(), payload.len());
        }

        // Steady state: zero heap allocations over many records.
        let before = alloc_count();
        count_here(true);
        for _ in 0..16 {
            sealer.seal_into(level, &payload, &mut record);
            let (_, body) = opener.open_in_place(&mut record).unwrap();
            assert_eq!(body.len(), payload.len());
        }
        count_here(false);
        let delta = alloc_count() - before;
        assert_eq!(
            delta, 0,
            "steady-state seal_into/open_in_place at {level:?} allocated {delta} times"
        );
    }
}
